//! Combinational PODEM over a controllability/observability view.
//!
//! The generator itself is immutable after construction: [`Podem::run`]
//! takes `&self` and returns a self-contained [`PodemOutcome`], so one
//! engine can be shared by any number of shard workers without locks.
//! Per-search mutable state lives in a [`PodemScratch`], allocated per
//! run (or reused explicitly via [`Podem::run_with_scratch`]).
//!
//! Resimulation is event-driven: a full five-valued pass happens once at
//! construction (the *base* values, charged to [`Podem::setup_work`]);
//! each fault injection and each decision/backtrack then re-evaluates
//! only the gates in the fanout cone of the changed net, in topological
//! order, stopping where values stabilise. The resulting values are
//! bit-identical to a full resimulation — values are a pure function of
//! the assignment and the injections — but `gate_evals` counts only the
//! gates actually re-evaluated.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, CompiledTopology, GateKind, NodeId};
use fscan_sim::{CombEvaluator, V3, WorkCounters};

use crate::dvalue::D5;

const INF: u32 = u32::MAX / 4;

/// Tuning knobs for [`Podem`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PodemConfig {
    /// Abort the search after this many backtracks.
    pub backtrack_limit: usize,
    /// Abort after this many search steps (decisions + backtracks).
    /// Each step costs one event-driven resimulation of the changed
    /// input's fanout cone, so on large (e.g. time-frame-expanded)
    /// models this is the knob that actually bounds runtime.
    pub step_limit: usize,
}

impl Default for PodemConfig {
    fn default() -> PodemConfig {
        PodemConfig {
            backtrack_limit: 20_000,
            step_limit: usize::MAX,
        }
    }
}

/// The verdict of one PODEM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtpgOutcome {
    /// A test was found: assignments for the controllable inputs that
    /// were decided (inputs not listed may take any value).
    Test(Vec<(NodeId, bool)>),
    /// The fault is proven undetectable under this view (the full
    /// decision space was exhausted).
    Undetectable,
    /// The backtrack budget ran out before a verdict.
    Aborted,
}

/// Everything one [`Podem::run`] produced, in one value.
///
/// Replaces the old `&mut self` run path whose results had to be
/// scraped out of the engine via `last_backtracks()` / `last_steps()` /
/// `last_work()` accessors — state that made engines unshardable. The
/// outcome is self-contained, so per-shard runs compose by value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PodemOutcome {
    /// The verdict, carrying the generated vector when a test exists.
    pub verdict: AtpgOutcome,
    /// Exact, thread-invariant work counters of this run: decisions,
    /// backtracks, aborts, and the event-driven `gate_evals`. Does not
    /// include the engine's one-time [`Podem::setup_work`].
    pub work: WorkCounters,
    /// Objective decisions taken.
    pub decisions: usize,
    /// Decision reversals taken.
    pub backtracks: usize,
}

impl PodemOutcome {
    /// The generated test vector, when the verdict is a test.
    pub fn vector(&self) -> Option<&[(NodeId, bool)]> {
        match &self.verdict {
            AtpgOutcome::Test(t) => Some(t),
            _ => None,
        }
    }

    /// Search steps consumed: decisions + backtracks, for callers that
    /// spread one budget across several runs.
    pub fn steps(&self) -> usize {
        self.decisions + self.backtracks
    }
}

/// Reusable per-search mutable state for [`Podem::run_with_scratch`].
///
/// One scratch per worker suffices; every run fully re-initialises it,
/// so reuse never leaks state between faults.
#[derive(Clone, Debug)]
pub struct PodemScratch {
    values: Vec<D5>,
    assigned: Vec<Option<bool>>,
    /// X-reachability, recomputed after every value change: `true` when
    /// the node has a path of X-ish nets to an observable. Makes every
    /// X-path query O(1).
    x_reach: Vec<bool>,
    /// Stem injections of the current fault set, indexed by node.
    stem_inj: Vec<Option<bool>>,
    /// Whether a node has any branch-fault injection on its pins.
    has_branch: Vec<bool>,
    /// The (gate index, pin, stuck) branch injections (short list).
    branch_inj: Vec<(usize, usize, bool)>,
    /// Event queue of order positions pending re-evaluation.
    queue: BinaryHeap<Reverse<usize>>,
    in_queue: Vec<bool>,
}

/// A PODEM test generator over a circuit *view*.
///
/// The view consists of:
/// * `controllable` — inputs the generator may assign (primary inputs
///   and/or flip-flop outputs acting as pseudo-inputs);
/// * `fixed` — inputs pinned to constants (e.g. scan-mode primary-input
///   assignments, including `scan_mode = 1` itself);
/// * `observable` — nets whose values can be observed (primary outputs
///   and/or flip-flop capture points).
///
/// Any other non-gate node stays at X and can never be assigned, which
/// models uncontrollable state.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Clone, Debug)]
pub struct Podem<'c> {
    circuit: &'c Circuit,
    topo: Arc<CompiledTopology>,
    controllable: Vec<NodeId>,
    is_controllable: Vec<bool>,
    fixed: Vec<(NodeId, bool)>,
    observable: Vec<NodeId>,
    is_observable: Vec<bool>,
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    obs_dist: Vec<u32>,
    /// Topological evaluation order (gates and constants).
    order: Vec<NodeId>,
    /// Node index → position in `order`, `usize::MAX` for non-gate nodes.
    order_pos: Vec<usize>,
    /// Five-valued values with no assignments and no faults: fixed
    /// inputs and constants propagated, everything else X. Each run
    /// starts from a copy and only re-evaluates what its injections and
    /// decisions change.
    base_values: Vec<D5>,
    /// Work charged at construction (one full base pass).
    setup_work: WorkCounters,
}

impl<'c> Podem<'c> {
    /// Builds a generator for the given view of `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if a fixed node is also listed as controllable.
    pub fn new(
        circuit: &'c Circuit,
        controllable: Vec<NodeId>,
        fixed: Vec<(NodeId, bool)>,
        observable: Vec<NodeId>,
    ) -> Podem<'c> {
        Podem::with_topology(
            circuit,
            CompiledTopology::shared(circuit),
            controllable,
            fixed,
            observable,
        )
    }

    /// [`Podem::new`] against an already-compiled topology of `circuit`,
    /// sharing the plan instead of recompiling it.
    ///
    /// # Panics
    ///
    /// Panics if a fixed node is also listed as controllable.
    pub fn with_topology(
        circuit: &'c Circuit,
        topo: Arc<CompiledTopology>,
        controllable: Vec<NodeId>,
        fixed: Vec<(NodeId, bool)>,
        observable: Vec<NodeId>,
    ) -> Podem<'c> {
        debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
        let n = circuit.num_nodes();
        let mut is_controllable = vec![false; n];
        for &c in &controllable {
            is_controllable[c.index()] = true;
        }
        for &(f, _) in &fixed {
            assert!(
                !is_controllable[f.index()],
                "node {f} is both fixed and controllable"
            );
        }
        let mut is_observable = vec![false; n];
        for &o in &observable {
            is_observable[o.index()] = true;
        }
        let order = CombEvaluator::with_topology(topo.clone()).order().to_vec();
        let mut order_pos = vec![usize::MAX; n];
        for (pos, &id) in order.iter().enumerate() {
            order_pos[id.index()] = pos;
        }
        let mut podem = Podem {
            circuit,
            topo,
            controllable,
            is_controllable,
            fixed,
            observable,
            is_observable,
            cc0: vec![INF; n],
            cc1: vec![INF; n],
            obs_dist: vec![INF; n],
            order,
            order_pos,
            base_values: vec![D5::X; n],
            setup_work: WorkCounters::ZERO,
        };
        podem.compute_scoap();
        podem.compute_obs_dist();
        podem.compute_base_values();
        podem
    }

    /// SCOAP-style combinational 0/1 controllability, used to guide the
    /// backtrace toward cheap-to-justify inputs and away from
    /// uncontrollable state.
    fn compute_scoap(&mut self) {
        for &c in &self.controllable {
            self.cc0[c.index()] = 1;
            self.cc1[c.index()] = 1;
        }
        for &(f, v) in &self.fixed {
            self.cc0[f.index()] = if v { INF } else { 0 };
            self.cc1[f.index()] = if v { 0 } else { INF };
        }
        let sat = |a: u32, b: u32| a.saturating_add(b).min(INF);
        for oi in 0..self.order.len() {
            let id = self.order[oi];
            let node = self.circuit.node(id);
            let kind = node.kind();
            let (c0, c1): (u32, u32) = match kind {
                GateKind::Const0 => (0, INF),
                GateKind::Const1 => (INF, 0),
                GateKind::Buf => {
                    let f = node.fanin()[0];
                    (sat(self.cc0[f.index()], 1), sat(self.cc1[f.index()], 1))
                }
                GateKind::Not => {
                    let f = node.fanin()[0];
                    (sat(self.cc1[f.index()], 1), sat(self.cc0[f.index()], 1))
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    // Cost to set output to the controlled (easy) side vs
                    // the all-inputs (hard) side.
                    let ctrl = kind.controlling_value().expect("and/or family");
                    let (ctrl_cc, nonctrl_cc): (Vec<u32>, Vec<u32>) = {
                        let pick = |v: bool, f: NodeId| {
                            if v {
                                self.cc1[f.index()]
                            } else {
                                self.cc0[f.index()]
                            }
                        };
                        (
                            node.fanin().iter().map(|&f| pick(ctrl, f)).collect(),
                            node.fanin().iter().map(|&f| pick(!ctrl, f)).collect(),
                        )
                    };
                    let easy = sat(ctrl_cc.iter().copied().min().unwrap_or(INF), 1);
                    let hard = sat(nonctrl_cc.iter().fold(0u32, |a, &b| sat(a, b)), 1);
                    // For AND: output 0 via any controlling input (easy),
                    // output 1 needs all non-controlling (hard).
                    let (out_ctrl, out_all) = (easy, hard);
                    let inverted = kind.output_inverted();
                    // Controlled output value = ctrl ^ inverted.
                    if ctrl ^ inverted {
                        (out_all, out_ctrl)
                    } else {
                        (out_ctrl, out_all)
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Fold pairwise: cost of parity-0 / parity-1.
                    let mut p0 = 0u32;
                    let mut p1 = INF;
                    for &f in node.fanin() {
                        let (f0, f1) = (self.cc0[f.index()], self.cc1[f.index()]);
                        let n0 = sat(p0, f0).min(sat(p1, f1));
                        let n1 = sat(p0, f1).min(sat(p1, f0));
                        p0 = n0;
                        p1 = n1;
                    }
                    if kind == GateKind::Xor {
                        (sat(p0, 1), sat(p1, 1))
                    } else {
                        (sat(p1, 1), sat(p0, 1))
                    }
                }
                GateKind::Input | GateKind::Dff => continue,
            };
            // Fixed gates keep their pinned costs (none are fixed in
            // practice; fixing applies to inputs).
            self.cc0[id.index()] = c0;
            self.cc1[id.index()] = c1;
        }
    }

    /// Static distance (in gates) from each node to the nearest
    /// observable, used to pick D-frontier gates.
    fn compute_obs_dist(&mut self) {
        for &o in &self.observable {
            self.obs_dist[o.index()] = 0;
        }
        // Reverse topological relaxation: iterate the evaluation order
        // backwards; a node's distance improves through its fanouts.
        for oi in (0..self.order.len()).rev() {
            let id = self.order[oi];
            let mut best = self.obs_dist[id.index()];
            for &sink in self.topo.fanout_sinks(id) {
                if self.circuit.node(sink).kind().is_gate() {
                    best = best.min(self.obs_dist[sink.index()].saturating_add(1));
                }
            }
            self.obs_dist[id.index()] = best;
        }
        // Inputs/FF outputs also get distances (not strictly needed).
        for id in self.circuit.node_ids() {
            if self.circuit.node(id).kind().is_gate() {
                continue;
            }
            let mut best = self.obs_dist[id.index()];
            for &sink in self.topo.fanout_sinks(id) {
                if self.circuit.node(sink).kind().is_gate() {
                    best = best.min(self.obs_dist[sink.index()].saturating_add(1));
                }
            }
            self.obs_dist[id.index()] = best;
        }
    }

    /// One full five-valued pass with no assignments and no faults:
    /// the state every run starts from. Charged to [`Podem::setup_work`]
    /// once, however many runs the engine later serves.
    fn compute_base_values(&mut self) {
        for &(f, v) in &self.fixed {
            self.base_values[f.index()] = D5::known(v);
        }
        for oi in 0..self.order.len() {
            let id = self.order[oi];
            let node = self.circuit.node(id);
            let out = D5::eval(
                node.kind(),
                node.fanin()
                    .iter()
                    .map(|&src| self.base_values[src.index()]),
            );
            self.base_values[id.index()] = out;
        }
        self.setup_work.gate_evals += self.order.len() as u64;
    }

    /// The one-time construction work (one full base-values pass).
    /// Callers summing per-run [`PodemOutcome::work`] add this once per
    /// engine to keep stage totals exact.
    pub fn setup_work(&self) -> WorkCounters {
        self.setup_work
    }

    /// A fresh scratch sized for this engine, for
    /// [`Podem::run_with_scratch`] callers that amortise allocation
    /// across many runs.
    pub fn scratch(&self) -> PodemScratch {
        let n = self.circuit.num_nodes();
        PodemScratch {
            values: self.base_values.clone(),
            assigned: vec![None; n],
            x_reach: vec![false; n],
            stem_inj: vec![None; n],
            has_branch: vec![false; n],
            branch_inj: Vec::new(),
            queue: BinaryHeap::new(),
            in_queue: vec![false; self.order.len()],
        }
    }

    /// The branch injection on pin `pin` of node `gate_idx`, if any.
    fn branch_at(&self, s: &PodemScratch, gate_idx: usize, pin: usize) -> Option<bool> {
        if !s.has_branch[gate_idx] {
            return None;
        }
        s.branch_inj
            .iter()
            .find(|&&(g, p, _)| g == gate_idx && p == pin)
            .map(|&(_, _, stuck)| stuck)
    }

    /// Re-evaluates one ordered node under the current values, with the
    /// scratch's fault injections applied — the exact per-node function
    /// a full resimulation would use.
    fn eval_node(&self, s: &PodemScratch, id: NodeId) -> D5 {
        let node = self.circuit.node(id);
        let mut out = if s.has_branch[id.index()] {
            D5::eval(
                node.kind(),
                node.fanin().iter().enumerate().map(|(pin, &src)| {
                    let mut v = s.values[src.index()];
                    if let Some(stuck) = self.branch_at(s, id.index(), pin) {
                        v = D5::new(v.good(), V3::from_bool(stuck));
                    }
                    v
                }),
            )
        } else {
            D5::eval(
                node.kind(),
                node.fanin().iter().map(|&src| s.values[src.index()]),
            )
        };
        if let Some(stuck) = s.stem_inj[id.index()] {
            out = D5::new(out.good(), V3::from_bool(stuck));
        }
        out
    }

    /// Queues every ordered gate reading `id` for re-evaluation.
    fn schedule_fanouts(&self, s: &mut PodemScratch, id: NodeId) {
        for &sink in self.topo.fanout_sinks(id) {
            let pos = self.order_pos[sink.index()];
            if pos != usize::MAX && !s.in_queue[pos] {
                s.in_queue[pos] = true;
                s.queue.push(Reverse(pos));
            }
        }
    }

    /// Drains the event queue in topological order, propagating value
    /// changes. Each popped gate counts one `gate_eval` — the
    /// event-driven replacement for the old full-resimulation charge.
    fn drain(&self, s: &mut PodemScratch, work: &mut WorkCounters) {
        while let Some(Reverse(pos)) = s.queue.pop() {
            s.in_queue[pos] = false;
            let id = self.order[pos];
            work.gate_evals += 1;
            let out = self.eval_node(s, id);
            if out != s.values[id.index()] {
                s.values[id.index()] = out;
                self.schedule_fanouts(s, id);
            }
        }
    }

    /// Resets the scratch to the base values and injects the fault set,
    /// propagating each injection through its fanout cone.
    fn begin(&self, s: &mut PodemScratch, faults: &[Fault], work: &mut WorkCounters) {
        s.values.copy_from_slice(&self.base_values);
        s.assigned.fill(None);
        s.stem_inj.fill(None);
        s.has_branch.fill(false);
        s.branch_inj.clear();
        s.queue.clear();
        s.in_queue.fill(false);
        // Install every injection first (a gate may carry several), then
        // seed the event queue and propagate once.
        for f in faults {
            match f.site {
                FaultSite::Stem(n) => {
                    s.stem_inj[n.index()] = Some(f.stuck);
                }
                FaultSite::Branch { gate, pin } => {
                    s.has_branch[gate.index()] = true;
                    s.branch_inj.push((gate.index(), pin, f.stuck));
                }
            }
        }
        for f in faults {
            match f.site {
                FaultSite::Stem(n) => {
                    let pos = self.order_pos[n.index()];
                    if pos != usize::MAX {
                        // Ordered node: the injection changes its output
                        // function; re-evaluate it in place.
                        if !s.in_queue[pos] {
                            s.in_queue[pos] = true;
                            s.queue.push(Reverse(pos));
                        }
                    } else {
                        // Input / flip-flop output: override the faulty
                        // rail directly.
                        let v = s.values[n.index()];
                        let nv = D5::new(v.good(), V3::from_bool(f.stuck));
                        if nv != v {
                            s.values[n.index()] = nv;
                            self.schedule_fanouts(s, n);
                        }
                    }
                }
                FaultSite::Branch { gate, .. } => {
                    let pos = self.order_pos[gate.index()];
                    debug_assert_ne!(pos, usize::MAX, "branch faults sit on gates");
                    if pos != usize::MAX && !s.in_queue[pos] {
                        s.in_queue[pos] = true;
                        s.queue.push(Reverse(pos));
                    }
                }
            }
        }
        self.drain(s, work);
        self.recompute_x_reach(s);
    }

    /// Applies (or retracts) one controllable-input assignment and
    /// propagates the change through its fanout cone.
    fn set_input(
        &self,
        s: &mut PodemScratch,
        pi: NodeId,
        val: Option<bool>,
        work: &mut WorkCounters,
    ) {
        s.assigned[pi.index()] = val;
        let mut v = match val {
            Some(b) => D5::known(b),
            None => D5::X,
        };
        if let Some(stuck) = s.stem_inj[pi.index()] {
            v = D5::new(v.good(), V3::from_bool(stuck));
        }
        if v != s.values[pi.index()] {
            s.values[pi.index()] = v;
            self.schedule_fanouts(s, pi);
            self.drain(s, work);
            self.recompute_x_reach(s);
        }
    }

    /// The good value at a fault's excitation point.
    fn site_good(&self, s: &PodemScratch, fault: &Fault) -> V3 {
        match fault.site {
            FaultSite::Stem(n) => s.values[n.index()].good(),
            FaultSite::Branch { gate, pin } => {
                let src = self.circuit.node(gate).fanin()[pin];
                s.values[src.index()].good()
            }
        }
    }

    /// The node whose value the excitation objective targets.
    fn site_node(&self, fault: &Fault) -> NodeId {
        match fault.site {
            FaultSite::Stem(n) => n,
            FaultSite::Branch { gate, pin } => self.circuit.node(gate).fanin()[pin],
        }
    }

    fn fault_effect_at_observable(&self, s: &PodemScratch) -> bool {
        self.observable
            .iter()
            .any(|&o| s.values[o.index()].is_fault_effect())
    }

    /// The five-valued value seen by pin `pin` of gate `id`, including
    /// branch-fault injection.
    fn pin_value(&self, s: &PodemScratch, id: NodeId, pin: usize, src: NodeId) -> D5 {
        let mut v = s.values[src.index()];
        if let Some(stuck) = self.branch_at(s, id.index(), pin) {
            v = D5::new(v.good(), V3::from_bool(stuck));
        }
        v
    }

    /// Whether any fault effect exists: on a net, or injected at a gate
    /// pin by an excited branch fault.
    fn has_effect(&self, s: &PodemScratch, faults: &[Fault]) -> bool {
        if self
            .circuit
            .node_ids()
            .any(|id| s.values[id.index()].is_fault_effect())
        {
            return true;
        }
        faults.iter().any(|f| {
            matches!(f.site, FaultSite::Branch { .. })
                && self.site_good(s, f).is_known()
                && self.site_good(s, f) != V3::from_bool(f.stuck)
        })
    }

    /// D-frontier: gates with an X-ish output and a fault effect on some
    /// input pin (including branch-fault injection).
    fn d_frontier(&self, s: &PodemScratch) -> Vec<NodeId> {
        let mut frontier = Vec::new();
        for &id in &self.order {
            let node = self.circuit.node(id);
            if !node.kind().is_gate() {
                continue;
            }
            if !s.values[id.index()].has_x() {
                continue;
            }
            let any_d = if s.has_branch[id.index()] {
                node.fanin()
                    .iter()
                    .enumerate()
                    .any(|(pin, &f)| self.pin_value(s, id, pin, f).is_fault_effect())
            } else {
                node.fanin()
                    .iter()
                    .any(|&f| s.values[f.index()].is_fault_effect())
            };
            if any_d {
                frontier.push(id);
            }
        }
        frontier
    }

    /// Recomputes the scratch's X-reachability by one reverse
    /// topological sweep: a node reaches an observable through X nets
    /// iff it is observable itself, or some X-ish gate reading it does.
    fn recompute_x_reach(&self, s: &mut PodemScratch) {
        for i in 0..s.x_reach.len() {
            s.x_reach[i] = self.is_observable[i];
        }
        for oi in (0..self.order.len()).rev() {
            let id = self.order[oi];
            if s.x_reach[id.index()] {
                continue;
            }
            let reach = self.topo.fanout_sinks(id).iter().any(|&sink| {
                self.circuit.node(sink).kind().is_gate()
                    && s.values[sink.index()].has_x()
                    && s.x_reach[sink.index()]
            });
            if reach {
                s.x_reach[id.index()] = true;
            }
        }
        // Non-gate nodes (inputs, flip-flop outputs) also feed gates.
        for id in self.circuit.node_ids() {
            if s.x_reach[id.index()] || self.circuit.node(id).kind().is_gate() {
                continue;
            }
            let reach = self.topo.fanout_sinks(id).iter().any(|&sink| {
                self.circuit.node(sink).kind().is_gate()
                    && s.values[sink.index()].has_x()
                    && s.x_reach[sink.index()]
            });
            if reach {
                s.x_reach[id.index()] = true;
            }
        }
    }

    /// Static controllability cost of setting `node` to `val`.
    fn cc(&self, node: NodeId, val: bool) -> u32 {
        if val {
            self.cc1[node.index()]
        } else {
            self.cc0[node.index()]
        }
    }

    /// Returns the next objective `(net, good_value)` or `None` when the
    /// current state is a dead end.
    fn objective(&self, s: &PodemScratch, faults: &[Fault]) -> Option<(NodeId, bool)> {
        if !self.has_effect(s, faults) {
            // Excitation: find a site whose good value is still X and is
            // statically justifiable (finite SCOAP cost).
            for f in faults {
                let site = self.site_node(f);
                if self.site_good(s, f) == V3::X && self.cc(site, !f.stuck) < INF {
                    return Some((site, !f.stuck));
                }
            }
            return None;
        }
        // Propagation: pick the D-frontier gate nearest an observable
        // that still has an X-path, then set one X side-input to the
        // non-controlling value.
        let mut frontier = self.d_frontier(s);
        frontier.sort_by_key(|&g| self.obs_dist[g.index()]);
        for g in frontier {
            if !s.x_reach[g.index()] {
                continue;
            }
            let node = self.circuit.node(g);
            let side_val = node.kind().transparent_side_value().unwrap_or(true);
            for &f in node.fanin() {
                if s.values[f.index()].good() == V3::X && self.cc(f, side_val) < INF {
                    return Some((f, side_val));
                }
            }
        }
        None
    }

    /// Backtraces an objective to an unassigned controllable input.
    fn backtrace(&self, s: &PodemScratch, net: NodeId, val: bool) -> Option<(NodeId, bool)> {
        let mut net = net;
        let mut val = val;
        let mut hops = 0usize;
        loop {
            hops += 1;
            if hops > 4 * self.circuit.num_nodes() {
                return None; // safety net; cannot happen in a DAG
            }
            let node = self.circuit.node(net);
            let kind = node.kind();
            if !kind.is_gate() {
                return if self.is_controllable[net.index()] && s.assigned[net.index()].is_none() {
                    Some((net, val))
                } else {
                    None
                };
            }
            match kind {
                GateKind::Buf => {
                    net = node.fanin()[0];
                }
                GateKind::Not => {
                    net = node.fanin()[0];
                    val = !val;
                }
                GateKind::Const0 | GateKind::Const1 => return None,
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let ctrl = kind.controlling_value().expect("and/or family");
                    let want_input = val ^ kind.output_inverted();
                    let cc = |f: NodeId, v: bool| {
                        if v {
                            self.cc1[f.index()]
                        } else {
                            self.cc0[f.index()]
                        }
                    };
                    let candidates: Vec<NodeId> = node
                        .fanin()
                        .iter()
                        .copied()
                        .filter(|&f| s.values[f.index()].good() == V3::X)
                        .collect();
                    if candidates.is_empty() {
                        return None;
                    }
                    let pick = if want_input == ctrl {
                        // One controlling input suffices: easiest, and it
                        // must be justifiable at all.
                        candidates
                            .iter()
                            .copied()
                            .filter(|&f| cc(f, want_input) < INF)
                            .min_by_key(|&f| cc(f, want_input))?
                    } else {
                        // All inputs must be non-controlling: if any is
                        // statically unjustifiable the objective is dead;
                        // otherwise take the hardest first.
                        if candidates.iter().any(|&f| cc(f, want_input) >= INF) {
                            return None;
                        }
                        candidates
                            .iter()
                            .copied()
                            .max_by_key(|&f| cc(f, want_input))?
                    };
                    net = pick;
                    val = want_input;
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Choose any X input; required value = desired output
                    // parity xor parity of the other (known) inputs,
                    // treating other X inputs as 0.
                    let desired = val ^ (kind == GateKind::Xnor);
                    let mut parity = desired;
                    let mut xs: Vec<NodeId> = Vec::new();
                    for &f in node.fanin() {
                        match s.values[f.index()].good() {
                            V3::One => parity = !parity,
                            V3::Zero => {}
                            V3::X => xs.push(f),
                        }
                    }
                    let cc = |f: NodeId, v: bool| {
                        if v {
                            self.cc1[f.index()]
                        } else {
                            self.cc0[f.index()]
                        }
                    };
                    // Remaining X inputs other than the chosen one are
                    // treated as 0 by this heuristic, so each candidate
                    // would need the same `parity` value.
                    net = xs.iter().copied().find(|&f| cc(f, parity) < INF)?;
                    val = parity;
                }
                GateKind::Input | GateKind::Dff => unreachable!("handled above"),
            }
        }
    }

    /// Runs PODEM for the fault (or, for time-frame-expanded models, the
    /// set of per-frame copies of one fault), allocating a fresh scratch.
    ///
    /// The verdict is [`AtpgOutcome::Undetectable`] only after
    /// exhausting the complete decision space, making it sound for the
    /// given view.
    pub fn run(&self, faults: &[Fault], config: &PodemConfig) -> PodemOutcome {
        let mut scratch = self.scratch();
        self.run_with_scratch(&mut scratch, faults, config)
    }

    /// [`Podem::run`] against a caller-owned scratch, for hot loops that
    /// amortise allocation across many runs. The scratch is fully
    /// re-initialised, so results never depend on what ran before.
    pub fn run_with_scratch(
        &self,
        s: &mut PodemScratch,
        faults: &[Fault],
        config: &PodemConfig,
    ) -> PodemOutcome {
        let mut work = WorkCounters::ZERO;
        let mut decisions = 0usize;
        let mut backtracks = 0usize;
        let mut steps = 0usize;
        self.begin(s, faults, &mut work);
        // Decision stack: (input, value, already_flipped).
        let mut stack: Vec<(NodeId, bool, bool)> = Vec::new();
        // Classic PODEM loop: the existence of an objective (plus a
        // successful backtrace) *is* the progress check; its absence is
        // the conflict signal that triggers backtracking.
        loop {
            if self.fault_effect_at_observable(s) {
                let test = stack.iter().map(|&(n, v, _)| (n, v)).collect();
                return PodemOutcome {
                    verdict: AtpgOutcome::Test(test),
                    work,
                    decisions,
                    backtracks,
                };
            }
            let decision = self
                .objective(s, faults)
                .and_then(|(net, val)| self.backtrace(s, net, val));
            match decision {
                Some((pi, val)) => {
                    stack.push((pi, val, false));
                    decisions += 1;
                    steps += 1;
                    work.podem_decisions += 1;
                    if steps > config.step_limit {
                        work.podem_aborts += 1;
                        return PodemOutcome {
                            verdict: AtpgOutcome::Aborted,
                            work,
                            decisions,
                            backtracks,
                        };
                    }
                    self.set_input(s, pi, Some(val), &mut work);
                }
                None => {
                    // Conflict: flip the most recent unflipped decision.
                    loop {
                        match stack.pop() {
                            None => {
                                return PodemOutcome {
                                    verdict: AtpgOutcome::Undetectable,
                                    work,
                                    decisions,
                                    backtracks,
                                };
                            }
                            Some((pi, val, flipped)) => {
                                self.set_input(s, pi, None, &mut work);
                                if flipped {
                                    continue;
                                }
                                backtracks += 1;
                                steps += 1;
                                work.podem_backtracks += 1;
                                if backtracks > config.backtrack_limit
                                    || steps > config.step_limit
                                {
                                    work.podem_aborts += 1;
                                    return PodemOutcome {
                                        verdict: AtpgOutcome::Aborted,
                                        work,
                                        decisions,
                                        backtracks,
                                    };
                                }
                                stack.push((pi, !val, true));
                                self.set_input(s, pi, Some(!val), &mut work);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_sim::SeqSim;

    fn c17_like() -> (Circuit, Vec<NodeId>) {
        // The ISCAS'85 c17 netlist (all NAND).
        let mut c = Circuit::new("c17");
        let i1 = c.add_input("1");
        let i2 = c.add_input("2");
        let i3 = c.add_input("3");
        let i6 = c.add_input("6");
        let i7 = c.add_input("7");
        let g10 = c.add_gate(GateKind::Nand, vec![i1, i3], "10");
        let g11 = c.add_gate(GateKind::Nand, vec![i3, i6], "11");
        let g16 = c.add_gate(GateKind::Nand, vec![i2, g11], "16");
        let g19 = c.add_gate(GateKind::Nand, vec![g11, i7], "19");
        let g22 = c.add_gate(GateKind::Nand, vec![g10, g16], "22");
        let g23 = c.add_gate(GateKind::Nand, vec![g16, g19], "23");
        c.mark_output(g22);
        c.mark_output(g23);
        (c, vec![i1, i2, i3, i6, i7, g10, g11, g16, g19, g22, g23])
    }

    /// Applies a PODEM test to the good and faulty circuits and checks
    /// an output really differs (unassigned inputs set to 0).
    fn verify_test(circuit: &Circuit, fault: Fault, test: &[(NodeId, bool)]) -> bool {
        let mut vec0: Vec<V3> = circuit.inputs().iter().map(|_| V3::Zero).collect();
        for &(n, v) in test {
            if let Some(pos) = circuit.inputs().iter().position(|&i| i == n) {
                vec0[pos] = V3::from_bool(v);
            }
        }
        let sim = SeqSim::new(circuit);
        let good = sim.run(&[vec0.clone()], &[], None);
        let bad = sim.run(&[vec0], &[], Some(fault));
        fscan_sim::detects(&good, &bad).is_some()
    }

    /// Reference full resimulation (the pre-event-driven algorithm):
    /// recomputes every value from scratch under the scratch's current
    /// assignment and injections.
    fn reference_values(podem: &Podem<'_>, s: &PodemScratch) -> Vec<D5> {
        let n = podem.circuit.num_nodes();
        let mut values = vec![D5::X; n];
        for &c in &podem.controllable {
            values[c.index()] = match s.assigned[c.index()] {
                Some(b) => D5::known(b),
                None => D5::X,
            };
        }
        for &(f, v) in &podem.fixed {
            values[f.index()] = D5::known(v);
        }
        for (i, inj) in s.stem_inj.iter().take(n).enumerate() {
            let Some(stuck) = *inj else { continue };
            let kind = podem.circuit.node(NodeId::from_index(i)).kind();
            if !kind.is_gate() && !matches!(kind, GateKind::Const0 | GateKind::Const1) {
                let v = values[i];
                values[i] = D5::new(v.good(), V3::from_bool(stuck));
            }
        }
        for &id in &podem.order {
            let node = podem.circuit.node(id);
            let mut out = D5::eval(
                node.kind(),
                node.fanin().iter().enumerate().map(|(pin, &src)| {
                    let mut v = values[src.index()];
                    if let Some(stuck) = podem.branch_at(s, id.index(), pin) {
                        v = D5::new(v.good(), V3::from_bool(stuck));
                    }
                    v
                }),
            );
            if let Some(stuck) = s.stem_inj[id.index()] {
                out = D5::new(out.good(), V3::from_bool(stuck));
            }
            values[id.index()] = out;
        }
        values
    }

    #[test]
    fn finds_tests_for_all_collapsed_c17_faults() {
        let (c, _) = c17_like();
        let faults = fscan_fault::collapse(&c, &fscan_fault::all_faults(&c));
        let controllable = c.inputs().to_vec();
        let observable = c.outputs().to_vec();
        for &f in &faults {
            let podem = Podem::new(&c, controllable.clone(), vec![], observable.clone());
            match podem.run(&[f], &PodemConfig::default()).verdict {
                AtpgOutcome::Test(t) => {
                    assert!(verify_test(&c, f, &t), "bogus test for {f}");
                }
                other => panic!("c17 fault {f} should be testable, got {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_resim_matches_full_reference() {
        // After injection and after every assignment change, the
        // event-driven values must equal a from-scratch resimulation.
        let (c, _) = c17_like();
        let faults = fscan_fault::collapse(&c, &fscan_fault::all_faults(&c));
        let podem = Podem::new(&c, c.inputs().to_vec(), vec![], c.outputs().to_vec());
        let mut s = podem.scratch();
        let mut work = WorkCounters::ZERO;
        for f in faults.iter().take(8) {
            podem.begin(&mut s, std::slice::from_ref(f), &mut work);
            assert_eq!(s.values, reference_values(&podem, &s), "after begin {f}");
            let inputs = c.inputs().to_vec();
            for (i, &pi) in inputs.iter().enumerate() {
                podem.set_input(&mut s, pi, Some(i % 2 == 0), &mut work);
                assert_eq!(s.values, reference_values(&podem, &s), "after set {f}");
            }
            for &pi in inputs.iter().rev() {
                podem.set_input(&mut s, pi, None, &mut work);
                assert_eq!(s.values, reference_values(&podem, &s), "after unset {f}");
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        // A shared engine with one reused scratch must produce the same
        // outcomes and counters as fresh per-run scratches.
        let (c, _) = c17_like();
        let faults = fscan_fault::collapse(&c, &fscan_fault::all_faults(&c));
        let podem = Podem::new(&c, c.inputs().to_vec(), vec![], c.outputs().to_vec());
        let mut shared = podem.scratch();
        for &f in &faults {
            let fresh = podem.run(&[f], &PodemConfig::default());
            let reused = podem.run_with_scratch(&mut shared, &[f], &PodemConfig::default());
            assert_eq!(fresh, reused, "{f}");
        }
    }

    #[test]
    fn event_driven_resim_is_cheaper_than_full_passes() {
        // The old engine charged one full pass (order.len() evals) per
        // search step plus one initial pass; the event-driven engine
        // must beat that bound on every c17 fault.
        let (c, _) = c17_like();
        let faults = fscan_fault::collapse(&c, &fscan_fault::all_faults(&c));
        let podem = Podem::new(&c, c.inputs().to_vec(), vec![], c.outputs().to_vec());
        let full_pass = podem.setup_work().gate_evals;
        for &f in &faults {
            let out = podem.run(&[f], &PodemConfig::default());
            let old_cost = (out.steps() as u64 + 1) * full_pass;
            assert!(
                out.work.gate_evals <= old_cost,
                "{f}: event-driven {} vs full-resim bound {}",
                out.work.gate_evals,
                old_cost
            );
        }
    }

    #[test]
    fn proves_redundant_fault_undetectable() {
        // y = a OR (a AND b): the AND output s-a-0 is classic redundant.
        let mut c = Circuit::new("red");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g");
        let y = c.add_gate(GateKind::Or, vec![a, g], "y");
        c.mark_output(y);
        let podem = Podem::new(&c, vec![a, b], vec![], vec![y]);
        let out = podem.run(&[Fault::stem(g, false)], &PodemConfig::default());
        assert_eq!(out.verdict, AtpgOutcome::Undetectable);
        assert!(out.vector().is_none());
    }

    #[test]
    fn fixed_inputs_can_make_faults_undetectable() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g");
        c.mark_output(g);
        // Pin b = 0: output is constantly 0, so g s-a-0 is undetectable
        // and a s-a-1 is too.
        let podem = Podem::new(&c, vec![a], vec![(b, false)], vec![g]);
        assert_eq!(
            podem
                .run(&[Fault::stem(g, false)], &PodemConfig::default())
                .verdict,
            AtpgOutcome::Undetectable
        );
        assert_eq!(
            podem
                .run(&[Fault::stem(a, true)], &PodemConfig::default())
                .verdict,
            AtpgOutcome::Undetectable
        );
        // But g s-a-1 is testable (any a).
        assert!(matches!(
            podem
                .run(&[Fault::stem(g, true)], &PodemConfig::default())
                .verdict,
            AtpgOutcome::Test(_)
        ));
    }

    #[test]
    fn uncontrollable_input_blocks_test() {
        // g = AND(a, u) with u uncontrollable: faults needing u = 1
        // cannot be tested.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let u = c.add_input("u");
        let g = c.add_gate(GateKind::And, vec![a, u], "g");
        c.mark_output(g);
        let podem = Podem::new(&c, vec![a], vec![], vec![g]);
        assert_eq!(
            podem
                .run(&[Fault::stem(a, false)], &PodemConfig::default())
                .verdict,
            AtpgOutcome::Undetectable
        );
        let _ = u;
    }

    #[test]
    fn branch_fault_testable() {
        let (c, n) = c17_like();
        // Branch fault on g16's second pin (reading g11, which fans out).
        let g16 = n[7];
        let f = Fault::branch(g16, 1, true);
        let podem = Podem::new(&c, c.inputs().to_vec(), vec![], c.outputs().to_vec());
        match podem.run(&[f], &PodemConfig::default()).verdict {
            AtpgOutcome::Test(t) => assert!(verify_test(&c, f, &t)),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn xor_propagation() {
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::Xor, vec![a, b], "g");
        c.mark_output(g);
        for f in [Fault::stem(a, false), Fault::stem(a, true)] {
            let podem = Podem::new(&c, vec![a, b], vec![], vec![g]);
            match podem.run(&[f], &PodemConfig::default()).verdict {
                AtpgOutcome::Test(t) => assert!(verify_test(&c, f, &t), "{f}"),
                other => panic!("{f}: {other:?}"),
            }
        }
    }

    #[test]
    fn pseudo_input_flip_flops_are_assignable() {
        // Scan-style view: FF output is controllable, FF capture is not
        // observable; only the PO is.
        let mut c = Circuit::new("t");
        let pi = c.add_input("pi");
        let ff = c.add_dff_placeholder("ff");
        let g = c.add_gate(GateKind::And, vec![pi, ff], "g");
        c.set_dff_input(ff, g).unwrap();
        c.mark_output(g);
        let podem = Podem::new(&c, vec![pi, ff], vec![], vec![g]);
        match podem.run(&[Fault::stem(g, false)], &PodemConfig::default()).verdict {
            AtpgOutcome::Test(t) => {
                // Test must assign both pi=1 and ff=1.
                let m: std::collections::HashMap<_, _> = t.into_iter().collect();
                assert_eq!(m.get(&pi), Some(&true));
                assert_eq!(m.get(&ff), Some(&true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_site_fault_detected_via_any_copy() {
        // Two "frames": y0 = AND(a, u0), y1 = AND(b, one). The same
        // logical fault (stuck-at-0 on the AND output) is injected in
        // both copies; frame 1 is controllable, so the fault must be
        // detected through it.
        let mut c = Circuit::new("frames");
        let a = c.add_input("a");
        let u0 = c.add_input("u0"); // uncontrollable
        let b = c.add_input("b");
        let one = c.add_const(true, "one");
        let y0 = c.add_gate(GateKind::And, vec![a, u0], "y0");
        let y1 = c.add_gate(GateKind::And, vec![b, one], "y1");
        c.mark_output(y0);
        c.mark_output(y1);
        let podem = Podem::new(&c, vec![a, b], vec![], vec![y0, y1]);
        let faults = [Fault::stem(y0, false), Fault::stem(y1, false)];
        match podem.run(&faults, &PodemConfig::default()).verdict {
            AtpgOutcome::Test(t) => {
                let m: std::collections::HashMap<_, _> = t.into_iter().collect();
                assert_eq!(m.get(&b), Some(&true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn abort_on_tiny_budget() {
        // A deep parity tree makes PODEM backtrack at least once for an
        // unlucky polarity; budget 0 forces an abort on first backtrack.
        let mut c = Circuit::new("parity");
        let mut nets = Vec::new();
        for i in 0..8 {
            nets.push(c.add_input(format!("i{i}")));
        }
        let mut level = nets.clone();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(c.add_gate(GateKind::And, vec![pair[0], pair[1]], "g"));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let root = level[0];
        c.mark_output(root);
        let podem = Podem::new(&c, nets.clone(), vec![], vec![root]);
        let out = podem.run(
            &[Fault::stem(nets[7], false)],
            &PodemConfig {
                backtrack_limit: 0,
                ..PodemConfig::default()
            },
        );
        // Either it finds the test without backtracking (fine) or aborts;
        // it must never claim undetectable.
        assert_ne!(out.verdict, AtpgOutcome::Undetectable);
        assert_eq!(out.backtracks, out.work.podem_backtracks as usize);
    }
}
