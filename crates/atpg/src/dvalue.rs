//! The five-valued D-calculus, represented as good/faulty value pairs.

use std::fmt;

use fscan_netlist::GateKind;
use fscan_sim::{Pv64, V3};

/// A five-valued (Roth D-calculus) logic value, stored as the pair of
/// the good-machine and faulty-machine three-valued values.
///
/// The classic five values map as: `0 = (0,0)`, `1 = (1,1)`,
/// `D = (1,0)`, `D̄ = (0,1)`, `X` = anything involving an unknown.
/// Keeping the two machines explicit makes gate evaluation trivially
/// correct: evaluate each machine independently.
///
/// # Examples
///
/// ```
/// use fscan_atpg::D5;
/// use fscan_sim::V3;
///
/// let d = D5::D;
/// assert_eq!(d.good(), V3::One);
/// assert_eq!(d.faulty(), V3::Zero);
/// assert!(d.is_fault_effect());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct D5 {
    good: V3,
    faulty: V3,
}

impl D5 {
    /// Both machines at 0.
    pub const ZERO: D5 = D5 {
        good: V3::Zero,
        faulty: V3::Zero,
    };
    /// Both machines at 1.
    pub const ONE: D5 = D5 {
        good: V3::One,
        faulty: V3::One,
    };
    /// Good 1, faulty 0 (Roth's D).
    pub const D: D5 = D5 {
        good: V3::One,
        faulty: V3::Zero,
    };
    /// Good 0, faulty 1 (Roth's D̄).
    pub const DBAR: D5 = D5 {
        good: V3::Zero,
        faulty: V3::One,
    };
    /// Both machines unknown.
    pub const X: D5 = D5 {
        good: V3::X,
        faulty: V3::X,
    };

    /// Builds a value from its machine pair.
    pub fn new(good: V3, faulty: V3) -> D5 {
        D5 { good, faulty }
    }

    /// A known equal value on both machines.
    pub fn known(b: bool) -> D5 {
        if b {
            D5::ONE
        } else {
            D5::ZERO
        }
    }

    /// The good-machine value.
    pub fn good(self) -> V3 {
        self.good
    }

    /// The faulty-machine value.
    pub fn faulty(self) -> V3 {
        self.faulty
    }

    /// True for D or D̄: both machines known and different.
    pub fn is_fault_effect(self) -> bool {
        self.good.is_known() && self.faulty.is_known() && self.good != self.faulty
    }

    /// True when either machine is unknown.
    pub fn has_x(self) -> bool {
        !self.good.is_known() || !self.faulty.is_known()
    }

    /// Evaluates a gate over five-valued inputs in one dual-rail kernel
    /// walk: lane 0 carries the good machine, lane 1 the faulty machine,
    /// so a single pass covers both (no `Clone` bound on the iterator).
    ///
    /// Non-combinational kinds ([`GateKind::Input`], [`GateKind::Dff`])
    /// debug-assert and yield [`D5::X`] in release builds — see
    /// [`fscan_sim::kernel::eval_gate`].
    pub fn eval(kind: GateKind, inputs: impl IntoIterator<Item = D5>) -> D5 {
        let out = Pv64::eval(
            kind,
            inputs
                .into_iter()
                .map(|d| Pv64::ALL_X.with(0, d.good).with(1, d.faulty)),
        );
        D5 {
            good: out.get(0),
            faulty: out.get(1),
        }
    }
}

impl Default for D5 {
    fn default() -> D5 {
        D5::X
    }
}

impl fmt::Debug for D5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for D5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match (self.good, self.faulty) {
            (V3::Zero, V3::Zero) => "0",
            (V3::One, V3::One) => "1",
            (V3::One, V3::Zero) => "D",
            (V3::Zero, V3::One) => "D'",
            (V3::X, V3::X) => "X",
            (g, fa) => return write!(f, "({g}/{fa})"),
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_algebra_and() {
        // D AND D = D; D AND D' = 0; D AND 1 = D; D AND 0 = 0; D AND X = X-ish.
        let and = |a, b| D5::eval(GateKind::And, [a, b]);
        assert_eq!(and(D5::D, D5::D), D5::D);
        assert_eq!(and(D5::D, D5::DBAR), D5::ZERO);
        assert_eq!(and(D5::D, D5::ONE), D5::D);
        assert_eq!(and(D5::D, D5::ZERO), D5::ZERO);
        assert!(and(D5::D, D5::X).has_x());
    }

    #[test]
    fn d_algebra_not() {
        let not = |a| D5::eval(GateKind::Not, [a]);
        assert_eq!(not(D5::D), D5::DBAR);
        assert_eq!(not(D5::DBAR), D5::D);
        assert_eq!(not(D5::ZERO), D5::ONE);
    }

    #[test]
    fn xor_propagates_d() {
        let xor = |a, b| D5::eval(GateKind::Xor, [a, b]);
        assert_eq!(xor(D5::D, D5::ZERO), D5::D);
        assert_eq!(xor(D5::D, D5::ONE), D5::DBAR);
        assert_eq!(xor(D5::D, D5::D), D5::ZERO);
    }

    #[test]
    fn fault_effect_detection() {
        assert!(D5::D.is_fault_effect());
        assert!(D5::DBAR.is_fault_effect());
        assert!(!D5::ONE.is_fault_effect());
        assert!(!D5::X.is_fault_effect());
        assert!(!D5::new(V3::One, V3::X).is_fault_effect());
    }

    #[test]
    fn display_forms() {
        assert_eq!(D5::D.to_string(), "D");
        assert_eq!(D5::DBAR.to_string(), "D'");
        assert_eq!(D5::new(V3::One, V3::X).to_string(), "(1/X)");
    }
}
