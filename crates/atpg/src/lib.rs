//! Automatic test pattern generation.
//!
//! Two engines, both built from scratch:
//!
//! * [`Podem`] — a combinational PODEM with SCOAP-guided backtrace,
//!   X-path checking, complete backtracking (so it can *prove*
//!   undetectability) and a backtrack budget. It operates on a *view*
//!   of a circuit: an explicit set of controllable inputs, fixed (pinned)
//!   inputs and observable nets, which is exactly what the scan-mode
//!   models of the DATE'98 flow need.
//! * [`SeqAtpg`] — sequential ATPG by time-frame expansion: the circuit
//!   is unrolled ([`unroll`]) for a growing number of frames and PODEM
//!   runs on the unrolled model with the fault injected in every frame.
//!
//! # Examples
//!
//! ```
//! use fscan_netlist::{Circuit, GateKind};
//! use fscan_fault::Fault;
//! use fscan_atpg::{AtpgOutcome, Podem, PodemConfig};
//!
//! let mut c = Circuit::new("t");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, vec![a, b], "g");
//! c.mark_output(g);
//! let podem = Podem::new(&c, vec![a, b], vec![], vec![g]);
//! let outcome = podem.run(&[Fault::stem(g, false)], &PodemConfig::default());
//! assert!(matches!(outcome.verdict, AtpgOutcome::Test(_)));
//! assert!(outcome.vector().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dvalue;
mod podem;
mod random;
mod sequential;
mod unroll;

pub use dvalue::D5;
pub use podem::{AtpgOutcome, Podem, PodemConfig, PodemOutcome, PodemScratch};
pub use random::random_vectors;
pub use sequential::{SeqAtpg, SeqAtpgConfig, SeqOutcome, SeqTest};
pub use unroll::{unroll, unroll_with_map, unroll_with_map_using, FrameMap, Unrolled};
