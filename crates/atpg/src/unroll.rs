//! Time-frame expansion: unrolling a sequential circuit into a
//! combinational model.

use std::collections::HashMap;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, CompiledTopology, GateKind, NodeId};

/// A sequential circuit unrolled over a fixed number of time frames.
///
/// * Frame-`t` primary inputs become fresh inputs `pi(t, k)`.
/// * Frame-0 flip-flop outputs become fresh inputs `state0(k)` — the
///   caller decides which of them are controllable.
/// * Each flip-flop's D pin in frame `t` drives an explicit *capture
///   buffer* `capture(t, k)`; the buffer feeds the frame-`t+1` state.
///   Capture buffers make flip-flop D-pin branch faults representable as
///   plain stem faults and give sequential ATPG well-defined
///   pseudo-observation points.
/// * Frame-`t` primary outputs are marked as outputs of the unrolled
///   circuit in frame-major order.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_atpg::unroll;
///
/// let mut c = Circuit::new("toggle");
/// let ff = c.add_dff_placeholder("ff");
/// let n = c.add_gate(GateKind::Not, vec![ff], "n");
/// c.set_dff_input(ff, n)?;
/// c.mark_output(ff);
/// let u = unroll(&c, 3);
/// assert_eq!(u.frames(), 3);
/// assert_eq!(u.circuit().outputs().len(), 3);
/// # Ok::<(), fscan_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Unrolled {
    circuit: Circuit,
    frames: usize,
    pi: Vec<Vec<NodeId>>,
    state0: Vec<NodeId>,
    capture: Vec<Vec<NodeId>>,
    po: Vec<Vec<NodeId>>,
}

impl Unrolled {
    /// The unrolled combinational circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of time frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The unrolled node for primary input `k` in frame `t`.
    pub fn pi(&self, t: usize, k: usize) -> NodeId {
        self.pi[t][k]
    }

    /// All frame-`t` primary-input nodes, in original input order.
    pub fn pis(&self, t: usize) -> &[NodeId] {
        &self.pi[t]
    }

    /// The frame-0 state input for flip-flop `k` (original `dffs` order).
    pub fn state0(&self, k: usize) -> NodeId {
        self.state0[k]
    }

    /// All frame-0 state inputs.
    pub fn state0s(&self) -> &[NodeId] {
        &self.state0
    }

    /// The capture buffer of flip-flop `k` in frame `t` (what the
    /// flip-flop would latch at the end of frame `t`).
    pub fn capture(&self, t: usize, k: usize) -> NodeId {
        self.capture[t][k]
    }

    /// All frame-`t` capture buffers.
    pub fn captures(&self, t: usize) -> &[NodeId] {
        &self.capture[t]
    }

    /// The frame-`t` copies of the original primary outputs.
    pub fn pos(&self, t: usize) -> &[NodeId] {
        &self.po[t]
    }

    /// Maps an original-circuit fault into its frame-`t` copy.
    ///
    /// A branch fault on a flip-flop's D pin maps to a stem fault on the
    /// frame's capture buffer (the same physical wire).
    ///
    /// Returns `None` if the faulted structure has no copy in the frame
    /// (cannot happen for faults enumerated from the original circuit).
    pub fn map_fault(&self, original: &Circuit, fault: Fault, t: usize, map: &FrameMap) -> Option<Fault> {
        match fault.site {
            FaultSite::Stem(n) => {
                if original.node(n).kind() == GateKind::Dff {
                    // A DFF output stem in frame t is the state input of
                    // frame t: for t == 0 the state0 input, otherwise the
                    // capture buffer of frame t-1.
                    let k = original.dffs().iter().position(|&d| d == n)?;
                    let node = if t == 0 {
                        self.state0[k]
                    } else {
                        self.capture[t - 1][k]
                    };
                    Some(Fault::stem(node, fault.stuck))
                } else {
                    Some(Fault::stem(*map.node.get(&(t, n))?, fault.stuck))
                }
            }
            FaultSite::Branch { gate, pin } => {
                if original.node(gate).kind() == GateKind::Dff {
                    let k = original.dffs().iter().position(|&d| d == gate)?;
                    Some(Fault::stem(self.capture[t][k], fault.stuck))
                } else {
                    Some(Fault::branch(*map.node.get(&(t, gate))?, pin, fault.stuck))
                }
            }
        }
    }
}

/// Mapping from `(frame, original node)` to unrolled nodes, for gates
/// and primary inputs (flip-flops map through state/capture tables).
#[derive(Clone, Debug, Default)]
pub struct FrameMap {
    /// `(frame, original id)` → unrolled id.
    pub node: HashMap<(usize, NodeId), NodeId>,
}

/// Unrolls `circuit` over `frames` time frames. See [`Unrolled`].
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn unroll(circuit: &Circuit, frames: usize) -> Unrolled {
    let (u, _) = unroll_with_map(circuit, frames);
    u
}

/// Like [`unroll`] but also returns the node map used by
/// [`Unrolled::map_fault`].
pub fn unroll_with_map(circuit: &Circuit, frames: usize) -> (Unrolled, FrameMap) {
    unroll_with_map_using(circuit, &CompiledTopology::compile(circuit), frames)
}

/// [`unroll_with_map`] against an already-compiled topology of
/// `circuit`, reusing its levelized order instead of recompiling.
pub fn unroll_with_map_using(
    circuit: &Circuit,
    topo: &CompiledTopology,
    frames: usize,
) -> (Unrolled, FrameMap) {
    assert!(frames > 0, "need at least one frame");
    debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
    let mut out = Circuit::new(format!("{}@x{}", circuit.name(), frames));
    let mut map = FrameMap::default();

    // Frame-0 state inputs.
    let state0: Vec<NodeId> = circuit
        .dffs()
        .iter()
        .enumerate()
        .map(|(k, _)| out.add_input(format!("s0_{k}")))
        .collect();

    let mut pi_all = Vec::with_capacity(frames);
    let mut capture_all = Vec::with_capacity(frames);
    let mut po_all = Vec::with_capacity(frames);
    // state[k] = unrolled node currently feeding DFF k's output.
    let mut state = state0.clone();

    for t in 0..frames {
        // Fresh PIs for the frame.
        let pis: Vec<NodeId> = circuit
            .inputs()
            .iter()
            .enumerate()
            .map(|(k, &orig)| {
                let id = out.add_input(format!("pi{t}_{k}"));
                map.node.insert((t, orig), id);
                id
            })
            .collect();
        // Copy combinational nodes in topological order.
        let resolve = |map: &FrameMap, state: &[NodeId], orig: NodeId| -> NodeId {
            if let Some(&m) = map.node.get(&(t, orig)) {
                return m;
            }
            let k = circuit
                .dffs()
                .iter()
                .position(|&d| d == orig)
                .expect("unresolved fanin must be a flip-flop");
            state[k]
        };
        for &id in topo.order() {
            let node = circuit.node(id);
            let kind = node.kind();
            if kind == GateKind::Input || kind == GateKind::Dff {
                continue;
            }
            let fanin: Vec<NodeId> = node
                .fanin()
                .iter()
                .map(|&f| resolve(&map, &state, f))
                .collect();
            let name = format!("{}_{t}", node.name().unwrap_or("n"));
            let new_id = if matches!(kind, GateKind::Const0 | GateKind::Const1) {
                out.add_const(kind == GateKind::Const1, name)
            } else {
                out.add_gate(kind, fanin, name)
            };
            map.node.insert((t, id), new_id);
        }
        // Frame POs.
        let pos: Vec<NodeId> = circuit
            .outputs()
            .iter()
            .map(|&o| resolve(&map, &state, o))
            .collect();
        for &p in &pos {
            out.mark_output(p);
        }
        // Capture buffers become next frame's state.
        let captures: Vec<NodeId> = circuit
            .dffs()
            .iter()
            .enumerate()
            .map(|(k, &ff)| {
                let d = circuit.node(ff).fanin()[0];
                let src = resolve(&map, &state, d);
                out.add_gate(GateKind::Buf, vec![src], format!("cap{t}_{k}"))
            })
            .collect();
        state = captures.clone();
        pi_all.push(pis);
        capture_all.push(captures);
        po_all.push(pos);
    }

    debug_assert!(out.validate().is_ok());
    (
        Unrolled {
            circuit: out,
            frames,
            pi: pi_all,
            state0,
            capture: capture_all,
            po: po_all,
        },
        map,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::GateKind;
    use fscan_sim::{CombEvaluator, SeqSim, V3};

    fn toggle() -> Circuit {
        let mut c = Circuit::new("toggle");
        let ff = c.add_dff_placeholder("ff");
        let n = c.add_gate(GateKind::Not, vec![ff], "n");
        c.set_dff_input(ff, n).unwrap();
        c.mark_output(ff);
        c
    }

    #[test]
    fn unrolled_matches_sequential_simulation() {
        // A small circuit with an input: ff <- XOR(ff, pi); po = ff.
        let mut c = Circuit::new("acc");
        let pi = c.add_input("pi");
        let ff = c.add_dff_placeholder("ff");
        let x = c.add_gate(GateKind::Xor, vec![ff, pi], "x");
        c.set_dff_input(ff, x).unwrap();
        c.mark_output(ff);
        let frames = 4;
        let (u, _) = unroll_with_map(&c, frames);
        // Sequential run.
        let stream = [true, false, true, true];
        let vectors: Vec<Vec<V3>> = stream.iter().map(|&b| vec![V3::from(b)]).collect();
        let seq_trace = SeqSim::new(&c).run(&vectors, &[V3::Zero], None);
        // Combinational run on the unrolled model.
        let eval = CombEvaluator::new(u.circuit());
        let mut values = vec![V3::X; u.circuit().num_nodes()];
        values[u.state0(0).index()] = V3::Zero;
        for (t, &b) in stream.iter().enumerate() {
            values[u.pi(t, 0).index()] = V3::from(b);
        }
        eval.eval(u.circuit(), &mut values);
        for t in 0..frames {
            assert_eq!(
                values[u.pos(t)[0].index()],
                seq_trace.outputs[t][0],
                "frame {t}"
            );
        }
    }

    #[test]
    fn toggle_unroll_structure() {
        let c = toggle();
        let u = unroll(&c, 3);
        assert_eq!(u.frames(), 3);
        assert_eq!(u.state0s().len(), 1);
        assert_eq!(u.captures(0).len(), 1);
        // state0 input + 3 × (NOT + capture buf) = 7 nodes.
        assert_eq!(u.circuit().num_nodes(), 7);
    }

    #[test]
    fn map_stem_fault_on_gate() {
        let c = toggle();
        let n = c.find_by_name("n").unwrap();
        let (u, map) = unroll_with_map(&c, 2);
        let f0 = u.map_fault(&c, Fault::stem(n, true), 0, &map).unwrap();
        let f1 = u.map_fault(&c, Fault::stem(n, true), 1, &map).unwrap();
        assert_ne!(f0, f1);
        assert!(matches!(f0.site, FaultSite::Stem(_)));
    }

    #[test]
    fn map_dff_output_fault() {
        let c = toggle();
        let ff = c.dffs()[0];
        let (u, map) = unroll_with_map(&c, 2);
        let f0 = u.map_fault(&c, Fault::stem(ff, false), 0, &map).unwrap();
        assert_eq!(f0, Fault::stem(u.state0(0), false));
        let f1 = u.map_fault(&c, Fault::stem(ff, false), 1, &map).unwrap();
        assert_eq!(f1, Fault::stem(u.capture(0, 0), false));
    }

    #[test]
    fn map_dff_dpin_branch_fault() {
        let c = toggle();
        let ff = c.dffs()[0];
        let (u, map) = unroll_with_map(&c, 2);
        let f = u
            .map_fault(&c, Fault::branch(ff, 0, true), 1, &map)
            .unwrap();
        assert_eq!(f, Fault::stem(u.capture(1, 0), true));
    }
}
