//! Random vector generation for simulation-based phases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fscan_sim::V3;

/// Generates `count` random fully-specified vectors of `width` bits,
/// honoring pinned positions.
///
/// `pins` lists `(position, value)` pairs that every vector must carry —
/// in the DATE'98 flow these are the scan-mode primary-input assignments
/// that keep the functional scan chain sensitized.
///
/// # Examples
///
/// ```
/// use fscan_atpg::random_vectors;
/// use fscan_sim::V3;
///
/// let vecs = random_vectors(4, 10, &[(0, true)], 42);
/// assert_eq!(vecs.len(), 10);
/// assert!(vecs.iter().all(|v| v[0] == V3::One));
/// ```
pub fn random_vectors(
    width: usize,
    count: usize,
    pins: &[(usize, bool)],
    seed: u64,
) -> Vec<Vec<V3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut v: Vec<V3> = (0..width)
                .map(|_| V3::from_bool(rng.gen_bool(0.5)))
                .collect();
            for &(k, b) in pins {
                v[k] = V3::from_bool(b);
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_pinned() {
        let a = random_vectors(8, 5, &[(3, false)], 7);
        let b = random_vectors(8, 5, &[(3, false)], 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v[3] == V3::Zero));
        assert!(a.iter().all(|v| v.len() == 8));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_vectors(16, 8, &[], 1);
        let b = random_vectors(16, 8, &[], 2);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_width_and_count() {
        assert!(random_vectors(0, 3, &[], 0).iter().all(|v| v.is_empty()));
        assert!(random_vectors(4, 0, &[], 0).is_empty());
    }
}
