//! Sequential ATPG by iterative-deepening time-frame expansion.

use std::sync::Arc;

use fscan_fault::Fault;
use fscan_netlist::{Circuit, CompiledTopology, NodeId};
use fscan_sim::WorkCounters;

use crate::podem::{AtpgOutcome, Podem, PodemConfig};
use crate::unroll::unroll_with_map_using;

/// Tuning knobs for [`SeqAtpg`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SeqAtpgConfig {
    /// Maximum number of time frames for iterative deepening.
    pub max_frames: usize,
    /// Total PODEM backtrack budget per fault, spent across the whole
    /// deepening schedule.
    pub backtrack_limit: usize,
    /// Total search-step budget per fault (each step is one event-driven
    /// resimulation of the changed cone in the unrolled model) — the
    /// knob that actually bounds wall-clock time on deep unrollings.
    pub step_limit: usize,
}

impl Default for SeqAtpgConfig {
    fn default() -> SeqAtpgConfig {
        SeqAtpgConfig {
            max_frames: 8,
            backtrack_limit: 10_000,
            step_limit: 8_000,
        }
    }
}

/// A test sequence produced by sequential ATPG.
///
/// `None` entries are don't-cares. `init_state` refers to the
/// controllable flip-flops only (others were X and stay unconstrained).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqTest {
    /// Required initial value per flip-flop (original `dffs` order);
    /// always `None` for uncontrollable flip-flops.
    pub init_state: Vec<Option<bool>>,
    /// Per-frame primary-input vectors (original `inputs` order). Fixed
    /// (pinned) inputs appear with their pinned value.
    pub vectors: Vec<Vec<Option<bool>>>,
}

/// Outcome of a sequential ATPG attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqOutcome {
    /// A (potential) detection sequence was found.
    Test(SeqTest),
    /// The fault is provably undetectable: it is combinationally
    /// undetectable even with every flip-flop controllable and
    /// observable, which soundly implies sequential undetectability.
    Undetectable,
    /// No verdict within the frame/backtrack budget.
    Aborted,
}

/// Sequential test generator over a controllability/observability view
/// of a sequential circuit (paper, Section 5).
///
/// The view mirrors the paper's `n-m.C,o-p.O` circuits: a subset of
/// flip-flops is controllable (their frame-0 state is free), a subset is
/// observable (their captured value reaches the tester through the
/// fault-free tail of the scan chain), and some primary inputs are
/// pinned to scan-mode constants.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::Fault;
/// use fscan_atpg::{SeqAtpg, SeqAtpgConfig, SeqOutcome};
///
/// // ff1 <- pi; ff2 <- ff1; observe ff2's capture.
/// let mut c = Circuit::new("pipe2");
/// let pi = c.add_input("pi");
/// let ff1 = c.add_dff(pi, "ff1");
/// let buf = c.add_gate(GateKind::Buf, vec![ff1], "buf");
/// let ff2 = c.add_dff(buf, "ff2");
/// c.mark_output(ff2);
/// let atpg = SeqAtpg::new(&c)
///     .controllable_ffs(vec![])
///     .observable_ffs(vec![1]);
/// let (out, work) = atpg.run(Fault::stem(buf, false), &SeqAtpgConfig::default());
/// assert!(matches!(out, SeqOutcome::Test(_)));
/// assert!(work.gate_evals > 0);
/// ```
#[derive(Clone, Debug)]
pub struct SeqAtpg<'c> {
    circuit: &'c Circuit,
    topo: Arc<CompiledTopology>,
    controllable_ffs: Vec<usize>,
    observable_ffs: Vec<usize>,
    fixed_pis: Vec<(usize, bool)>,
}

impl<'c> SeqAtpg<'c> {
    /// Creates a generator where, by default, no flip-flop is
    /// controllable or observable and no primary input is pinned.
    pub fn new(circuit: &'c Circuit) -> SeqAtpg<'c> {
        SeqAtpg::with_topology(circuit, CompiledTopology::shared(circuit))
    }

    /// [`SeqAtpg::new`] against an already-compiled topology of the base
    /// circuit: every unrolling reuses its levelized order. (The unrolled
    /// models are distinct circuits and still compile their own plans.)
    pub fn with_topology(circuit: &'c Circuit, topo: Arc<CompiledTopology>) -> SeqAtpg<'c> {
        debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
        SeqAtpg {
            circuit,
            topo,
            controllable_ffs: Vec::new(),
            observable_ffs: Vec::new(),
            fixed_pis: Vec::new(),
        }
    }

    /// Sets the indices (into `Circuit::dffs`) of flip-flops whose
    /// initial state is controllable.
    pub fn controllable_ffs(mut self, ffs: Vec<usize>) -> SeqAtpg<'c> {
        self.controllable_ffs = ffs;
        self
    }

    /// Sets the indices of flip-flops whose captured value is observable
    /// in every frame.
    pub fn observable_ffs(mut self, ffs: Vec<usize>) -> SeqAtpg<'c> {
        self.observable_ffs = ffs;
        self
    }

    /// Pins primary inputs (by index into `Circuit::inputs`) to constants
    /// in every frame (the scan-mode assignments).
    pub fn fixed_pis(mut self, pins: Vec<(usize, bool)>) -> SeqAtpg<'c> {
        self.fixed_pis = pins;
        self
    }

    /// Attempts to generate a test for `fault`.
    ///
    /// Runs a sound undetectability check first (full-scan view, one
    /// frame), then iteratively deepens the restricted view from one
    /// frame up to `config.max_frames`.
    ///
    /// Always returns the exact [`WorkCounters`] alongside the verdict,
    /// summed over the undetectability check and every PODEM run of the
    /// deepening schedule (including each unrolled engine's setup pass).
    /// Deterministic per `(fault, view, config)`.
    pub fn run(&self, fault: Fault, config: &SeqAtpgConfig) -> (SeqOutcome, WorkCounters) {
        // `backtrack_limit` is a *total* budget for this fault, spent
        // across the undetectability check and the whole deepening
        // schedule, so hopeless faults cannot burn the full budget at
        // every depth.
        let mut work = WorkCounters::ZERO;
        let mut budget = config.backtrack_limit;
        let mut steps = config.step_limit;
        let (undetectable, used, w) = self.full_scan_undetectable(fault, budget, steps);
        work += w;
        if undetectable {
            return (SeqOutcome::Undetectable, work);
        }
        budget = budget.saturating_sub(used.0);
        steps = steps.saturating_sub(used.1);
        // Deepen exponentially (1, 2, 4, …, max): a fault needing k
        // frames is found at the first power of two ≥ k, and deep
        // unrollings are only paid for when shallow ones fail.
        let mut schedule: Vec<usize> = Vec::new();
        let mut f = 1;
        while f < config.max_frames {
            schedule.push(f);
            f *= 2;
        }
        schedule.push(config.max_frames);
        for frames in schedule {
            let (outcome, used, w) = self.run_frames(fault, frames, budget, steps);
            work += w;
            match outcome {
                AtpgOutcome::Test(assignments) => {
                    return (SeqOutcome::Test(self.decode(frames, &assignments)), work);
                }
                AtpgOutcome::Undetectable | AtpgOutcome::Aborted => {
                    budget = budget.saturating_sub(used.0);
                    steps = steps.saturating_sub(used.1);
                    if budget == 0 || steps == 0 {
                        break;
                    }
                }
            }
        }
        (SeqOutcome::Aborted, work)
    }

    /// Sound undetectability: combinationally undetectable with every
    /// flip-flop controllable and observable implies sequentially
    /// undetectable under any access scheme. Returns the verdict and the
    /// backtracks consumed.
    fn full_scan_undetectable(
        &self,
        fault: Fault,
        backtrack_limit: usize,
        step_limit: usize,
    ) -> (bool, (usize, usize), WorkCounters) {
        let (u, map) = unroll_with_map_using(self.circuit, &self.topo, 1);
        let Some(f) = u.map_fault(self.circuit, fault, 0, &map) else {
            return (false, (0, 0), WorkCounters::ZERO);
        };
        let free: Vec<NodeId> = self.free_pi_nodes(&u, 1);
        let mut controllable = free;
        controllable.extend_from_slice(u.state0s());
        let mut observable: Vec<NodeId> = u.pos(0).to_vec();
        observable.extend_from_slice(u.captures(0));
        let fixed = self.fixed_nodes(&u, 1);
        let podem = Podem::new(u.circuit(), controllable, fixed, observable);
        let budget = PodemConfig {
            backtrack_limit,
            step_limit,
        };
        let out = podem.run(&[f], &budget);
        let verdict = out.verdict == AtpgOutcome::Undetectable;
        (
            verdict,
            (out.backtracks, out.steps()),
            podem.setup_work() + out.work,
        )
    }

    fn free_pi_nodes(&self, u: &crate::unroll::Unrolled, frames: usize) -> Vec<NodeId> {
        let fixed: std::collections::HashSet<usize> =
            self.fixed_pis.iter().map(|&(k, _)| k).collect();
        let mut out = Vec::new();
        for t in 0..frames {
            for (k, &pi) in u.pis(t).iter().enumerate() {
                if !fixed.contains(&k) {
                    out.push(pi);
                }
            }
        }
        out
    }

    fn fixed_nodes(&self, u: &crate::unroll::Unrolled, frames: usize) -> Vec<(NodeId, bool)> {
        let mut out = Vec::new();
        for t in 0..frames {
            for &(k, v) in &self.fixed_pis {
                out.push((u.pi(t, k), v));
            }
        }
        out
    }

    fn run_frames(
        &self,
        fault: Fault,
        frames: usize,
        backtrack_limit: usize,
        step_limit: usize,
    ) -> (AtpgOutcome, (usize, usize), WorkCounters) {
        let (u, map) = unroll_with_map_using(self.circuit, &self.topo, frames);
        let faults: Vec<Fault> = (0..frames)
            .filter_map(|t| u.map_fault(self.circuit, fault, t, &map))
            .collect();
        let mut controllable = self.free_pi_nodes(&u, frames);
        for &k in &self.controllable_ffs {
            controllable.push(u.state0(k));
        }
        let mut observable: Vec<NodeId> = Vec::new();
        for t in 0..frames {
            observable.extend_from_slice(u.pos(t));
            for &k in &self.observable_ffs {
                observable.push(u.capture(t, k));
            }
        }
        let fixed = self.fixed_nodes(&u, frames);
        let podem = Podem::new(u.circuit(), controllable, fixed, observable);
        let budget = PodemConfig {
            backtrack_limit,
            step_limit,
        };
        let out = podem.run(&faults, &budget);
        let used = (out.backtracks, out.steps());
        let work = podem.setup_work() + out.work;
        (out.verdict, used, work)
    }

    fn decode(&self, frames: usize, assignments: &[(NodeId, bool)]) -> SeqTest {
        // Rebuild the unrolled tables to map node ids back to slots (the
        // unroll is deterministic, so ids match the generation run).
        let (u, _) = unroll_with_map_using(self.circuit, &self.topo, frames);
        let n_pis = self.circuit.inputs().len();
        let n_ffs = self.circuit.dffs().len();
        let mut vectors = vec![vec![None; n_pis]; frames];
        for row in &mut vectors {
            for &(k, v) in &self.fixed_pis {
                row[k] = Some(v);
            }
        }
        let mut init_state = vec![None; n_ffs];
        let mut slot_of: std::collections::HashMap<NodeId, (usize, usize, bool)> =
            std::collections::HashMap::new();
        for t in 0..frames {
            for (k, &pi) in u.pis(t).iter().enumerate() {
                slot_of.insert(pi, (t, k, false));
            }
        }
        for (k, &s) in u.state0s().iter().enumerate() {
            slot_of.insert(s, (0, k, true));
        }
        for &(node, val) in assignments {
            if let Some(&(t, k, is_state)) = slot_of.get(&node) {
                if is_state {
                    init_state[k] = Some(val);
                } else {
                    vectors[t][k] = Some(val);
                }
            }
        }
        SeqTest {
            init_state,
            vectors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::GateKind;
    use fscan_sim::{detects, SeqSim, V3};

    /// A 4-FF shift pipeline with a NAND in the middle whose side input
    /// is a primary input — the canonical functional-scan-path shape.
    fn pipeline() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new("pipe");
        let sin = c.add_input("sin");
        let side = c.add_input("side");
        let ff0 = c.add_dff(sin, "ff0");
        let ff1 = c.add_dff(ff0, "ff1");
        let nand = c.add_gate(GateKind::Nand, vec![ff1, side], "nand");
        let ff2 = c.add_dff(nand, "ff2");
        let ff3 = c.add_dff(ff2, "ff3");
        c.mark_output(ff3);
        (c, nand, side)
    }

    fn apply_test(c: &Circuit, test: &SeqTest, fault: Fault, extra_cycles: usize) -> bool {
        // Fill don't-cares with 0, append flush cycles of zeros.
        let n_pis = c.inputs().len();
        let mut vectors: Vec<Vec<V3>> = test
            .vectors
            .iter()
            .map(|v| v.iter().map(|o| V3::from(o.unwrap_or(false))).collect())
            .collect();
        for _ in 0..extra_cycles {
            vectors.push(vec![V3::Zero; n_pis]);
        }
        let init: Vec<V3> = test
            .init_state
            .iter()
            .map(|o| o.map(V3::from).unwrap_or(V3::X))
            .collect();
        let sim = SeqSim::new(c);
        let good = sim.run(&vectors, &init, None);
        let bad = sim.run(&vectors, &init, Some(fault));
        detects(&good, &bad).is_some()
    }

    #[test]
    fn finds_multi_frame_test() {
        let (c, nand, _) = pipeline();
        // No controllable state, no observable FFs: must drive from sin
        // across frames and observe at the PO after two more frames.
        let atpg = SeqAtpg::new(&c);
        let (out, work) = atpg.run(Fault::stem(nand, true), &SeqAtpgConfig::default());
        assert!(work.gate_evals > 0, "work counters must be returned");
        match out {
            SeqOutcome::Test(t) => {
                assert!(apply_test(&c, &t, Fault::stem(nand, true), 0));
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn controllable_state_shortens_sequences() {
        let (c, nand, _) = pipeline();
        // With ff1 controllable and ff2's capture observable, a single
        // frame suffices.
        let atpg = SeqAtpg::new(&c)
            .controllable_ffs(vec![0, 1])
            .observable_ffs(vec![2, 3]);
        let cfg = SeqAtpgConfig {
            max_frames: 1,
            ..SeqAtpgConfig::default()
        };
        let (out, _) = atpg.run(Fault::stem(nand, true), &cfg);
        assert!(matches!(out, SeqOutcome::Test(_)), "got {out:?}");
    }

    #[test]
    fn pinned_side_input_makes_fault_undetectable() {
        let (c, _, side) = pipeline();
        // Pin side = 1 (scan mode): side s-a-1 cannot be excited.
        let side_idx = c.inputs().iter().position(|&p| p == side).unwrap();
        let atpg = SeqAtpg::new(&c).fixed_pis(vec![(side_idx, true)]);
        let (out, _) = atpg.run(Fault::stem(side, true), &SeqAtpgConfig::default());
        assert_eq!(out, SeqOutcome::Undetectable);
    }

    #[test]
    fn decode_marks_fixed_pins() {
        let (c, nand, side) = pipeline();
        let side_idx = c.inputs().iter().position(|&p| p == side).unwrap();
        let atpg = SeqAtpg::new(&c).fixed_pis(vec![(side_idx, true)]);
        // nand s-a-1: excite by making output 0 (ff1=1, side=1), then
        // propagate. side is pinned to 1 so this works.
        let (out, _) = atpg.run(Fault::stem(nand, true), &SeqAtpgConfig::default());
        match out {
            SeqOutcome::Test(t) => {
                for v in &t.vectors {
                    assert_eq!(v[side_idx], Some(true), "pinned PI must appear pinned");
                }
                assert!(apply_test(&c, &t, Fault::stem(nand, true), 0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aborts_when_frames_insufficient() {
        let (c, nand, _) = pipeline();
        // One frame, nothing controllable/observable except the PO: the
        // effect needs 2 frames to reach ff3. Expect Aborted (not
        // Undetectable! the fault is detectable with more frames).
        let cfg = SeqAtpgConfig {
            max_frames: 1,
            ..SeqAtpgConfig::default()
        };
        let (out, _) = SeqAtpg::new(&c).run(Fault::stem(nand, true), &cfg);
        assert_eq!(out, SeqOutcome::Aborted);
    }
}
