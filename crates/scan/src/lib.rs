//! Design-for-test transformations: scan insertion.
//!
//! Two insertion styles, matching the DATE'98 paper's setting:
//!
//! * [`insert_mux_scan`] — conventional full scan: every flip-flop gets
//!   a multiplexer (built from mission gates here) selecting between its
//!   functional D input and the previous scan cell (paper, Figure 1a).
//! * [`insert_functional_scan`] — test point insertion (TPI) in the
//!   style of Lin et al. (DAC'97): scan paths are routed *through
//!   functional logic* by forcing the side inputs of existing
//!   combinational paths to non-controlling values during scan mode,
//!   using primary-input assignments and, where needed, inserted test
//!   points (paper, Figure 1b). Flip-flops with no affordable functional
//!   path fall back to MUX segments.
//!
//! Both return a [`ScanDesign`] describing the transformed circuit, the
//! scan-mode primary-input constraints, and the full geometry of every
//! chain (cells, sensitized paths, side inputs, inversion parities) —
//! everything the functional scan chain *testing* flow (crate `fscan`)
//! needs.
//!
//! # Examples
//!
//! ```
//! use fscan_netlist::{generate, GeneratorConfig};
//! use fscan_scan::{insert_functional_scan, TpiConfig};
//!
//! let c = generate(&GeneratorConfig::new("demo", 1).gates(120).dffs(10));
//! let design = insert_functional_scan(&c, &TpiConfig::default())?;
//! assert_eq!(design.chains().len(), 1);
//! design.verify()?;
//! # Ok::<(), fscan_scan::ScanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod error;
mod mux;
mod partial;
mod tpi;

pub use design::{ScanCell, ScanChain, ScanDesign, SegmentKind, SideInput};
pub use error::ScanError;
pub use mux::insert_mux_scan;
pub use partial::{
    ff_dependency_graph, ff_dependency_graph_with, insert_partial_scan, select_scan_ffs,
    PartialScanConfig,
};
pub use tpi::{insert_functional_scan, TpiConfig};
