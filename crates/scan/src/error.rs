//! Error type for scan insertion and verification.

use std::error::Error;
use std::fmt;

use fscan_netlist::NodeId;

/// Errors reported by scan insertion and scan-design verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScanError {
    /// The circuit has no flip-flops to chain.
    NoFlipFlops,
    /// More chains were requested than there are flip-flops.
    TooManyChains {
        /// Requested chain count.
        requested: usize,
        /// Available flip-flops.
        flip_flops: usize,
    },
    /// A side input of a sensitized path does not hold its required
    /// non-controlling value in scan mode.
    SideInputNotForced {
        /// The gate whose side input failed.
        gate: NodeId,
        /// The offending pin.
        pin: usize,
    },
    /// The transformed circuit failed structural validation.
    Structure(String),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::NoFlipFlops => write!(f, "circuit has no flip-flops"),
            ScanError::TooManyChains {
                requested,
                flip_flops,
            } => write!(
                f,
                "requested {requested} chains but only {flip_flops} flip-flops exist"
            ),
            ScanError::SideInputNotForced { gate, pin } => write!(
                f,
                "side input {pin} of path gate {gate} is not forced to its non-controlling value in scan mode"
            ),
            ScanError::Structure(msg) => write!(f, "invalid scan structure: {msg}"),
        }
    }
}

impl Error for ScanError {}
