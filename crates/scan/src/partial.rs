//! Partial scan: chain only a subset of the flip-flops.
//!
//! The paper's methodology also applies "in a partial scan environment"
//! (Section 4). This module provides the classic cycle-breaking flip-flop
//! selection of Cheng and Agrawal ("A partial scan method for sequential
//! circuits with feedback", IEEE ToC 1990 — the paper's reference [3]):
//! scanning a feedback vertex set of the flip-flop dependency graph
//! makes the remaining state pipeline-like, which is what keeps
//! sequential ATPG tractable.

use std::collections::{HashMap, HashSet, VecDeque};

use fscan_netlist::{Circuit, CompiledTopology, GateKind, NodeId};

use crate::design::{ScanChain, ScanDesign};
use crate::error::ScanError;
use crate::mux::{add_mux_segment, add_scan_infra, partition_ffs};

/// Configuration for [`insert_partial_scan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialScanConfig {
    /// Number of scan chains (0 treated as 1).
    pub num_chains: usize,
    /// Whether flip-flops that feed themselves combinationally must be
    /// scanned too (full cycle-breaking). When `false`, self-loops are
    /// tolerated (they only create depth-1 feedback).
    pub break_self_loops: bool,
}

impl Default for PartialScanConfig {
    fn default() -> PartialScanConfig {
        PartialScanConfig {
            num_chains: 1,
            break_self_loops: true,
        }
    }
}

/// The flip-flop dependency graph: `edges[i]` lists the indices (into
/// `Circuit::dffs`) of flip-flops whose D cone reads flip-flop `i`'s Q
/// through combinational logic only.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_scan::ff_dependency_graph;
///
/// // ff0 → ff1 (through a NOT), ff1 → ff0 (direct): a 2-cycle.
/// let mut c = Circuit::new("loop2");
/// let ff0 = c.add_dff_placeholder("ff0");
/// let n = c.add_gate(GateKind::Not, vec![ff0], "n");
/// let ff1 = c.add_dff(n, "ff1");
/// c.set_dff_input(ff0, ff1)?;
/// c.mark_output(ff1);
/// let g = ff_dependency_graph(&c);
/// assert_eq!(g[0], vec![1]);
/// assert_eq!(g[1], vec![0]);
/// # Ok::<(), fscan_netlist::NetlistError>(())
/// ```
pub fn ff_dependency_graph(circuit: &Circuit) -> Vec<Vec<usize>> {
    ff_dependency_graph_with(circuit, &CompiledTopology::compile(circuit))
}

/// [`ff_dependency_graph`] against an already-compiled topology of
/// `circuit`, avoiding a redundant compilation when the caller shares
/// one.
pub fn ff_dependency_graph_with(
    circuit: &Circuit,
    topo: &CompiledTopology,
) -> Vec<Vec<usize>> {
    debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
    let index_of: HashMap<NodeId, usize> = circuit
        .dffs()
        .iter()
        .enumerate()
        .map(|(i, &ff)| (ff, i))
        .collect();
    let mut edges = vec![Vec::new(); circuit.dffs().len()];
    for (i, &ff) in circuit.dffs().iter().enumerate() {
        // Forward BFS through combinational gates from Q.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut reached: HashSet<usize> = HashSet::new();
        queue.push_back(ff);
        seen.insert(ff);
        while let Some(n) = queue.pop_front() {
            for &sink in topo.fanout_sinks(n) {
                match circuit.node(sink).kind() {
                    GateKind::Dff => {
                        if let Some(&j) = index_of.get(&sink) {
                            reached.insert(j);
                        }
                    }
                    k if k.is_gate() && seen.insert(sink) => queue.push_back(sink),
                    _ => {}
                }
            }
        }
        let mut r: Vec<usize> = reached.into_iter().collect();
        r.sort_unstable();
        edges[i] = r;
    }
    edges
}

/// Tarjan strongly-connected components over the subgraph induced by
/// `alive`. Returns SCCs of size ≥ 2, plus self-loop singletons when
/// `include_self_loops`.
fn cyclic_sccs(
    edges: &[Vec<usize>],
    alive: &[bool],
    include_self_loops: bool,
) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan.
    enum Frame {
        Enter(usize),
        Continue(usize, usize),
    }
    for start in 0..n {
        if !alive[start] || index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame::Enter(start)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, mut ei) => {
                    let mut descended = false;
                    while ei < edges[v].len() {
                        let w = edges[v][ei];
                        ei += 1;
                        if !alive[w] {
                            continue;
                        }
                        if index[w] == usize::MAX {
                            call.push(Frame::Continue(v, ei));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let is_cyclic = scc.len() > 1
                            || (include_self_loops && edges[v].contains(&v));
                        if is_cyclic {
                            out.push(scc);
                        }
                    } else {
                        // Propagate lowlink to the parent frame.
                        if let Some(Frame::Continue(p, _)) = call.last() {
                            let p = *p;
                            low[p] = low[p].min(low[v]);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Selects the flip-flops to scan: a feedback vertex set of the
/// dependency graph, chosen greedily by highest `in×out` degree inside
/// the remaining cyclic components (the Cheng–Agrawal heuristic).
/// Returns indices into `Circuit::dffs`, sorted.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{select_scan_ffs, PartialScanConfig};
///
/// let c = generate(&GeneratorConfig::new("d", 2).gates(150).dffs(12));
/// let selected = select_scan_ffs(&c, &PartialScanConfig::default());
/// assert!(selected.len() <= 12);
/// ```
pub fn select_scan_ffs(circuit: &Circuit, config: &PartialScanConfig) -> Vec<usize> {
    let edges = ff_dependency_graph(circuit);
    let n = edges.len();
    let mut alive = vec![true; n];
    let mut selected = Vec::new();
    loop {
        let sccs = cyclic_sccs(&edges, &alive, config.break_self_loops);
        if sccs.is_empty() {
            break;
        }
        // Pick the highest in×out degree vertex of the largest SCC.
        let scc = sccs.iter().max_by_key(|s| s.len()).expect("nonempty");
        let members: HashSet<usize> = scc.iter().copied().collect();
        let degree = |v: usize| {
            let outd = edges[v].iter().filter(|w| members.contains(w)).count();
            let ind = scc
                .iter()
                .filter(|&&u| edges[u].contains(&v))
                .count();
            (outd.max(1)) * (ind.max(1))
        };
        let &pick = scc
            .iter()
            .max_by_key(|&&v| degree(v))
            .expect("nonempty scc");
        alive[pick] = false;
        selected.push(pick);
    }
    selected.sort_unstable();
    selected
}

/// Inserts partial MUX scan: only the selected flip-flops (per
/// [`select_scan_ffs`]) are chained; the rest keep their mission-only
/// behavior and appear to the test flow as uncontrollable state.
///
/// # Errors
///
/// Returns [`ScanError::NoFlipFlops`] when the circuit has no flip-flops
/// at all. A circuit whose dependency graph is already acyclic selects
/// nothing; in that case the flip-flop with the highest degree is
/// scanned anyway so a chain exists (the flow needs a scan-out).
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_partial_scan, PartialScanConfig};
///
/// let c = generate(&GeneratorConfig::new("d", 7).gates(200).dffs(16));
/// let design = insert_partial_scan(&c, &PartialScanConfig::default())?;
/// let chained: usize = design.chains().iter().map(|ch| ch.len()).sum();
/// assert!(chained >= 1 && chained <= 16);
/// design.verify()?;
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
pub fn insert_partial_scan(
    circuit: &Circuit,
    config: &PartialScanConfig,
) -> Result<ScanDesign, ScanError> {
    if circuit.dffs().is_empty() {
        return Err(ScanError::NoFlipFlops);
    }
    let mut selected = select_scan_ffs(circuit, config);
    if selected.is_empty() {
        // Acyclic state: still scan one flip-flop so a chain exists.
        let edges = ff_dependency_graph(circuit);
        let pick = (0..edges.len())
            .max_by_key(|&v| edges[v].len())
            .unwrap_or(0);
        selected.push(pick);
    }
    let ffs: Vec<NodeId> = selected.iter().map(|&i| circuit.dffs()[i]).collect();
    let num_chains = config.num_chains.max(1).min(ffs.len());

    let mut c = circuit.clone();
    let original_gates = c.num_gates();
    let (scan_mode, not_scan) = add_scan_infra(&mut c);
    let mut chains = Vec::with_capacity(num_chains);
    for (k, part) in partition_ffs(&ffs, num_chains).into_iter().enumerate() {
        let scan_in = c.add_input(format!("scan_in{k}"));
        let mut prev = scan_in;
        let mut cells = Vec::with_capacity(part.len());
        for ff in part {
            let cell = add_mux_segment(&mut c, scan_mode, not_scan, ff, prev);
            prev = ff;
            cells.push(cell);
        }
        c.mark_output(prev);
        chains.push(ScanChain { scan_in, cells });
    }
    let added_gates = c.num_gates() - original_gates;
    let design = ScanDesign::new(
        c,
        scan_mode,
        vec![(scan_mode, true)],
        chains,
        0,
        added_gates,
    );
    design.verify()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, GeneratorConfig};

    /// ff0 ⇄ ff1 cycle plus a pipeline ff2 → ff3.
    fn cyclic_circuit() -> Circuit {
        let mut c = Circuit::new("cyc");
        let pi = c.add_input("pi");
        let ff0 = c.add_dff_placeholder("ff0");
        let n0 = c.add_gate(GateKind::Not, vec![ff0], "n0");
        let ff1 = c.add_dff(n0, "ff1");
        let n1 = c.add_gate(GateKind::And, vec![ff1, pi], "n1");
        c.set_dff_input(ff0, n1).unwrap();
        let ff2 = c.add_dff(pi, "ff2");
        let n2 = c.add_gate(GateKind::Buf, vec![ff2], "n2");
        let ff3 = c.add_dff(n2, "ff3");
        let out = c.add_gate(GateKind::Or, vec![ff0, ff3], "out");
        c.mark_output(out);
        c
    }

    #[test]
    fn dependency_graph_finds_the_cycle() {
        let c = cyclic_circuit();
        let g = ff_dependency_graph(&c);
        // dffs order: ff0, ff1, ff2, ff3.
        assert!(g[0].contains(&1));
        assert!(g[1].contains(&0));
        assert_eq!(g[2], vec![3]);
        assert!(g[3].is_empty());
    }

    #[test]
    fn selection_breaks_all_cycles() {
        let c = cyclic_circuit();
        let selected = select_scan_ffs(&c, &PartialScanConfig::default());
        // One of {ff0, ff1} suffices.
        assert_eq!(selected.len(), 1);
        assert!(selected[0] == 0 || selected[0] == 1);
        // After removal, the graph is acyclic.
        let edges = ff_dependency_graph(&c);
        let mut alive = vec![true; edges.len()];
        alive[selected[0]] = false;
        assert!(cyclic_sccs(&edges, &alive, true).is_empty());
    }

    #[test]
    fn self_loops_respected_by_config() {
        let mut c = Circuit::new("selfloop");
        let ff = c.add_dff_placeholder("ff");
        let n = c.add_gate(GateKind::Not, vec![ff], "n");
        c.set_dff_input(ff, n).unwrap();
        c.mark_output(ff);
        let strict = select_scan_ffs(&c, &PartialScanConfig::default());
        assert_eq!(strict, vec![0], "self-loop must be broken by default");
        let lax = select_scan_ffs(
            &c,
            &PartialScanConfig {
                break_self_loops: false,
                ..PartialScanConfig::default()
            },
        );
        assert!(lax.is_empty());
    }

    #[test]
    fn partial_scan_design_verifies_and_is_smaller() {
        // On the hand-built circuit the feedback vertex set is exactly
        // one of four flip-flops, so the saving is guaranteed.
        let circuit = cyclic_circuit();
        let full = crate::insert_mux_scan(&circuit, 1).unwrap();
        let partial = insert_partial_scan(&circuit, &PartialScanConfig::default()).unwrap();
        partial.verify().unwrap();
        let chained: usize = partial.chains().iter().map(|ch| ch.len()).sum();
        assert_eq!(chained, 1);
        assert!(partial.added_gates() < full.added_gates());
        // Generated circuits may be arbitrarily cyclic; the invariant
        // there is only that partial never chains *more* than full scan.
        let gen = generate(&GeneratorConfig::new("p", 13).gates(300).dffs(24));
        let pg = insert_partial_scan(&gen, &PartialScanConfig::default()).unwrap();
        pg.verify().unwrap();
        let chained: usize = pg.chains().iter().map(|ch| ch.len()).sum();
        assert!(chained <= 24);
    }

    #[test]
    fn selection_makes_remaining_graph_acyclic_on_random_circuits() {
        for seed in [3u64, 5, 8, 21] {
            let circuit = generate(&GeneratorConfig::new("p", seed).gates(250).dffs(20));
            let selected = select_scan_ffs(&circuit, &PartialScanConfig::default());
            let edges = ff_dependency_graph(&circuit);
            let mut alive = vec![true; edges.len()];
            for &s in &selected {
                alive[s] = false;
            }
            assert!(
                cyclic_sccs(&edges, &alive, true).is_empty(),
                "seed {seed}: cycles remain"
            );
        }
    }
}
