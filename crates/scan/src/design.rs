//! The scan design produced by insertion: chains, cells, side inputs.

use std::fmt;
use std::sync::{Arc, OnceLock};

use fscan_netlist::{Circuit, CompiledTopology, NetlistDelta, NodeId};
use fscan_sim::{CombEvaluator, V3};

use crate::error::ScanError;

/// How a scan cell receives its shifted data in scan mode.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// A dedicated multiplexer segment (conventional scan).
    Dedicated,
    /// A sensitized path through mission logic (TPI functional scan).
    Functional,
}

/// One forced side input of a sensitized scan path gate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SideInput {
    /// The path gate.
    pub gate: NodeId,
    /// The side pin index on `gate`.
    pub pin: usize,
    /// The net read by that pin.
    pub net: NodeId,
    /// The non-controlling value the net must hold in scan mode.
    pub required: bool,
}

/// One scan cell: a flip-flop plus the sensitized segment that feeds its
/// D pin in scan mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanCell {
    /// The flip-flop.
    pub ff: NodeId,
    /// The net feeding the segment: the previous cell's Q, or the
    /// chain's scan-in input for the first cell.
    pub source: NodeId,
    /// The gates along the sensitized path in order, each with the pin
    /// through which the shifted data enters. The last gate drives the
    /// flip-flop's D pin. Empty when the Q-to-D connection is direct.
    pub path: Vec<(NodeId, usize)>,
    /// Whether the segment inverts the shifted bit.
    pub inverted: bool,
    /// All forced side inputs along the path.
    pub sides: Vec<SideInput>,
    /// Dedicated or functional.
    pub kind: SegmentKind,
}

impl ScanCell {
    /// The nets that carry the shifted data into this cell's flip-flop:
    /// the segment source plus every path gate output.
    pub fn chain_nets(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(self.source).chain(self.path.iter().map(|&(g, _)| g))
    }
}

/// One scan chain: a scan-in input, an ordered list of cells, and the
/// last cell's Q observed as scan-out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanChain {
    /// The dedicated scan-in primary input.
    pub scan_in: NodeId,
    /// The cells in shift order (`cells[0]` is next to scan-in).
    pub cells: Vec<ScanCell>,
}

impl ScanChain {
    /// Chain length in cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the chain has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The scan-out net (the last cell's Q).
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    pub fn scan_out(&self) -> NodeId {
        self.cells.last().expect("empty scan chain").ff
    }

    /// Cumulative inversion parity from scan-in up to and including the
    /// segment feeding cell `k`.
    pub fn parity_to(&self, k: usize) -> bool {
        self.cells[..=k].iter().fold(false, |p, c| p ^ c.inverted)
    }

    /// The scan-in bit stream (first element entered first) that loads
    /// `state[k]` into cell `k` after exactly `len()` clocks, accounting
    /// for segment inversions.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.len()`.
    pub fn scan_in_stream(&self, state: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.len(), "state length != chain length");
        let l = self.len();
        // The bit entered at clock t lands in cell (l-1-t), having passed
        // segments 0..=l-1-t.
        (0..l)
            .map(|t| {
                let cell = l - 1 - t;
                state[cell] ^ self.parity_to(cell)
            })
            .collect()
    }

    /// The bit observed at scan-out `t + 1` clocks after the chain holds
    /// `state` (t = 0 shows the value shifted once), for `t` in
    /// `0..len()-1`... more precisely: returns the full scan-out stream
    /// of length `len()`, where element 0 is the value currently in the
    /// last cell (observed before any further clock).
    ///
    /// While shifting out, cell `k`'s value must travel through segments
    /// `k+1..len()`, accumulating their inversions.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.len()`.
    pub fn expected_scan_out(&self, state: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.len(), "state length != chain length");
        let l = self.len();
        (0..l)
            .map(|t| {
                let cell = l - 1 - t;
                // Parity of segments cell+1 .. l-1.
                let p = self.cells[cell + 1..]
                    .iter()
                    .fold(false, |p, c| p ^ c.inverted);
                state[cell] ^ p
            })
            .collect()
    }
}

/// A circuit with scan inserted, plus everything needed to reason about
/// its scan chains.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::insert_mux_scan;
///
/// let c = generate(&GeneratorConfig::new("d", 3).gates(60).dffs(6));
/// let design = insert_mux_scan(&c, 2)?;
/// assert_eq!(design.chains().len(), 2);
/// assert_eq!(design.chains()[0].len() + design.chains()[1].len(), 6);
/// design.verify()?;
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ScanDesign {
    circuit: Circuit,
    scan_mode: NodeId,
    constraints: Vec<(NodeId, bool)>,
    chains: Vec<ScanChain>,
    test_points: usize,
    added_gates: usize,
    /// Compiled topology of the (frozen) transformed circuit, built on
    /// first use and shared by every engine thereafter.
    topo: OnceLock<Arc<CompiledTopology>>,
}

impl ScanDesign {
    pub(crate) fn new(
        circuit: Circuit,
        scan_mode: NodeId,
        constraints: Vec<(NodeId, bool)>,
        chains: Vec<ScanChain>,
        test_points: usize,
        added_gates: usize,
    ) -> ScanDesign {
        ScanDesign {
            circuit,
            scan_mode,
            constraints,
            chains,
            test_points,
            added_gates,
            topo: OnceLock::new(),
        }
    }

    /// The transformed circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The compiled topology of the transformed circuit: CSR adjacency,
    /// levelized order and index tables, built exactly once on first use
    /// (the circuit is frozen inside a `ScanDesign`) and shared via
    /// [`Arc`] by every downstream engine.
    pub fn topology(&self) -> Arc<CompiledTopology> {
        self.topo
            .get_or_init(|| CompiledTopology::shared(&self.circuit))
            .clone()
    }

    /// Applies an ECO edit script to the scanned circuit, producing a new
    /// design that shares the base's scan fabric — chains, constraints and
    /// the `scan_mode` input are carried over unchanged — and whose
    /// topology is built incrementally via [`CompiledTopology::patch`],
    /// so downstream engines see the delta's dirty cones.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::Structure`] if the edit script fails to apply,
    /// or if it touches any node the scan fabric depends on (chain nets,
    /// flip-flops, side inputs, path gates, `scan_mode` or a constrained
    /// input) — such edits change shift behaviour and must go through a
    /// full re-insertion instead.
    pub fn patched(&self, delta: &NetlistDelta) -> Result<ScanDesign, ScanError> {
        let circuit = delta
            .apply(&self.circuit)
            .map_err(|e| ScanError::Structure(format!("eco delta rejected: {e}")))?;
        let mut frozen: Vec<NodeId> = vec![self.scan_mode];
        frozen.extend(self.constraints.iter().map(|&(pi, _)| pi));
        for chain in &self.chains {
            frozen.push(chain.scan_in);
            for cell in &chain.cells {
                frozen.push(cell.ff);
                frozen.extend(cell.chain_nets());
                for side in &cell.sides {
                    frozen.push(side.gate);
                    frozen.push(side.net);
                }
            }
        }
        frozen.sort_unstable();
        frozen.dedup();
        for id in delta.touched() {
            if frozen.binary_search(&id).is_ok() {
                return Err(ScanError::Structure(format!(
                    "eco delta touches scan fabric node {id}; re-insert scan instead"
                )));
            }
        }
        let topo = Arc::new(self.topology().patch(delta));
        let cell = OnceLock::new();
        let _ = cell.set(topo);
        Ok(ScanDesign {
            circuit,
            scan_mode: self.scan_mode,
            constraints: self.constraints.clone(),
            chains: self.chains.clone(),
            test_points: self.test_points,
            added_gates: self.added_gates,
            topo: cell,
        })
    }

    /// The `scan_mode` primary input (1 during all scan operations).
    pub fn scan_mode(&self) -> NodeId {
        self.scan_mode
    }

    /// The scan-mode primary-input constraints, including
    /// `(scan_mode, true)` and every TPI forcing assignment.
    pub fn constraints(&self) -> &[(NodeId, bool)] {
        &self.constraints
    }

    /// The scan chains.
    pub fn chains(&self) -> &[ScanChain] {
        &self.chains
    }

    /// Number of test points inserted by TPI (0 for pure MUX scan).
    pub fn test_points(&self) -> usize {
        self.test_points
    }

    /// Gates added by scan insertion (multiplexer gates, test points and
    /// the `scan_mode` inverter) — the area overhead the paper's TPI
    /// approach exists to reduce.
    pub fn added_gates(&self) -> usize {
        self.added_gates
    }

    /// The number of dedicated-MUX segments (scan overhead) vs
    /// functional segments across all chains.
    pub fn segment_counts(&self) -> (usize, usize) {
        let mut dedicated = 0;
        let mut functional = 0;
        for chain in &self.chains {
            for cell in &chain.cells {
                match cell.kind {
                    SegmentKind::Dedicated => dedicated += 1,
                    SegmentKind::Functional => functional += 1,
                }
            }
        }
        (dedicated, functional)
    }

    /// The length of the longest chain (the paper's `maxsize`).
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(ScanChain::len).max().unwrap_or(0)
    }

    /// The steady scan-mode values: constrained primary inputs at their
    /// pinned values, free inputs and flip-flop outputs at X, constants
    /// and gates evaluated.
    pub fn scan_mode_values(&self) -> Vec<V3> {
        let eval = CombEvaluator::with_topology(self.topology());
        let mut values = vec![V3::X; self.circuit.num_nodes()];
        for &(pi, v) in &self.constraints {
            values[pi.index()] = V3::from_bool(v);
        }
        eval.eval(&self.circuit, &mut values);
        values
    }

    /// Checks that every chain is actually sensitized in scan mode:
    /// each side input holds its required non-controlling value, each
    /// path gate really drives the next element, and the final gate
    /// drives the flip-flop's D pin.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn verify(&self) -> Result<(), ScanError> {
        self.circuit
            .validate()
            .map_err(|e| ScanError::Structure(e.to_string()))?;
        let values = self.scan_mode_values();
        for chain in &self.chains {
            for cell in &chain.cells {
                // Side inputs must be forced.
                for side in &cell.sides {
                    let v = values[side.net.index()];
                    if v != V3::from_bool(side.required) {
                        return Err(ScanError::SideInputNotForced {
                            gate: side.gate,
                            pin: side.pin,
                        });
                    }
                }
                // Path continuity.
                let mut prev = cell.source;
                for &(gate, pin) in &cell.path {
                    let node = self.circuit.node(gate);
                    if node.fanin().get(pin) != Some(&prev) {
                        return Err(ScanError::Structure(format!(
                            "path gate {gate} pin {pin} does not read {prev}"
                        )));
                    }
                    prev = gate;
                }
                let d = self.circuit.node(cell.ff).fanin()[0];
                if d != prev {
                    return Err(ScanError::Structure(format!(
                        "flip-flop {} D pin reads {d}, expected {prev}",
                        cell.ff
                    )));
                }
            }
        }
        Ok(())
    }

    /// The alternating scan test pattern `0011 0011 …` of the given
    /// length (paper, Section 1): the traditional chain integrity test.
    pub fn alternating_stream(len: usize) -> Vec<bool> {
        (0..len).map(|i| (i / 2) % 2 == 1).collect()
    }
}

impl fmt::Display for ScanDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ded, fun) = self.segment_counts();
        write!(
            f,
            "scan design: {} chains, {} cells ({} functional, {} dedicated segments), {} test points",
            self.chains.len(),
            ded + fun,
            fun,
            ded,
            self.test_points
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(inverted: bool) -> ScanCell {
        ScanCell {
            ff: NodeId::from_index(0),
            source: NodeId::from_index(0),
            path: vec![],
            inverted,
            sides: vec![],
            kind: SegmentKind::Dedicated,
        }
    }

    #[test]
    fn patched_spare_cell_keeps_fabric_and_rejects_fabric_edits() {
        use fscan_netlist::{
            generate, DeltaNode, DeltaRef, GateKind, GeneratorConfig, NetlistDelta, Redrive,
        };
        let c = generate(&GeneratorConfig::new("eco", 7).gates(80).dffs(6));
        let design = crate::insert_mux_scan(&c, 2).unwrap();
        let n = design.circuit().num_nodes();
        let delta = NetlistDelta {
            base_nodes: n,
            added: vec![
                DeltaNode {
                    name: "spare_c".into(),
                    kind: GateKind::Const0,
                    fanin: vec![],
                },
                DeltaNode {
                    name: "spare_g".into(),
                    kind: GateKind::Not,
                    fanin: vec![DeltaRef::Added(0)],
                },
            ],
            redriven: vec![],
            removed: vec![],
            outputs: vec![],
        };
        let patched = design.patched(&delta).unwrap();
        patched.verify().unwrap();
        assert_eq!(patched.chains(), design.chains());
        assert_eq!(patched.constraints(), design.constraints());
        let topo = patched.topology();
        let dirty = topo.dirty().expect("patched topology carries dirty info");
        assert_eq!(dirty.cones().len(), 2);

        // Rewiring a scan flip-flop's D pin changes shift behaviour and
        // must be rejected even though the edit applies cleanly.
        let ff = design.chains()[0].cells[0].ff;
        let bad = NetlistDelta {
            base_nodes: n,
            added: vec![],
            redriven: vec![Redrive {
                node: ff,
                kind: GateKind::Dff,
                fanin: vec![DeltaRef::Base(design.chains()[0].scan_in)],
            }],
            removed: vec![],
            outputs: vec![],
        };
        let err = design.patched(&bad).unwrap_err();
        assert!(err.to_string().contains("scan fabric"));
    }

    #[test]
    fn alternating_pattern() {
        assert_eq!(
            ScanDesign::alternating_stream(8),
            vec![false, false, true, true, false, false, true, true]
        );
    }

    #[test]
    fn scan_in_stream_no_inversion() {
        let chain = ScanChain {
            scan_in: NodeId::from_index(0),
            cells: vec![cell(false), cell(false), cell(false)],
        };
        // Loading [s0, s1, s2]: s2 must enter first.
        let stream = chain.scan_in_stream(&[true, false, true]);
        assert_eq!(stream, vec![true, false, true]);
        // First element entered reaches the last cell.
        assert!(stream[0]); // s2
        assert!(stream[2]); // s0
    }

    #[test]
    fn scan_in_stream_with_inversions() {
        // Segments: inv, pass, inv → parity to cell0 = 1, cell1 = 1, cell2 = 0.
        let chain = ScanChain {
            scan_in: NodeId::from_index(0),
            cells: vec![cell(true), cell(false), cell(true)],
        };
        let state = [true, true, false];
        let stream = chain.scan_in_stream(&state);
        // stream[t] loads cell (2-t): cell2 needs state^parity = 0^0=0,
        // cell1 = 1^1=0, cell0 = 1^1=0.
        assert_eq!(stream, vec![false, false, false]);
    }

    #[test]
    fn expected_scan_out_parity() {
        let chain = ScanChain {
            scan_in: NodeId::from_index(0),
            cells: vec![cell(true), cell(false), cell(true)],
        };
        let state = [true, false, true];
        let out = chain.expected_scan_out(&state);
        // t=0: cell2 directly: 1. t=1: cell1 through seg2 (inv): !0 = 1.
        // t=2: cell0 through seg1+seg2 (parity 1): !1 = 0.
        assert_eq!(out, vec![true, true, false]);
    }

    #[test]
    fn parity_to_accumulates() {
        let chain = ScanChain {
            scan_in: NodeId::from_index(0),
            cells: vec![cell(true), cell(true), cell(false)],
        };
        assert!(chain.parity_to(0));
        assert!(!chain.parity_to(1));
        assert!(!chain.parity_to(2));
    }
}
