//! Test point insertion: functional scan paths through mission logic.
//!
//! Implements the TPI methodology of Lin, Marek-Sadowska, Cheng and Lee
//! (DAC'97) that the DATE'98 paper builds on: a scan path between two
//! flip-flops is a combinational path whose side inputs are forced to
//! non-controlling values during scan mode. Forcing is done preferably
//! by primary-input assignments (justified backward through logic) and
//! otherwise by inserting a test point — an `OR(net, scan_mode)` to
//! force 1 or an `AND(net, NOT scan_mode)` to force 0, both transparent
//! in normal mode.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use fscan_netlist::{Circuit, CompiledTopology, GateKind, NodeId};
use fscan_sim::{CombEvaluator, V3};

use crate::design::{ScanCell, ScanChain, ScanDesign, SegmentKind, SideInput};
use crate::error::ScanError;
use crate::mux::{add_mux_segment, add_scan_infra, partition_ffs};

/// Configuration for [`insert_functional_scan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TpiConfig {
    /// Number of scan chains (0 is treated as 1).
    pub num_chains: usize,
    /// Maximum number of gates along one functional segment.
    pub max_path_len: usize,
    /// Recursion depth for justifying side inputs by PI assignments.
    pub justify_depth: usize,
    /// Whether test points may be inserted when justification fails.
    pub allow_test_points: bool,
    /// Maximum test points spent on a single segment before falling back
    /// to a dedicated MUX segment.
    pub max_test_points_per_segment: usize,
    /// How many candidate paths to try per segment before giving up.
    pub max_candidates: usize,
}

impl Default for TpiConfig {
    fn default() -> TpiConfig {
        TpiConfig {
            num_chains: 1,
            max_path_len: 12,
            justify_depth: 6,
            allow_test_points: true,
            max_test_points_per_segment: 6,
            max_candidates: 16,
        }
    }
}

/// How one side input will be forced.
#[derive(Clone, Debug)]
enum Forcing {
    /// The steady scan-mode value already matches (or another side's
    /// plan already justifies this net to the same value).
    Already,
    /// Justified by the listed primary-input assignments.
    Pis(Vec<(NodeId, bool)>),
    /// A branch test point must be spliced into this pin.
    TestPoint,
}

/// A segment forcing plan: one entry per side input of the candidate
/// path, aligned with the cell's `sides` vector.
type Plan = Vec<Forcing>;

struct Builder<'a> {
    circuit: Circuit,
    config: &'a TpiConfig,
    scan_mode: NodeId,
    not_scan: NodeId,
    constraints: HashMap<NodeId, bool>,
    /// Nets carrying shifted data (must never be forced or rerouted).
    chain_nets: HashSet<NodeId>,
    /// scan_mode / not_scan / test points / mux gates: excluded from
    /// path routing and from receiving test points.
    infrastructure: HashSet<NodeId>,
    /// Scan-in inputs: free data pins, never constrainable.
    reserved: HashSet<NodeId>,
    /// Side inputs of committed segments: every later plan must keep
    /// them at their required values.
    committed_sides: Vec<SideInput>,
    /// Compiled topology of the current working circuit, recompiled by
    /// [`Builder::recompute_steady`] whenever the circuit mutates (the
    /// only place outside `fscan_netlist` allowed to rebuild one).
    topo: Arc<CompiledTopology>,
    steady: Vec<V3>,
    test_points: usize,
    original_gates: usize,
    /// Shared test-point gates: one per (net, forced value), reused by
    /// every pin in any segment that needs the same forcing ("a single
    /// test point may help establish several scan paths").
    tp_cache: HashMap<(NodeId, bool), NodeId>,
}

impl<'a> Builder<'a> {
    fn new(circuit: &Circuit, config: &'a TpiConfig) -> Builder<'a> {
        let original_gates = circuit.num_gates();
        let mut c = circuit.clone();
        let (scan_mode, not_scan) = add_scan_infra(&mut c);
        let mut constraints = HashMap::new();
        constraints.insert(scan_mode, true);
        let topo = CompiledTopology::shared(&c);
        let mut b = Builder {
            circuit: c,
            config,
            scan_mode,
            not_scan,
            constraints,
            chain_nets: HashSet::new(),
            infrastructure: [scan_mode, not_scan].into_iter().collect(),
            reserved: HashSet::new(),
            committed_sides: Vec::new(),
            topo,
            steady: Vec::new(),
            test_points: 0,
            original_gates,
            tp_cache: HashMap::new(),
        };
        b.recompute_steady();
        b
    }

    fn recompute_steady(&mut self) {
        // The circuit just mutated (or is fresh): recompile its plan,
        // then evaluate the steady scan-mode values against it.
        self.topo = CompiledTopology::shared(&self.circuit);
        let mut values = vec![V3::X; self.circuit.num_nodes()];
        for (&pi, &v) in &self.constraints {
            values[pi.index()] = V3::from_bool(v);
        }
        CombEvaluator::with_topology(self.topo.clone()).eval_values(&mut values);
        self.steady = values;
    }

    /// Trial evaluation of the scan-mode steady values under extra PI
    /// assignments and with planned branch test points emulated as
    /// per-pin value overrides.
    fn steady_with(
        &self,
        extra: &[(NodeId, bool)],
        pin_overrides: &HashMap<(NodeId, usize), bool>,
    ) -> Vec<V3> {
        let mut values = vec![V3::X; self.circuit.num_nodes()];
        for (&pi, &v) in &self.constraints {
            values[pi.index()] = V3::from_bool(v);
        }
        for &(pi, v) in extra {
            values[pi.index()] = V3::from_bool(v);
        }
        // Manual topological pass so pin overrides apply mid-evaluation.
        for &id in self.topo.eval_order() {
            let node = self.circuit.node(id);
            let out = fscan_sim::kernel::eval_v3(
                node.kind(),
                node.fanin().iter().enumerate().map(|(pin, &f)| {
                    pin_overrides
                        .get(&(id, pin))
                        .map(|&b| V3::from_bool(b))
                        .unwrap_or(values[f.index()])
                }),
            );
            values[id.index()] = out;
        }
        values
    }

    fn steady_of(&self, n: NodeId) -> V3 {
        self.steady[n.index()]
    }

    /// Finds a functional path from `prev` to some flip-flop in
    /// `remaining`, returning the cell (not yet applied) plus its
    /// forcing plan.
    fn find_path(
        &self,
        prev: NodeId,
        remaining: &HashSet<NodeId>,
    ) -> Option<(ScanCell, Plan)> {
        // parent[gate] = (previous net, pin on gate where data enters)
        let mut parent: HashMap<NodeId, (NodeId, usize)> = HashMap::new();
        let mut depth: HashMap<NodeId, usize> = HashMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut candidates_tried = 0usize;

        let try_candidate = |end_net: NodeId,
                                 dff: NodeId,
                                 parent: &HashMap<NodeId, (NodeId, usize)>|
         -> Option<(ScanCell, Plan)> {
            // Reconstruct the gate path from prev to end_net.
            let mut rev: Vec<(NodeId, usize)> = Vec::new();
            let mut cur = end_net;
            while cur != prev {
                let &(pnet, pin) = parent.get(&cur)?;
                rev.push((cur, pin));
                cur = pnet;
            }
            rev.reverse();
            self.plan_segment(prev, dff, &rev)
        };

        // Zero-gate path: prev directly drives a remaining flip-flop.
        for (sink, pin) in self.topo.fanouts(prev) {
            if pin == 0
                && self.circuit.node(sink).kind() == GateKind::Dff
                && remaining.contains(&sink)
            {
                if let Some(found) = try_candidate(prev, sink, &parent) {
                    return Some(found);
                }
            }
        }

        queue.push_back(prev);
        depth.insert(prev, 0);
        while let Some(net) = queue.pop_front() {
            let d = depth[&net];
            if d >= self.config.max_path_len {
                continue;
            }
            for (gate, pin) in self.topo.fanouts(net) {
                let node = self.circuit.node(gate);
                if !node.kind().is_gate()
                    || parent.contains_key(&gate)
                    || gate == prev
                    || self.infrastructure.contains(&gate)
                    || self.chain_nets.contains(&gate)
                    || self.steady_of(gate).is_known()
                {
                    continue;
                }
                parent.insert(gate, (net, pin));
                depth.insert(gate, d + 1);
                // Does this gate feed a remaining flip-flop's D pin?
                for (sink, spin) in self.topo.fanouts(gate) {
                    if spin == 0
                        && self.circuit.node(sink).kind() == GateKind::Dff
                        && remaining.contains(&sink)
                    {
                        candidates_tried += 1;
                        if let Some(found) = try_candidate(gate, sink, &parent) {
                            return Some(found);
                        }
                        if candidates_tried >= self.config.max_candidates {
                            return None;
                        }
                    }
                }
                queue.push_back(gate);
            }
        }
        None
    }

    /// Checks the side inputs of a candidate path and produces the
    /// forcing plan, or `None` if the segment is not affordable.
    fn plan_segment(
        &self,
        prev: NodeId,
        dff: NodeId,
        path: &[(NodeId, usize)],
    ) -> Option<(ScanCell, Plan)> {
        // The last path element must be the flip-flop's direct D driver.
        let d_driver = self.circuit.node(dff).fanin()[0];
        let last = path.last().map(|&(g, _)| g).unwrap_or(prev);
        if d_driver != last {
            return None;
        }
        let mut plan: Plan = Vec::new();
        let mut sides: Vec<SideInput> = Vec::new();
        let mut tentative: Vec<(NodeId, bool)> = Vec::new();
        // Nets this plan justifies via PIs: (net, value).
        let mut planned_net: HashMap<NodeId, bool> = HashMap::new();
        // Distinct test-point gates the plan will create.
        let mut tp_gates: HashSet<(NodeId, bool)> = HashSet::new();
        let mut inverted = false;

        for &(gate, data_pin) in path {
            let node = self.circuit.node(gate);
            let kind = node.kind();
            inverted ^= kind.output_inverted();
            if node.fanin().len() == 1 {
                continue;
            }
            let required = kind.transparent_side_value()?;
            for (pin, &net) in node.fanin().iter().enumerate() {
                if pin == data_pin {
                    continue;
                }
                sides.push(SideInput {
                    gate,
                    pin,
                    net,
                    required,
                });
                let steady = self.steady_of(net);
                let mut forcing = None;
                if steady == V3::from_bool(required) || planned_net.get(&net) == Some(&required) {
                    forcing = Some(Forcing::Already);
                } else if !steady.is_known()
                    && !planned_net.contains_key(&net)
                    && !self.chain_nets.contains(&net)
                {
                    let base = tentative.len();
                    if self.justify(net, required, &mut tentative, self.config.justify_depth) {
                        planned_net.insert(net, required);
                        forcing = Some(Forcing::Pis(tentative[base..].to_vec()));
                    } else {
                        tentative.truncate(base);
                    }
                }
                let forcing = match forcing {
                    Some(f) => f,
                    None => {
                        // Branch test point: force this pin only. Works
                        // for flip-flop-driven sides, chain-net sides and
                        // sides pinned to the controlling value alike.
                        if !self.config.allow_test_points {
                            return None;
                        }
                        if !self.tp_cache.contains_key(&(net, required)) {
                            tp_gates.insert((net, required));
                            if tp_gates.len() > self.config.max_test_points_per_segment {
                                return None;
                            }
                        }
                        Forcing::TestPoint
                    }
                };
                plan.push(forcing);
            }
        }
        // Trial-validate the whole plan: justification decisions were
        // made against the pre-plan steady values and may interact (one
        // side's PI assignment can imply a controlling value on another
        // side). Simulate with all planned assignments and test points
        // and accept only if every side really holds its value and no
        // data-carrying net (this path's or any earlier chain's) gets
        // pinned to a constant.
        let mut extra: Vec<(NodeId, bool)> = Vec::new();
        let mut pin_overrides: HashMap<(NodeId, usize), bool> = HashMap::new();
        for (side, forcing) in sides.iter().zip(plan.iter()) {
            match forcing {
                Forcing::Already => {}
                Forcing::Pis(pis) => extra.extend(pis.iter().copied()),
                Forcing::TestPoint => {
                    pin_overrides.insert((side.gate, side.pin), side.required);
                }
            }
        }
        let trial = self.steady_with(&extra, &pin_overrides);
        for side in &sides {
            let v = pin_overrides
                .get(&(side.gate, side.pin))
                .map(|&b| V3::from_bool(b))
                .unwrap_or(trial[side.net.index()]);
            if v != V3::from_bool(side.required) {
                return None;
            }
        }
        for &(g, _) in path {
            if trial[g.index()].is_known() {
                return None; // a forced value would block the data path
            }
        }
        for &n in &self.chain_nets {
            if self.circuit.node(n).kind().is_gate() && trial[n.index()].is_known() {
                return None; // would freeze an existing chain segment
            }
        }
        for side in &self.committed_sides {
            if trial[side.net.index()] != V3::from_bool(side.required) {
                return None; // would unpin an earlier segment's side input
            }
        }
        let cell = ScanCell {
            ff: dff,
            source: prev,
            path: path.to_vec(),
            inverted,
            sides,
            kind: SegmentKind::Functional,
        };
        Some((cell, plan))
    }

    /// Attempts to justify `net = value` in scan mode using only
    /// primary-input assignments, appending them to `tentative`.
    fn justify(
        &self,
        net: NodeId,
        value: bool,
        tentative: &mut Vec<(NodeId, bool)>,
        depth: usize,
    ) -> bool {
        let steady = self.steady_of(net);
        if steady == V3::from_bool(value) {
            return true;
        }
        if steady.is_known() {
            return false;
        }
        if depth == 0 || self.chain_nets.contains(&net) {
            // Never pin a data-carrying chain net to a constant.
            return false;
        }
        let node = self.circuit.node(net);
        match node.kind() {
            GateKind::Input => {
                if self.reserved.contains(&net) {
                    return false;
                }
                if let Some(&v) = self.constraints.get(&net) {
                    return v == value;
                }
                if let Some(&(_, v)) = tentative.iter().find(|&&(n, _)| n == net) {
                    return v == value;
                }
                tentative.push((net, value));
                true
            }
            GateKind::Buf => self.justify(node.fanin()[0], value, tentative, depth - 1),
            GateKind::Not => self.justify(node.fanin()[0], !value, tentative, depth - 1),
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let kind = node.kind();
                let ctrl = kind.controlling_value().expect("and/or family");
                let out_ctrl = ctrl ^ kind.output_inverted();
                let fanin = node.fanin().to_vec();
                if value == out_ctrl {
                    // One controlling input suffices: try each.
                    for f in fanin {
                        let base = tentative.len();
                        if self.justify(f, ctrl, tentative, depth - 1) {
                            return true;
                        }
                        tentative.truncate(base);
                    }
                    false
                } else {
                    // Every input must be non-controlling.
                    let base = tentative.len();
                    for f in fanin {
                        if !self.justify(f, !ctrl, tentative, depth - 1) {
                            tentative.truncate(base);
                            return false;
                        }
                    }
                    true
                }
            }
            // XOR/XNOR, flip-flops, constants at X (impossible): give up;
            // a test point will handle it.
            _ => false,
        }
    }

    /// Applies a plan: adds PI constraints and splices branch test
    /// points into the pins that need them, updating the cell's side
    /// records to point at the test-point gates.
    fn apply_plan(&mut self, cell: &mut ScanCell, plan: Plan) {
        debug_assert_eq!(cell.sides.len(), plan.len());
        for (side, forcing) in cell.sides.iter_mut().zip(plan) {
            match forcing {
                Forcing::Already => {}
                Forcing::Pis(pis) => {
                    for (pi, v) in pis {
                        let old = self.constraints.insert(pi, v);
                        debug_assert!(old.is_none() || old == Some(v));
                    }
                }
                Forcing::TestPoint => {
                    let tp = match self.tp_cache.get(&(side.net, side.required)) {
                        Some(&tp) => tp,
                        None => {
                            let tp = self.insert_test_point(side.net, side.required);
                            self.tp_cache.insert((side.net, side.required), tp);
                            tp
                        }
                    };
                    self.circuit
                        .replace_fanin(side.gate, side.pin, tp)
                        .expect("side pin exists");
                    side.net = tp;
                }
            }
        }
        self.recompute_steady();
    }

    /// Creates a branch test-point gate forcing readers to `value`
    /// during scan mode (`OR(net, scan_mode)` for 1, `AND(net,
    /// NOT scan_mode)` for 0). The caller splices it into specific pins;
    /// nothing else is rerouted.
    fn insert_test_point(&mut self, net: NodeId, value: bool) -> NodeId {
        let name = format!("tp{}", self.test_points);
        let tp = if value {
            self.circuit
                .add_gate(GateKind::Or, vec![net, self.scan_mode], name)
        } else {
            self.circuit
                .add_gate(GateKind::And, vec![net, self.not_scan], name)
        };
        self.infrastructure.insert(tp);
        self.test_points += 1;
        tp
    }

    fn build(mut self, original_dffs: &[NodeId]) -> Result<ScanDesign, ScanError> {
        let num_chains = self.config.num_chains.max(1);
        // Chains draw greedily from a global pool; capacities follow the
        // balanced partition sizes. (The paper: "except where functional
        // scan paths are established, the ordering of the scan chain is
        // arbitrary", so we are free to pick orders that maximize
        // functional coverage.)
        let capacities: Vec<usize> = partition_ffs(original_dffs, num_chains)
            .into_iter()
            .map(|p| p.len())
            .collect();
        // Reserve scan-in PIs up front so justification never grabs them.
        let scan_ins: Vec<NodeId> = (0..num_chains)
            .map(|k| {
                let si = self.circuit.add_input(format!("scan_in{k}"));
                self.reserved.insert(si);
                si
            })
            .collect();
        // Adding the scan-in inputs grew the circuit: refresh the plan
        // (their steady values are X — nothing else changes).
        self.recompute_steady();
        let mut pool: HashSet<NodeId> = original_dffs.iter().copied().collect();
        let mut order: Vec<NodeId> = original_dffs.to_vec();
        let mut chains = Vec::with_capacity(num_chains);
        for (k, cap) in capacities.into_iter().enumerate() {
            let scan_in = scan_ins[k];
            let mut prev = scan_in;
            let mut cells: Vec<ScanCell> = Vec::new();
            while cells.len() < cap {
                if let Some((mut cell, plan)) = self.find_path(prev, &pool) {
                    self.apply_plan(&mut cell, plan);
                    self.committed_sides.extend(cell.sides.iter().copied());
                    pool.remove(&cell.ff);
                    order.retain(|&f| f != cell.ff);
                    self.chain_nets.insert(prev);
                    self.chain_nets.extend(cell.chain_nets());
                    self.chain_nets.insert(cell.ff);
                    prev = cell.ff;
                    cells.push(cell);
                } else {
                    let ff = order
                        .iter()
                        .copied()
                        .find(|f| pool.contains(f))
                        .expect("pool nonempty while capacity unmet");
                    let cell =
                        add_mux_segment(&mut self.circuit, self.scan_mode, self.not_scan, ff, prev);
                    for &(g, _) in &cell.path {
                        self.infrastructure.insert(g);
                    }
                    // The `a = AND(func_d, not_scan)` side gate of the mux.
                    for side in &cell.sides {
                        self.infrastructure.insert(side.net);
                    }
                    pool.remove(&ff);
                    order.retain(|&f| f != ff);
                    self.chain_nets.insert(prev);
                    self.chain_nets.extend(cell.chain_nets());
                    self.chain_nets.insert(ff);
                    prev = ff;
                    self.recompute_steady();
                    cells.push(cell);
                }
            }
            self.circuit.mark_output(prev);
            chains.push(ScanChain { scan_in, cells });
        }
        let mut constraints: Vec<(NodeId, bool)> = self.constraints.into_iter().collect();
        constraints.sort();
        let added_gates = self.circuit.num_gates() - self.original_gates;
        let design = ScanDesign::new(
            self.circuit,
            self.scan_mode,
            constraints,
            chains,
            self.test_points,
            added_gates,
        );
        design.verify()?;
        Ok(design)
    }
}

/// Inserts functional scan: flip-flops are chained through sensitized
/// paths in the mission logic wherever affordable, with dedicated MUX
/// segments as fallback. See the module docs for the forcing strategy.
///
/// # Errors
///
/// Returns [`ScanError::NoFlipFlops`] / [`ScanError::TooManyChains`] on
/// impossible configurations, or a verification error if the produced
/// design is inconsistent (a bug, not an expected outcome).
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, SegmentKind, TpiConfig};
///
/// let c = generate(&GeneratorConfig::new("d", 5).gates(150).dffs(12));
/// let design = insert_functional_scan(&c, &TpiConfig::default())?;
/// let (_, functional) = design.segment_counts();
/// assert!(functional > 0, "some functional paths should be found");
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
pub fn insert_functional_scan(
    circuit: &Circuit,
    config: &TpiConfig,
) -> Result<ScanDesign, ScanError> {
    let num_chains = config.num_chains.max(1);
    if circuit.dffs().is_empty() {
        return Err(ScanError::NoFlipFlops);
    }
    if num_chains > circuit.dffs().len() {
        return Err(ScanError::TooManyChains {
            requested: num_chains,
            flip_flops: circuit.dffs().len(),
        });
    }
    Builder::new(circuit, config).build(circuit.dffs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_sim::{SeqSim, V3};

    /// The paper's Figure 1 scenario: a NAND whose side input comes from
    /// a primary input; TPI should sensitize it by assigning the PI.
    #[test]
    fn sensitizes_with_pi_assignment_only() {
        let mut c = Circuit::new("fig1");
        let pi = c.add_input("PI");
        let ff1 = c.add_dff_placeholder("ff1");
        let g = c.add_gate(GateKind::Nand, vec![ff1, pi], "g");
        let ff2 = c.add_dff(g, "ff2");
        let h = c.add_gate(GateKind::Not, vec![ff2], "h");
        c.set_dff_input(ff1, h).unwrap();
        c.mark_output(h);
        let design = insert_functional_scan(&c, &TpiConfig::default()).unwrap();
        design.verify().unwrap();
        // The ff1→ff2 segment must be functional through g (NAND needs
        // side = 1, so PI is constrained to 1); ff2→... would need h.
        let (_, functional) = design.segment_counts();
        assert!(functional >= 1, "{design}");
        // PI constrained to 1.
        assert!(design
            .constraints()
            .iter()
            .any(|&(n, v)| n == pi && v));
    }

    #[test]
    fn inserts_test_point_when_side_not_justifiable() {
        // Side input of the path NAND is driven by an XOR of two FFs:
        // not justifiable by PI assignment → needs a test point.
        let mut c = Circuit::new("tp");
        let ff_a = c.add_dff_placeholder("ffa");
        let ff_b = c.add_dff_placeholder("ffb");
        let ff1 = c.add_dff_placeholder("ff1");
        let side = c.add_gate(GateKind::Xor, vec![ff_a, ff_b], "side");
        let g = c.add_gate(GateKind::And, vec![ff1, side], "g");
        let ff2 = c.add_dff(g, "ff2");
        let sink = c.add_gate(GateKind::Nor, vec![ff2, side], "sink");
        c.set_dff_input(ff1, sink).unwrap();
        let na = c.add_gate(GateKind::Not, vec![ff2], "na");
        let nb = c.add_gate(GateKind::Buf, vec![ff2], "nb");
        c.set_dff_input(ff_a, na).unwrap();
        c.set_dff_input(ff_b, nb).unwrap();
        c.mark_output(sink);
        let cfg = TpiConfig::default();
        let design = insert_functional_scan(&c, &cfg).unwrap();
        design.verify().unwrap();
        let (_, functional) = design.segment_counts();
        // At least one functional segment (which one depends on chain
        // order); if the ff1→ff2 path through g was taken, a test point
        // was required on `side`.
        assert!(functional + design.test_points() > 0);
    }

    #[test]
    fn no_test_points_when_disallowed() {
        let c = generate(&GeneratorConfig::new("d", 21).gates(200).dffs(16));
        let cfg = TpiConfig {
            allow_test_points: false,
            ..TpiConfig::default()
        };
        let design = insert_functional_scan(&c, &cfg).unwrap();
        assert_eq!(design.test_points(), 0);
        design.verify().unwrap();
    }

    #[test]
    fn functional_scan_shifts_correctly() {
        // End-to-end: scan a pattern in through functional paths and
        // check the state, honoring inversion parities.
        let circuit = generate(&GeneratorConfig::new("d", 33).inputs(8).gates(150).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let c = design.circuit();
        let chain = &design.chains()[0];
        let l = chain.len();
        let state: Vec<bool> = (0..l).map(|i| i % 3 == 0).collect();
        let stream = chain.scan_in_stream(&state);
        let n_pis = c.inputs().len();
        let pos_of = |n: NodeId| c.inputs().iter().position(|&p| p == n).unwrap();
        let mut vectors = Vec::new();
        for &bit in &stream {
            let mut v = vec![V3::Zero; n_pis];
            for &(pi, val) in design.constraints() {
                v[pos_of(pi)] = V3::from(val);
            }
            v[pos_of(chain.scan_in)] = V3::from(bit);
            vectors.push(v);
        }
        let sim = SeqSim::new(c);
        let trace = sim.run(&vectors, &vec![V3::X; c.dffs().len()], None);
        for (k, cell) in chain.cells.iter().enumerate() {
            let dff_pos = c.dffs().iter().position(|&f| f == cell.ff).unwrap();
            assert_eq!(
                trace.final_state[dff_pos],
                V3::from(state[k]),
                "cell {k} (ff {}) after scan-in of {state:?} via {stream:?}",
                cell.ff
            );
        }
    }

    #[test]
    fn normal_mode_function_preserved() {
        let circuit = generate(&GeneratorConfig::new("d", 44).inputs(6).gates(120).dffs(6));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let c = design.circuit();
        let orig_sim = SeqSim::new(&circuit);
        let new_sim = SeqSim::new(c);
        let vectors_orig: Vec<Vec<V3>> = (0..12)
            .map(|t| {
                (0..circuit.inputs().len())
                    .map(|k| V3::from((t + k) % 2 == 0))
                    .collect()
            })
            .collect();
        let vectors_new: Vec<Vec<V3>> = vectors_orig
            .iter()
            .map(|v| {
                let mut w = v.clone();
                w.extend(vec![V3::Zero; c.inputs().len() - v.len()]);
                w
            })
            .collect();
        let init = vec![V3::One; circuit.dffs().len()];
        let t_orig = orig_sim.run(&vectors_orig, &init, None);
        let t_new = new_sim.run(&vectors_new, &init, None);
        for t in 0..vectors_orig.len() {
            for k in 0..circuit.outputs().len() {
                assert_eq!(t_orig.outputs[t][k], t_new.outputs[t][k], "cycle {t} po {k}");
            }
        }
    }

    #[test]
    fn multiple_chains_cover_all_ffs() {
        let circuit = generate(&GeneratorConfig::new("d", 55).gates(300).dffs(24));
        let cfg = TpiConfig {
            num_chains: 3,
            ..TpiConfig::default()
        };
        let design = insert_functional_scan(&circuit, &cfg).unwrap();
        assert_eq!(design.chains().len(), 3);
        let total: usize = design.chains().iter().map(ScanChain::len).sum();
        assert_eq!(total, 24);
        // Every FF appears exactly once.
        let mut seen = HashSet::new();
        for chain in design.chains() {
            for cell in &chain.cells {
                assert!(seen.insert(cell.ff), "ff {} chained twice", cell.ff);
            }
        }
        design.verify().unwrap();
    }

    #[test]
    fn reduces_overhead_vs_mux_scan() {
        // The whole point of TPI: fewer dedicated mux segments.
        let circuit = generate(&GeneratorConfig::new("d", 67).gates(400).dffs(32));
        let tpi = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let (dedicated, functional) = tpi.segment_counts();
        assert!(
            3 * functional >= dedicated + functional,
            "expected at least a third functional segments, got {functional} functional / {dedicated} dedicated"
        );
        // And the knob trades area for coverage: a zero budget uses no
        // test points at all.
        let frugal = TpiConfig {
            max_test_points_per_segment: 0,
            ..TpiConfig::default()
        };
        let d2 = insert_functional_scan(&circuit, &frugal).unwrap();
        assert_eq!(d2.test_points(), 0);
    }
}
