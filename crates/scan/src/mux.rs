//! Conventional MUX-scan insertion (the paper's Figure 1a baseline).

use fscan_netlist::{Circuit, GateKind, NodeId};

use crate::design::{ScanCell, ScanChain, ScanDesign, SegmentKind, SideInput};
use crate::error::ScanError;

/// Splits `dffs` into `num_chains` contiguous, near-equal blocks.
pub(crate) fn partition_ffs(dffs: &[NodeId], num_chains: usize) -> Vec<Vec<NodeId>> {
    let n = dffs.len();
    let base = n / num_chains;
    let extra = n % num_chains;
    let mut out = Vec::with_capacity(num_chains);
    let mut start = 0;
    for k in 0..num_chains {
        let len = base + usize::from(k < extra);
        out.push(dffs[start..start + len].to_vec());
        start += len;
    }
    out
}

/// Adds the scan-mode infrastructure (the `scan_mode` input and its
/// inverter) to a circuit.
pub(crate) fn add_scan_infra(circuit: &mut Circuit) -> (NodeId, NodeId) {
    let scan_mode = circuit.add_input("scan_mode");
    let not_scan = circuit.add_gate(GateKind::Not, vec![scan_mode], "not_scan");
    (scan_mode, not_scan)
}

/// Builds one dedicated MUX segment feeding `ff` from `prev`:
/// `D = (func_d AND not_scan) OR (prev AND scan_mode)`.
pub(crate) fn add_mux_segment(
    circuit: &mut Circuit,
    scan_mode: NodeId,
    not_scan: NodeId,
    ff: NodeId,
    prev: NodeId,
) -> ScanCell {
    let func_d = circuit.node(ff).fanin()[0];
    let base = circuit.node(ff).name().unwrap_or("ff").to_string();
    let a = circuit.add_gate(GateKind::And, vec![func_d, not_scan], format!("{base}_mda"));
    let b = circuit.add_gate(GateKind::And, vec![prev, scan_mode], format!("{base}_mdb"));
    let m = circuit.add_gate(GateKind::Or, vec![a, b], format!("{base}_mdm"));
    circuit
        .set_dff_input(ff, m)
        .expect("ff is a flip-flop by construction");
    ScanCell {
        ff,
        source: prev,
        path: vec![(b, 0), (m, 1)],
        inverted: false,
        sides: vec![
            SideInput {
                gate: b,
                pin: 1,
                net: scan_mode,
                required: true,
            },
            SideInput {
                gate: m,
                pin: 0,
                net: a,
                required: false,
            },
        ],
        kind: SegmentKind::Dedicated,
    }
}

/// Inserts conventional full scan: every flip-flop receives a dedicated
/// multiplexer segment; flip-flops are chained in declaration order,
/// split into `num_chains` chains, each with its own scan-in primary
/// input and the last cell's Q marked as a scan-out primary output.
///
/// # Errors
///
/// Returns [`ScanError::NoFlipFlops`] for purely combinational circuits
/// and [`ScanError::TooManyChains`] when `num_chains` exceeds the
/// flip-flop count. `num_chains == 0` is treated as 1.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_mux_scan, SegmentKind};
///
/// let c = generate(&GeneratorConfig::new("d", 3).gates(60).dffs(6));
/// let design = insert_mux_scan(&c, 1)?;
/// assert!(design
///     .chains()[0]
///     .cells
///     .iter()
///     .all(|cell| cell.kind == SegmentKind::Dedicated));
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
pub fn insert_mux_scan(circuit: &Circuit, num_chains: usize) -> Result<ScanDesign, ScanError> {
    let num_chains = num_chains.max(1);
    if circuit.dffs().is_empty() {
        return Err(ScanError::NoFlipFlops);
    }
    if num_chains > circuit.dffs().len() {
        return Err(ScanError::TooManyChains {
            requested: num_chains,
            flip_flops: circuit.dffs().len(),
        });
    }
    let mut c = circuit.clone();
    let original_gates = c.num_gates();
    let (scan_mode, not_scan) = add_scan_infra(&mut c);
    let mut chains = Vec::with_capacity(num_chains);
    for (k, ffs) in partition_ffs(circuit.dffs(), num_chains).into_iter().enumerate() {
        let scan_in = c.add_input(format!("scan_in{k}"));
        let mut prev = scan_in;
        let mut cells = Vec::with_capacity(ffs.len());
        for ff in ffs {
            let cell = add_mux_segment(&mut c, scan_mode, not_scan, ff, prev);
            prev = ff;
            cells.push(cell);
        }
        c.mark_output(prev); // scan-out observes the last cell's Q
        chains.push(ScanChain { scan_in, cells });
    }
    let added_gates = c.num_gates() - original_gates;
    let design = ScanDesign::new(c, scan_mode, vec![(scan_mode, true)], chains, 0, added_gates);
    design.verify()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_sim::{SeqSim, V3};

    #[test]
    fn partition_balances() {
        let ids: Vec<NodeId> = (0..7).map(NodeId::from_index).collect();
        let parts = partition_ffs(&ids, 3);
        assert_eq!(parts.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 2, 2]);
        let flat: Vec<NodeId> = parts.concat();
        assert_eq!(flat, ids);
    }

    #[test]
    fn rejects_no_ffs() {
        let mut c = Circuit::new("comb");
        let a = c.add_input("a");
        c.mark_output(a);
        assert!(matches!(insert_mux_scan(&c, 1), Err(ScanError::NoFlipFlops)));
    }

    #[test]
    fn rejects_too_many_chains() {
        let c = generate(&GeneratorConfig::new("d", 1).gates(30).dffs(2));
        assert!(matches!(
            insert_mux_scan(&c, 5),
            Err(ScanError::TooManyChains { .. })
        ));
    }

    #[test]
    fn chain_shifts_data_end_to_end() {
        let circuit = generate(&GeneratorConfig::new("d", 7).inputs(5).gates(80).dffs(5));
        let design = insert_mux_scan(&circuit, 1).unwrap();
        let c = design.circuit();
        let chain = &design.chains()[0];
        assert_eq!(chain.len(), 5);
        // Shift in a pattern and read it back out by simulation.
        let state = [true, false, true, true, false];
        let stream = chain.scan_in_stream(&state);
        let n_pis = c.inputs().len();
        let si_pos = c.inputs().iter().position(|&p| p == chain.scan_in).unwrap();
        let sm_pos = c
            .inputs()
            .iter()
            .position(|&p| p == design.scan_mode())
            .unwrap();
        let mut vectors = Vec::new();
        for &bit in &stream {
            let mut v = vec![V3::Zero; n_pis];
            v[si_pos] = V3::from(bit);
            v[sm_pos] = V3::One;
            vectors.push(v);
        }
        let sim = SeqSim::new(c);
        let trace = sim.run(&vectors, &vec![V3::X; c.dffs().len()], None);
        // After len cycles, cell k (in chain order) holds state[k].
        for (k, cell) in chain.cells.iter().enumerate() {
            let dff_pos = c.dffs().iter().position(|&f| f == cell.ff).unwrap();
            assert_eq!(
                trace.final_state[dff_pos],
                V3::from(state[k]),
                "cell {k} after scan-in"
            );
        }
    }

    #[test]
    fn normal_mode_preserves_function() {
        // With scan_mode = 0, the transformed circuit must behave exactly
        // like the original on random vectors.
        let circuit = generate(&GeneratorConfig::new("d", 11).inputs(6).gates(100).dffs(6));
        let design = insert_mux_scan(&circuit, 2).unwrap();
        let c = design.circuit();
        let orig_sim = SeqSim::new(&circuit);
        let new_sim = SeqSim::new(c);
        let vectors_orig: Vec<Vec<V3>> = (0..10)
            .map(|t| {
                (0..circuit.inputs().len())
                    .map(|k| V3::from((t * 7 + k) % 3 == 0))
                    .collect()
            })
            .collect();
        // New circuit has extra PIs (scan_mode, scan_in0, scan_in1): keep
        // scan_mode = 0, scan-ins arbitrary.
        let vectors_new: Vec<Vec<V3>> = vectors_orig
            .iter()
            .map(|v| {
                let mut w = v.clone();
                w.extend(vec![V3::Zero; c.inputs().len() - v.len()]);
                w
            })
            .collect();
        let init = vec![V3::Zero; circuit.dffs().len()];
        let t_orig = orig_sim.run(&vectors_orig, &init, None);
        let t_new = new_sim.run(&vectors_new, &init, None);
        // Compare the original POs (the first outputs of the new circuit).
        for t in 0..vectors_orig.len() {
            for k in 0..circuit.outputs().len() {
                assert_eq!(t_orig.outputs[t][k], t_new.outputs[t][k], "cycle {t} po {k}");
            }
        }
    }

    #[test]
    fn verify_passes_and_counts() {
        let circuit = generate(&GeneratorConfig::new("d", 13).gates(50).dffs(4));
        let design = insert_mux_scan(&circuit, 2).unwrap();
        design.verify().unwrap();
        let (ded, fun) = design.segment_counts();
        assert_eq!(ded, 4);
        assert_eq!(fun, 0);
        assert_eq!(design.test_points(), 0);
        assert_eq!(design.max_chain_len(), 2);
    }
}
