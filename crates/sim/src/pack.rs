//! Value-aware word packing for the packed implication engine
//! ([`PackedImplicationEngine`](crate::PackedImplicationEngine)).
//!
//! The packed engine evaluates each gate of a word's union implication
//! cone once for all `W::LANES` lanes, so its work is `Σ_w |union cone
//! of word w|` — minimized when the faults sharing a word have
//! overlapping cones. [`pack_order`] orders a collapsed fault list so
//! consecutive fault words do exactly that, using two cheap analyses of
//! the steady state the engine will run against:
//!
//! 1. **Sensitized depth-first positions.** A DFS pre-order over only
//!    the *sensitized* fanout edges — an edge `u → g` is skipped when
//!    some other input of `g` holds a known controlling value in the
//!    steady state, because no difference can pass `g` through `u`
//!    then. Positions over this subgraph place every node immediately
//!    before the part of its fanout a fault effect can actually reach,
//!    so sorting by position packs faults with genuinely overlapping
//!    cones (a plain topological level order is far worse: it
//!    interleaves unrelated regions that happen to sit at the same
//!    depth).
//! 2. **Transmitted-effect classes.** Each fault's local difference is
//!    propagated along its fanout-free single-fanout chain with a few
//!    scalar kernel evaluations. Faults whose differences die inside
//!    the chain ("dead") are grouped by their fanout-free region, away
//!    from the live faults; live faults are keyed by the stem their
//!    difference reaches and the value it carries there — two faults
//!    with the same `(stem, value)` have *identical* cones from that
//!    stem on and share every downstream gate evaluation.
//!
//! Both analyses are pure functions of the topology and the steady
//! values, so the order — and therefore every packed word and every
//! work counter — is identical for any thread count. The chain walks
//! cost a couple of scalar kernel evaluations per fault; they are a
//! packing heuristic, not simulation work, and are not recorded in
//! [`WorkCounters`](crate::WorkCounters).

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{CompiledTopology, GateKind, NodeId};

use crate::kernel;
use crate::value::V3;

/// The known side-input value that fixes a gate's output regardless of
/// the remaining inputs, if the kind has one.
fn controlling(kind: GateKind) -> Option<V3> {
    match kind {
        GateKind::And | GateKind::Nand => Some(V3::Zero),
        GateKind::Or | GateKind::Nor => Some(V3::One),
        _ => None,
    }
}

/// DFS pre-order positions over the sensitized fanout edges; every node
/// gets a position (unsensitized regions are traversed from their own
/// roots, in topological order).
fn sensitized_positions(topo: &CompiledTopology, good: &[V3]) -> Vec<u32> {
    let pos = topo.order_positions();
    let live = |from: NodeId, gate: NodeId| -> bool {
        if pos[gate.index()] == u32::MAX {
            return false; // flip-flop: propagation stops at the D pin
        }
        match controlling(topo.kind(gate)) {
            None => true,
            Some(cv) => !topo
                .fanin(gate)
                .iter()
                .any(|&side| side != from && good[side.index()] == cv),
        }
    };
    let mut dfs = vec![u32::MAX; topo.num_nodes()];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for &root in topo.order() {
        if dfs[root.index()] != u32::MAX {
            continue;
        }
        stack.push(root);
        while let Some(id) = stack.pop() {
            if dfs[id.index()] != u32::MAX {
                continue;
            }
            dfs[id.index()] = next;
            next += 1;
            // Reverse push keeps sinks in CSR order on the stack pop.
            for &sink in topo.fanout_sinks(id).iter().rev() {
                if dfs[sink.index()] == u32::MAX && live(id, sink) {
                    stack.push(sink);
                }
            }
        }
    }
    dfs
}

/// Fanout-free region head of every node: follow single-fanout edges
/// until a stem (fanout ≠ 1) or a non-combinational sink.
fn ffr_heads(topo: &CompiledTopology) -> Vec<u32> {
    let pos = topo.order_positions();
    let mut head = vec![u32::MAX; topo.num_nodes()];
    for &id in topo.order().iter().rev() {
        let sinks = topo.fanout_sinks(id);
        head[id.index()] = if sinks.len() == 1 && pos[sinks[0].index()] != u32::MAX {
            head[sinks[0].index()]
        } else {
            id.index() as u32
        };
    }
    head
}

/// Where a fault's local difference ends up after its single-fanout
/// chain: `Some((stem_node, value))` if it survives to the region's
/// stem, `None` if it never excites or dies inside the chain.
fn transmitted_effect(topo: &CompiledTopology, good: &[V3], fault: Fault) -> Option<(usize, V3)> {
    let pos = topo.order_positions();
    let (mut node, mut val) = match fault.site {
        FaultSite::Stem(n) => {
            let v = V3::from_bool(fault.stuck);
            if good[n.index()] == v {
                return None;
            }
            (n, v)
        }
        FaultSite::Branch { gate, pin } => {
            if pos[gate.index()] == u32::MAX {
                return None; // DFF D-pin branch: inert in scan mode
            }
            let out = kernel::eval_v3(
                topo.kind(gate),
                topo.fanin(gate).iter().enumerate().map(|(p, &src)| {
                    if p == pin {
                        V3::from_bool(fault.stuck)
                    } else {
                        good[src.index()]
                    }
                }),
            );
            if out == good[gate.index()] {
                return None;
            }
            (gate, out)
        }
    };
    loop {
        let sinks = topo.fanout_sinks(node);
        if sinks.len() != 1 || pos[sinks[0].index()] == u32::MAX {
            return Some((node.index(), val));
        }
        let gate = sinks[0];
        let out = kernel::eval_v3(
            topo.kind(gate),
            topo.fanin(gate)
                .iter()
                .map(|&src| if src == node { val } else { good[src.index()] }),
        );
        if out == good[gate.index()] {
            return None;
        }
        node = gate;
        val = out;
    }
}

/// Deterministic permutation packing `faults` into words with
/// overlapping implication cones under the `good` steady state (see the
/// module docs for the two analyses behind it).
///
/// Ties break by node index, pin, stuck polarity and original
/// position, so the order is a pure function of the fault list, the
/// topology and the steady values — identical for every thread count.
///
/// The sort key never mentions a lane width: the permutation is
/// *width-invariant*, so cutting it into 64- or 256-lane words yields
/// the same fault order lane by lane — the property that keeps packed
/// verdicts byte-identical across rail widths. (Wider words simply
/// merge adjacent runs of the same order into one union cone.)
///
/// Returns `order` such that `faults[order[w * LANES + lane]]` is the
/// fault in lane `lane` of word `w` at any lane width; it is always a
/// permutation of `0..faults.len()`.
pub fn pack_order(topo: &CompiledTopology, good: &[V3], faults: &[Fault]) -> Vec<usize> {
    assert_eq!(
        good.len(),
        topo.num_nodes(),
        "steady values must cover every node"
    );
    let dfs = sensitized_positions(topo, good);
    let heads = ffr_heads(topo);
    let mut order: Vec<usize> = (0..faults.len()).collect();
    order.sort_unstable_by_key(|&i| {
        let f = faults[i];
        let (node, pin) = match f.site {
            FaultSite::Stem(n) => (n, usize::MAX),
            FaultSite::Branch { gate, pin } => (gate, pin),
        };
        let class = match transmitted_effect(topo, good, f) {
            Some((stem, val)) => (0u8, dfs[stem], val as u8),
            None => (1u8, dfs[heads[node.index()] as usize], 0),
        };
        (class, dfs[node.index()], node.index(), pin, f.stuck, i)
    });
    order
}

/// [`pack_order`] under its historical 64-lane name.
pub fn pack_order64(topo: &CompiledTopology, good: &[V3], faults: &[Fault]) -> Vec<usize> {
    pack_order(topo, good, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_fault::all_faults;
    use fscan_netlist::Circuit;

    fn sample() -> (Circuit, Vec<Fault>, [NodeId; 3]) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1");
        let g2 = c.add_gate(GateKind::Not, vec![a], "g2");
        let g3 = c.add_gate(GateKind::Or, vec![g1, g2], "g3");
        c.mark_output(g3);
        let faults = all_faults(&c);
        (c, faults, [g1, g2, g3])
    }

    fn all_x(c: &Circuit) -> Vec<V3> {
        vec![V3::X; c.num_nodes()]
    }

    #[test]
    fn order_is_a_permutation() {
        let (c, faults, _) = sample();
        let topo = CompiledTopology::compile(&c);
        let order = pack_order(&topo, &all_x(&c), &faults);
        assert_eq!(order, pack_order64(&topo, &all_x(&c), &faults));
        let mut seen = vec![false; faults.len()];
        for &i in &order {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn order_groups_equal_effect_classes_adjacently() {
        let (c, faults, _) = sample();
        let topo = CompiledTopology::compile(&c);
        let good = all_x(&c);
        let order = pack_order(&topo, &good, &faults);
        // Faults whose local difference reaches the same stem with the
        // same value have identical cones from that stem on — the
        // cheapest possible lane sharing — so each such class must
        // occupy one contiguous run of slots. (Every live class sorts
        // before every dead fault, so equal keys cannot straddle one.)
        let keys: Vec<_> = order
            .iter()
            .map(|&i| transmitted_effect(&topo, &good, faults[i]))
            .collect();
        assert!(keys.iter().any(|k| k.is_some()), "some fault must excite");
        for j in 0..keys.len() {
            for k in j + 1..keys.len() {
                if keys[j].is_some() && keys[j] == keys[k] {
                    assert!(
                        (j..k).all(|m| keys[m] == keys[j]),
                        "effect class {:?} split across non-adjacent slots",
                        keys[j]
                    );
                }
            }
        }
    }

    #[test]
    fn order_is_input_order_invariant() {
        let (c, faults, _) = sample();
        let topo = CompiledTopology::compile(&c);
        let good = all_x(&c);
        let order = pack_order(&topo, &good, &faults);
        let mut reversed: Vec<Fault> = faults.clone();
        reversed.reverse();
        let rev_order = pack_order(&topo, &good, &reversed);
        let packed: Vec<Fault> = order.iter().map(|&i| faults[i]).collect();
        let packed_rev: Vec<Fault> = rev_order.iter().map(|&i| reversed[i]).collect();
        assert_eq!(packed, packed_rev, "packing depends only on the faults");
    }

    #[test]
    fn blocked_side_input_cuts_the_sensitized_edge() {
        // With b = 0 the AND gate g1 is controlled: no difference can
        // pass it through `a`, so the sensitized DFS from `a` reaches
        // the NOT gate g2 (and g3 behind it) but skips g1 — g1 is only
        // numbered later, from `b`.
        let (c, _, [g1, g2, g3]) = sample();
        let topo = CompiledTopology::compile(&c);
        let a = c.inputs()[0];
        let b = c.inputs()[1];
        let mut good = vec![V3::X; c.num_nodes()];
        good[a.index()] = V3::One;
        good[b.index()] = V3::Zero;
        good[g1.index()] = V3::Zero;
        good[g2.index()] = V3::Zero;
        let dfs = sensitized_positions(&topo, &good);
        assert!(dfs[g2.index()] < dfs[g1.index()]);
        assert!(dfs[g3.index()] < dfs[g1.index()]);
    }

    #[test]
    fn effect_stops_at_the_stem() {
        // `a` fans out to two gates, so it is itself the stem: the walk
        // reports the flipped value right there.
        let (c, _, _) = sample();
        let topo = CompiledTopology::compile(&c);
        let a = c.inputs()[0];
        let mut good = vec![V3::X; c.num_nodes()];
        good[a.index()] = V3::One;
        assert_eq!(
            transmitted_effect(&topo, &good, Fault::stem(a, false)),
            Some((a.index(), V3::Zero))
        );
    }

    #[test]
    fn dormant_and_blocked_faults_have_no_effect() {
        let (c, _, [g1, _, _]) = sample();
        let topo = CompiledTopology::compile(&c);
        let a = c.inputs()[0];
        let b = c.inputs()[1];
        let mut good = vec![V3::X; c.num_nodes()];
        good[a.index()] = V3::One;
        assert_eq!(
            transmitted_effect(&topo, &good, Fault::stem(a, true)),
            None,
            "stuck value equals the steady value"
        );
        // A difference that dies at a controlled gate is also dead:
        // forcing pin 0 of the AND to 0 changes nothing while b = 0.
        good[b.index()] = V3::Zero;
        good[g1.index()] = V3::Zero;
        assert_eq!(
            transmitted_effect(&topo, &good, Fault::branch(g1, 0, false)),
            None,
            "side input 0 already controls the AND"
        );
    }
}
