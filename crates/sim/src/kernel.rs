//! The dual-rail three-valued gate-evaluation kernel.
//!
//! Every engine in the workspace reasons over the same three-valued
//! algebra (0, 1, X), and before this module each of them carried its
//! own copy of the gate truth tables: scalar [`V3`], 64-lane packed
//! [`Pv64`](crate::Pv64), and the ATPG's good/faulty `D5` pairs. This
//! module is the single implementation they all call.
//!
//! The representation is *dual-rail*: a value is a pair of lane masks
//! `(zeros, ones)` where bit `i` of `zeros` set means lane `i` holds 0,
//! bit `i` of `ones` set means it holds 1, and neither means X (the
//! masks are disjoint by invariant). Every three-valued gate function
//! then becomes a handful of bitwise operations, identical for any mask
//! width — [`Rail`] abstracts the width, with `bool` the 1-lane
//! instance behind [`V3`] and `u64` the 64-lane instance behind
//! [`Pv64`](crate::Pv64).

use std::fmt;
use std::hash::Hash;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

use fscan_netlist::GateKind;

use crate::value::V3;

/// A lane mask: the rail type of a dual-rail value.
///
/// Implemented for `bool` (one lane), `u64` (64 lanes) and
/// [`Lanes<N>`] (`64 * N` lanes). The required operators are lane-wise,
/// so every dual-rail formula written against this trait is
/// automatically lane-exact at any width, and the lane-indexed
/// accessors ([`lane_bit`](Rail::lane_bit), [`low_mask`](Rail::low_mask))
/// are *width-checked in every build profile*: an out-of-range lane
/// index panics instead of silently wrapping onto the wrong lane.
pub trait Rail:
    Copy
    + Eq
    + Hash
    + fmt::Debug
    + Send
    + Sync
    + 'static
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + Not<Output = Self>
{
    /// Number of lanes this mask carries.
    const LANES: u32;
    /// No lanes set.
    const EMPTY: Self;
    /// Every lane set.
    const FULL: Self;

    /// The mask with only `lane` set.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= Self::LANES` — in release builds too. A
    /// plain `1u64 << lane` wraps the shift amount on x86 and silently
    /// reads the *wrong lane*; this accessor is the checked replacement.
    fn lane_bit(lane: u32) -> Self;

    /// The mask with the low `n` lanes set (`n == LANES` gives `FULL`).
    ///
    /// # Panics
    ///
    /// Panics when `n > Self::LANES`.
    fn low_mask(n: u32) -> Self;

    /// Number of set lanes.
    fn count(self) -> u32;

    /// Whether no lanes are set.
    fn is_empty(self) -> bool {
        self == Self::EMPTY
    }

    /// Calls `f` with every set lane index, lowest first.
    fn for_each_set_lane(self, f: impl FnMut(u32));
}

#[cold]
#[inline(never)]
fn lane_out_of_range(lane: u32, lanes: u32) -> ! {
    panic!("lane index {lane} out of range for a {lanes}-lane rail");
}

impl Rail for bool {
    const LANES: u32 = 1;
    const EMPTY: bool = false;
    const FULL: bool = true;

    fn lane_bit(lane: u32) -> bool {
        if lane >= 1 {
            lane_out_of_range(lane, 1);
        }
        true
    }

    fn low_mask(n: u32) -> bool {
        if n > 1 {
            lane_out_of_range(n, 1);
        }
        n == 1
    }

    fn count(self) -> u32 {
        self as u32
    }

    fn for_each_set_lane(self, mut f: impl FnMut(u32)) {
        if self {
            f(0);
        }
    }
}

impl Rail for u64 {
    const LANES: u32 = 64;
    const EMPTY: u64 = 0;
    const FULL: u64 = !0;

    fn lane_bit(lane: u32) -> u64 {
        if lane >= 64 {
            lane_out_of_range(lane, 64);
        }
        1u64 << lane
    }

    fn low_mask(n: u32) -> u64 {
        match n {
            64 => !0,
            0..=63 => (1u64 << n) - 1,
            _ => lane_out_of_range(n, 64),
        }
    }

    fn count(self) -> u32 {
        self.count_ones()
    }

    fn for_each_set_lane(self, mut f: impl FnMut(u32)) {
        let mut m = self;
        while m != 0 {
            f(m.trailing_zeros());
            m &= m - 1;
        }
    }
}

/// A wide lane mask: `N` 64-bit words glued into one `64 * N`-lane
/// rail. `Lanes<4>` (aliased [`R256`]) is the 256-lane mask behind the
/// pipeline's default packed width.
///
/// The newtype exists because coherence forbids implementing the `std`
/// bit operators directly on `[u64; N]`; all operators act word-wise,
/// which is exactly lane-wise.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Lanes<const N: usize>(pub [u64; N]);

/// The 256-lane rail (four 64-bit words).
pub type R256 = Lanes<4>;

impl<const N: usize> BitAnd for Lanes<N> {
    type Output = Lanes<N>;
    fn bitand(mut self, rhs: Lanes<N>) -> Lanes<N> {
        for i in 0..N {
            self.0[i] &= rhs.0[i];
        }
        self
    }
}

impl<const N: usize> BitOr for Lanes<N> {
    type Output = Lanes<N>;
    fn bitor(mut self, rhs: Lanes<N>) -> Lanes<N> {
        for i in 0..N {
            self.0[i] |= rhs.0[i];
        }
        self
    }
}

impl<const N: usize> BitXor for Lanes<N> {
    type Output = Lanes<N>;
    fn bitxor(mut self, rhs: Lanes<N>) -> Lanes<N> {
        for i in 0..N {
            self.0[i] ^= rhs.0[i];
        }
        self
    }
}

impl<const N: usize> BitAndAssign for Lanes<N> {
    fn bitand_assign(&mut self, rhs: Lanes<N>) {
        for i in 0..N {
            self.0[i] &= rhs.0[i];
        }
    }
}

impl<const N: usize> BitOrAssign for Lanes<N> {
    fn bitor_assign(&mut self, rhs: Lanes<N>) {
        for i in 0..N {
            self.0[i] |= rhs.0[i];
        }
    }
}

impl<const N: usize> Not for Lanes<N> {
    type Output = Lanes<N>;
    fn not(mut self) -> Lanes<N> {
        for i in 0..N {
            self.0[i] = !self.0[i];
        }
        self
    }
}

impl<const N: usize> Rail for Lanes<N> {
    const LANES: u32 = 64 * N as u32;
    const EMPTY: Lanes<N> = Lanes([0; N]);
    const FULL: Lanes<N> = Lanes([!0; N]);

    fn lane_bit(lane: u32) -> Lanes<N> {
        if lane >= Self::LANES {
            lane_out_of_range(lane, Self::LANES);
        }
        let mut words = [0u64; N];
        words[(lane / 64) as usize] = 1u64 << (lane % 64);
        Lanes(words)
    }

    fn low_mask(n: u32) -> Lanes<N> {
        if n > Self::LANES {
            lane_out_of_range(n, Self::LANES);
        }
        let mut words = [0u64; N];
        for (i, w) in words.iter_mut().enumerate() {
            let lo = i as u32 * 64;
            *w = u64::low_mask(n.saturating_sub(lo).min(64));
        }
        Lanes(words)
    }

    fn count(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    fn for_each_set_lane(self, mut f: impl FnMut(u32)) {
        for (i, &word) in self.0.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                f(i as u32 * 64 + m.trailing_zeros());
                m &= m - 1;
            }
        }
    }
}

/// A dual-rail three-valued value over the lane mask `M`.
///
/// Lane `i` holds 0 when `zeros` has bit `i`, 1 when `ones` has bit
/// `i`, and X when neither; the rails never overlap.
///
/// # Examples
///
/// ```
/// use fscan_sim::kernel::DualRail;
///
/// let zero: DualRail<bool> = DualRail::ZERO;
/// let x: DualRail<bool> = DualRail::ALL_X;
/// assert_eq!(zero.and(x), zero); // controlling 0 wins
/// assert_eq!(zero.or(x), x);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DualRail<M: Rail> {
    zeros: M,
    ones: M,
}

impl<M: Rail> DualRail<M> {
    /// Every lane at X.
    pub const ALL_X: DualRail<M> = DualRail {
        zeros: M::EMPTY,
        ones: M::EMPTY,
    };
    /// Every lane at 0.
    pub const ZERO: DualRail<M> = DualRail {
        zeros: M::FULL,
        ones: M::EMPTY,
    };
    /// Every lane at 1.
    pub const ONE: DualRail<M> = DualRail {
        zeros: M::EMPTY,
        ones: M::FULL,
    };

    /// Builds a value from its rails.
    ///
    /// The rails must be disjoint (`zeros & ones == EMPTY`); a debug
    /// assertion enforces it.
    pub fn new(zeros: M, ones: M) -> DualRail<M> {
        debug_assert!(zeros & ones == M::EMPTY, "contradictory dual-rail value");
        DualRail { zeros, ones }
    }

    /// The mask of lanes holding 0.
    pub fn zeros(self) -> M {
        self.zeros
    }

    /// The mask of lanes holding 1.
    pub fn ones(self) -> M {
        self.ones
    }

    /// The mask of lanes holding a known value.
    pub fn known(self) -> M {
        self.zeros | self.ones
    }

    /// Lane-wise NOT: swap the rails.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> DualRail<M> {
        DualRail {
            zeros: self.ones,
            ones: self.zeros,
        }
    }

    /// Lane-wise three-valued AND: a 0 on either side controls, a 1
    /// needs both.
    #[must_use]
    pub fn and(self, rhs: DualRail<M>) -> DualRail<M> {
        DualRail {
            zeros: self.zeros | rhs.zeros,
            ones: self.ones & rhs.ones,
        }
    }

    /// Lane-wise three-valued OR: a 1 on either side controls, a 0
    /// needs both.
    #[must_use]
    pub fn or(self, rhs: DualRail<M>) -> DualRail<M> {
        DualRail {
            zeros: self.zeros & rhs.zeros,
            ones: self.ones | rhs.ones,
        }
    }

    /// Lane-wise three-valued XOR: known only where both sides are.
    #[must_use]
    pub fn xor(self, rhs: DualRail<M>) -> DualRail<M> {
        let known = self.known() & rhs.known();
        let val = (self.ones ^ rhs.ones) & known;
        DualRail {
            zeros: known & !val,
            ones: val,
        }
    }
}

impl<M: Rail> Default for DualRail<M> {
    fn default() -> DualRail<M> {
        DualRail::ALL_X
    }
}

impl From<V3> for DualRail<bool> {
    fn from(v: V3) -> DualRail<bool> {
        match v {
            V3::Zero => DualRail::ZERO,
            V3::One => DualRail::ONE,
            V3::X => DualRail::ALL_X,
        }
    }
}

impl From<DualRail<bool>> for V3 {
    fn from(d: DualRail<bool>) -> V3 {
        if d.zeros {
            V3::Zero
        } else if d.ones {
            V3::One
        } else {
            V3::X
        }
    }
}

/// Error for a gate evaluation requested on a kind that has no
/// combinational function ([`GateKind::Input`] or [`GateKind::Dff`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NonCombinational(pub GateKind);

impl fmt::Display for NonCombinational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate evaluation on non-combinational kind {:?}", self.0)
    }
}

impl std::error::Error for NonCombinational {}

/// Evaluates a combinational gate kind over dual-rail inputs, at any
/// lane width.
///
/// This is the one gate-truth-table implementation in the workspace;
/// [`V3`], [`Pv64`](crate::Pv64) and the ATPG's `D5` all evaluate
/// through it.
///
/// Non-combinational kinds ([`GateKind::Input`], [`GateKind::Dff`])
/// have no gate function: in debug builds this asserts, in release
/// builds it returns all-X (the sound "don't know" answer) instead of
/// panicking — callers that need to handle the case explicitly use
/// [`try_eval_gate`].
pub fn eval_gate<M: Rail>(
    kind: GateKind,
    inputs: impl IntoIterator<Item = DualRail<M>>,
) -> DualRail<M> {
    match try_eval_gate(kind, inputs) {
        Ok(v) => v,
        Err(e) => {
            debug_assert!(false, "{e}");
            DualRail::ALL_X
        }
    }
}

/// [`eval_gate`] returning a typed error for non-combinational kinds.
pub fn try_eval_gate<M: Rail>(
    kind: GateKind,
    inputs: impl IntoIterator<Item = DualRail<M>>,
) -> Result<DualRail<M>, NonCombinational> {
    let mut it = inputs.into_iter();
    Ok(match kind {
        GateKind::Const0 => DualRail::ZERO,
        GateKind::Const1 => DualRail::ONE,
        GateKind::Buf => it.next().unwrap_or(DualRail::ALL_X),
        GateKind::Not => it.next().unwrap_or(DualRail::ALL_X).not(),
        GateKind::And => it.fold(DualRail::ONE, DualRail::and),
        GateKind::Nand => it.fold(DualRail::ONE, DualRail::and).not(),
        GateKind::Or => it.fold(DualRail::ZERO, DualRail::or),
        GateKind::Nor => it.fold(DualRail::ZERO, DualRail::or).not(),
        GateKind::Xor => it.fold(DualRail::ZERO, DualRail::xor),
        GateKind::Xnor => it.fold(DualRail::ZERO, DualRail::xor).not(),
        GateKind::Input | GateKind::Dff => return Err(NonCombinational(kind)),
    })
}

/// [`eval_gate`] over scalar [`V3`] values (the 1-lane instance).
///
/// # Examples
///
/// ```
/// use fscan_netlist::GateKind;
/// use fscan_sim::{kernel, V3};
///
/// assert_eq!(kernel::eval_v3(GateKind::And, [V3::Zero, V3::X]), V3::Zero);
/// assert_eq!(kernel::eval_v3(GateKind::Xor, [V3::One, V3::X]), V3::X);
/// ```
pub fn eval_v3(kind: GateKind, inputs: impl IntoIterator<Item = V3>) -> V3 {
    eval_gate::<bool>(kind, inputs.into_iter().map(DualRail::from)).into()
}

/// [`try_eval_gate`] over scalar [`V3`] values.
pub fn try_eval_v3(
    kind: GateKind,
    inputs: impl IntoIterator<Item = V3>,
) -> Result<V3, NonCombinational> {
    try_eval_gate::<bool>(kind, inputs.into_iter().map(DualRail::from)).map(V3::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V3; 3] = [V3::Zero, V3::One, V3::X];

    #[test]
    fn v3_roundtrips_through_dual_rail() {
        for v in ALL {
            assert_eq!(V3::from(DualRail::from(v)), v);
        }
    }

    #[test]
    fn gate_eval_matches_bool_eval() {
        for kind in GateKind::COMBINATIONAL {
            let arity = kind.fixed_arity().unwrap_or(3);
            for bits in 0..(1u32 << arity) {
                let ins: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
                let v3s: Vec<V3> = ins.iter().map(|&b| V3::from(b)).collect();
                let got = eval_v3(kind, v3s.iter().copied());
                assert_eq!(got.to_bool(), Some(kind.eval_bool(&ins)), "{kind} {ins:?}");
            }
        }
    }

    #[test]
    fn controlling_value_decides_despite_x() {
        assert_eq!(eval_v3(GateKind::And, [V3::Zero, V3::X]), V3::Zero);
        assert_eq!(eval_v3(GateKind::Nand, [V3::Zero, V3::X]), V3::One);
        assert_eq!(eval_v3(GateKind::Or, [V3::One, V3::X]), V3::One);
        assert_eq!(eval_v3(GateKind::Nor, [V3::One, V3::X]), V3::Zero);
        assert_eq!(eval_v3(GateKind::Xor, [V3::One, V3::X]), V3::X);
    }

    #[test]
    fn wide_lanes_agree_with_scalar_lanes() {
        // A deterministic pattern filling all 64 lanes with 0/1/X.
        let pat = |salt: u64| {
            let zeros = 0x9e37_79b9_7f4a_7c15u64.rotate_left(salt as u32);
            let ones = !zeros & 0x5555_5555_5555_5555u64.rotate_left((salt * 7) as u32);
            DualRail::new(zeros & !ones, ones)
        };
        let lane_of = |d: DualRail<u64>, i: u32| {
            DualRail::<bool>::new(d.zeros() >> i & 1 == 1, d.ones() >> i & 1 == 1)
        };
        for kind in GateKind::COMBINATIONAL {
            let arity = kind.fixed_arity().unwrap_or(3);
            let ins: Vec<DualRail<u64>> = (0..arity as u64).map(pat).collect();
            let wide = eval_gate(kind, ins.iter().copied());
            for i in 0..64 {
                let narrow = eval_gate(kind, ins.iter().map(|&d| lane_of(d, i)));
                assert_eq!(lane_of(wide, i), narrow, "{kind} lane {i}");
            }
        }
    }

    #[test]
    fn non_combinational_is_a_typed_error() {
        for kind in [GateKind::Input, GateKind::Dff] {
            let err = try_eval_v3(kind, []).unwrap_err();
            assert_eq!(err, NonCombinational(kind));
            assert!(err.to_string().contains("non-combinational"));
        }
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_combinational_is_all_x_in_release() {
        assert_eq!(eval_v3(GateKind::Dff, [V3::One]), V3::X);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn non_combinational_asserts_in_debug() {
        assert!(std::panic::catch_unwind(|| eval_v3(GateKind::Dff, [V3::One])).is_err());
    }

    #[test]
    fn wide_rail_lanes_agree_with_scalar_lanes() {
        // Same oracle as the u64 test, at 256 lanes: every lane of a
        // Lanes<4> evaluation equals the scalar evaluation of that lane.
        let pat = |salt: u64| {
            let word = |k: u64| {
                let zeros = 0x9e37_79b9_7f4a_7c15u64.rotate_left((salt + 13 * k) as u32);
                let ones = !zeros & 0x5555_5555_5555_5555u64.rotate_left((salt * 7 + k) as u32);
                (zeros & !ones, ones)
            };
            let ws: Vec<(u64, u64)> = (0..4).map(word).collect();
            DualRail::new(
                Lanes([ws[0].0, ws[1].0, ws[2].0, ws[3].0]),
                Lanes([ws[0].1, ws[1].1, ws[2].1, ws[3].1]),
            )
        };
        let lane_of = |d: DualRail<R256>, i: u32| {
            let (w, b) = ((i / 64) as usize, i % 64);
            DualRail::<bool>::new(d.zeros().0[w] >> b & 1 == 1, d.ones().0[w] >> b & 1 == 1)
        };
        for kind in GateKind::COMBINATIONAL {
            let arity = kind.fixed_arity().unwrap_or(3);
            let ins: Vec<DualRail<R256>> = (0..arity as u64).map(pat).collect();
            let wide = eval_gate(kind, ins.iter().copied());
            for i in 0..256 {
                let narrow = eval_gate(kind, ins.iter().map(|&d| lane_of(d, i)));
                assert_eq!(lane_of(wide, i), narrow, "{kind} lane {i}");
            }
        }
    }

    #[test]
    fn rail_lane_accessors_are_width_checked() {
        // Hard checks at every width, release builds included.
        assert_eq!(u64::lane_bit(63), 1u64 << 63);
        assert_eq!(u64::low_mask(64), !0u64);
        assert_eq!(u64::low_mask(0), 0);
        assert!(std::panic::catch_unwind(|| u64::lane_bit(64)).is_err());
        assert!(std::panic::catch_unwind(|| bool::lane_bit(1)).is_err());
        assert!(std::panic::catch_unwind(|| R256::lane_bit(256)).is_err());
        assert!(std::panic::catch_unwind(|| R256::low_mask(257)).is_err());
        assert_eq!(R256::lane_bit(130), Lanes([0, 0, 4, 0]));
        assert_eq!(R256::low_mask(256), R256::FULL);
        assert_eq!(R256::low_mask(70), Lanes([!0, 0x3f, 0, 0]));
    }

    #[test]
    fn wide_rail_set_lane_iteration_is_ordered() {
        let m = Lanes([1u64 << 5, 0, 1 | 1 << 63, 1 << 2]);
        let mut seen = Vec::new();
        m.for_each_set_lane(|l| seen.push(l));
        assert_eq!(seen, vec![5, 128, 191, 194]);
        assert_eq!(m.count(), 4);
        assert!(!m.is_empty());
        assert!(R256::EMPTY.is_empty());
    }

    #[test]
    fn demorgan_holds_dual_rail() {
        for a in ALL {
            for b in ALL {
                let (da, db) = (DualRail::from(a), DualRail::from(b));
                assert_eq!(da.and(db).not(), da.not().or(db.not()));
                assert_eq!(da.or(db).not(), da.not().and(db.not()));
            }
        }
    }
}
