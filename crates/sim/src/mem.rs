//! Per-stage memory accounting: deterministic arena footprints and
//! cone-size distributions, plus slots for allocator-observed peaks.
//!
//! [`WorkCounters`](crate::WorkCounters) counts work items;
//! [`MemMetrics`] accounts for bytes. Two of its quantities are exact
//! and **bit-identical across thread counts**:
//!
//! * `arena_bytes` — the structural [`SimScratch`](crate::SimScratch)
//!   arena footprint of one worker, a pure function of the circuit's
//!   node count and the rail width (every shard allocates the same
//!   node-indexed arrays);
//! * `cone_hist` — the distribution of forward-implication cone sizes
//!   (changed nets per fault), tallied per fault during classification.
//!   Each fault's cone is a property of the fault alone (the packed
//!   engine is lane-exact), so bucket sums are thread- and
//!   width-invariant.
//!
//! The other two — `peak_bytes` and `reallocs` — come from a process
//! tracking allocator when one is installed (the `fscan-alloctrack`
//! crate; binaries and stress harnesses install it, library tests do
//! not) and are inherently nondeterministic: they observe real
//! allocator traffic across all threads. They report 0 when no tracking
//! allocator is present, and JSON consumers strip them from
//! determinism diffs exactly like wall-clock times.

/// Number of buckets in a [`ConeHist`] (log₂-spaced).
pub const CONE_HIST_BUCKETS: usize = 16;

/// Log₂-bucketed histogram of forward-implication cone sizes.
///
/// Bucket 0 counts empty cones (an unexcited fault changes no net);
/// bucket `k` (1 ≤ k < 15) counts cones whose size in nets lies in
/// `[2^(k-1), 2^k)`; bucket 15 collects everything of 2¹⁴ nets or more.
/// Merging is bucket-wise addition, so shard merge order cannot change
/// the result.
///
/// # Examples
///
/// ```
/// use fscan_sim::ConeHist;
///
/// let mut h = ConeHist::default();
/// h.record(0); // unexcited
/// h.record(1);
/// h.record(5); // bucket 3: [4, 8)
/// assert_eq!(h.total_cones(), 3);
/// assert_eq!(h.buckets()[3], 1);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ConeHist {
    buckets: [u64; CONE_HIST_BUCKETS],
}

impl ConeHist {
    /// Records one cone of `size` changed nets.
    pub fn record(&mut self, size: u64) {
        let bucket = if size == 0 {
            0
        } else {
            (u64::BITS - size.leading_zeros()).min(CONE_HIST_BUCKETS as u32 - 1) as usize
        };
        self.buckets[bucket] += 1;
    }

    /// Adds `other`'s buckets into `self`.
    pub fn merge(&mut self, other: &ConeHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// The bucket counts.
    pub fn buckets(&self) -> &[u64; CONE_HIST_BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw bucket counts (JSON decode).
    pub fn from_buckets(buckets: [u64; CONE_HIST_BUCKETS]) -> ConeHist {
        ConeHist { buckets }
    }

    /// Total cones recorded across all buckets.
    pub fn total_cones(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }
}

/// Per-stage memory accounting, carried by
/// [`StageMetrics`](crate::StageMetrics) alongside the work counters.
///
/// `arena_bytes` and `cone_hist` are deterministic (see the module
/// docs); `peak_bytes` and `reallocs` depend on a process tracking
/// allocator and are 0 when none is installed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemMetrics {
    /// High-water mark of live heap bytes observed during the stage
    /// (process-wide, so an upper bound on any single shard's peak).
    /// 0 when no tracking allocator is installed. Nondeterministic.
    pub peak_bytes: u64,
    /// Allocator `realloc` calls observed during the stage. 0 when no
    /// tracking allocator is installed. Nondeterministic.
    pub reallocs: u64,
    /// Structural per-worker [`SimScratch`](crate::SimScratch) arena
    /// footprint in bytes — a pure function of node count and rail
    /// width, identical for every shard and thread count.
    pub arena_bytes: u64,
    /// Forward-implication cone-size distribution (classification stage
    /// only; empty elsewhere). Deterministic.
    pub cone_hist: ConeHist,
}

impl MemMetrics {
    /// The all-zero accounting record.
    pub const ZERO: MemMetrics = MemMetrics {
        peak_bytes: 0,
        reallocs: 0,
        arena_bytes: 0,
        cone_hist: ConeHist {
            buckets: [0; CONE_HIST_BUCKETS],
        },
    };

    /// The scalar fields as `(name, value)` pairs in emission order —
    /// the single source of truth for JSON. (`cone_hist` is emitted
    /// separately as a bucket array.)
    pub fn scalar_fields(&self) -> [(&'static str, u64); 3] {
        [
            ("peak_bytes", self.peak_bytes),
            ("reallocs", self.reallocs),
            ("arena_bytes", self.arena_bytes),
        ]
    }

    /// Folds `other` into a total: peaks combine by maximum (peaks do
    /// not add across sequential stages), the rest by sum.
    pub fn accumulate(&mut self, other: &MemMetrics) {
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.reallocs += other.reallocs;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.cone_hist.merge(&other.cone_hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_spaced() {
        let mut h = ConeHist::default();
        for (size, bucket) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (16_383, 14),
            (16_384, 15),
            (u64::MAX, 15),
        ] {
            h = ConeHist::default();
            h.record(size);
            assert_eq!(h.buckets()[bucket], 1, "size {size} → bucket {bucket}");
            assert_eq!(h.total_cones(), 1);
        }
        let _ = h;
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = ConeHist::default();
        a.record(1);
        a.record(4);
        let mut b = ConeHist::default();
        b.record(5);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[1], 1);
        assert_eq!(a.buckets()[3], 2);
        assert_eq!(a.total_cones(), 4);
        assert!(!a.is_empty());
        assert!(ConeHist::default().is_empty());
    }

    #[test]
    fn accumulate_maxes_peaks_and_sums_the_rest() {
        let mut total = MemMetrics::ZERO;
        let mut h1 = ConeHist::default();
        h1.record(3);
        total.accumulate(&MemMetrics {
            peak_bytes: 100,
            reallocs: 2,
            arena_bytes: 50,
            cone_hist: h1,
        });
        total.accumulate(&MemMetrics {
            peak_bytes: 80,
            reallocs: 3,
            arena_bytes: 60,
            cone_hist: ConeHist::default(),
        });
        assert_eq!(total.peak_bytes, 100);
        assert_eq!(total.reallocs, 5);
        assert_eq!(total.arena_bytes, 60);
        assert_eq!(total.cone_hist.total_cones(), 1);
    }
}
