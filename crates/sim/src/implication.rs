//! Forward implication cone of a fault (paper, Section 3 / Figure 3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, CompiledTopology, NodeId};

use crate::comb::CombEvaluator;
use crate::counters::WorkCounters;
use crate::value::V3;

/// One net whose steady scan-mode value changes under a fault.
///
/// `good` is the fault-free three-valued value, `faulty` the value under
/// the single stuck-at fault. Following the paper's Figure 3, a change
/// may be any transition among {0, 1, X} — including X→0, X→1, 0→X and
/// 1→X.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NetChange {
    /// The net (identified by its driving node).
    pub node: NodeId,
    /// Fault-free value.
    pub good: V3,
    /// Value under the fault.
    pub faulty: V3,
}

/// Computes the forward implication cone of `fault` given the fault-free
/// steady values `good` (produced by a prior [`CombEvaluator::eval`]).
///
/// Returns every net whose value changes, in topological order. The
/// propagation is purely combinational: flip-flops block it (their
/// outputs keep the value recorded in `good`), matching the static
/// scan-mode analysis of the paper, which reasons about the logic
/// *between* consecutive scan flip-flops.
///
/// Note that a *branch* fault changes no net by itself — only the value
/// seen by one gate pin — so its cone starts at the reading gate's
/// output.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::Fault;
/// use fscan_sim::{forward_implication, CombEvaluator, V3};
///
/// let mut c = Circuit::new("t");
/// let pi = c.add_input("pi");
/// let ff = c.add_dff_placeholder("ff");
/// let g = c.add_gate(GateKind::And, vec![pi, ff], "g");
/// c.set_dff_input(ff, g)?;
/// let eval = CombEvaluator::new(&c);
/// let mut good = vec![V3::X; c.num_nodes()];
/// good[pi.index()] = V3::One; // scan-mode PI assignment
/// eval.eval(&c, &mut good);
/// let changes = forward_implication(&c, &eval, &good, Fault::stem(pi, false));
/// // PI 1→0 and the AND output X→0 both change.
/// assert_eq!(changes.len(), 2);
/// assert_eq!(changes[1].faulty, V3::Zero);
/// # Ok::<(), fscan_netlist::NetlistError>(())
/// ```
pub fn forward_implication(
    circuit: &Circuit,
    eval: &CombEvaluator,
    good: &[V3],
    fault: Fault,
) -> Vec<NetChange> {
    ImplicationEngine::new(circuit, eval).run(circuit, good, fault)
}

/// Reusable forward-implication engine.
///
/// Classifying every fault of a circuit calls the implication thousands
/// of times; this engine keeps its scratch buffers (epoch-stamped
/// overlays) across calls and walks the shared [`CompiledTopology`] for
/// fanout lists and topological positions.
#[derive(Clone, Debug)]
pub struct ImplicationEngine {
    topo: Arc<CompiledTopology>,
    faulty: Vec<V3>,
    stamp: Vec<u32>,
    queued: Vec<u32>,
    epoch: u32,
    counters: WorkCounters,
}

impl ImplicationEngine {
    /// Builds an engine sharing the evaluator's compiled topology.
    pub fn new(circuit: &Circuit, eval: &CombEvaluator) -> ImplicationEngine {
        debug_assert_eq!(circuit.num_nodes(), eval.topology().num_nodes());
        ImplicationEngine::with_topology(eval.topology().clone())
    }

    /// Builds an engine over an already-compiled topology.
    pub fn with_topology(topo: Arc<CompiledTopology>) -> ImplicationEngine {
        let n = topo.num_nodes();
        ImplicationEngine {
            topo,
            faulty: vec![V3::X; n],
            stamp: vec![0; n],
            queued: vec![0; n],
            epoch: 0,
            counters: WorkCounters::ZERO,
        }
    }

    /// Work counters accumulated across every [`run`](Self::run) since
    /// construction (or the last [`take_counters`](Self::take_counters)).
    pub fn counters(&self) -> WorkCounters {
        self.counters
    }

    /// Returns the accumulated counters and resets them to zero.
    pub fn take_counters(&mut self) -> WorkCounters {
        std::mem::take(&mut self.counters)
    }

    /// Runs the implication; see [`forward_implication`].
    pub fn run(&mut self, circuit: &Circuit, good: &[V3], fault: Fault) -> Vec<NetChange> {
        debug_assert_eq!(circuit.num_nodes(), self.topo.num_nodes());
        let _ = circuit;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset stamps to keep correctness.
            self.stamp.fill(u32::MAX);
            self.queued.fill(u32::MAX);
            self.epoch = 1;
        }
        // Split the engine into disjoint borrows so the CSR fanout slices
        // can be walked by reference while the scratch overlays are
        // updated — the old `push_gate(&mut self, ..)` shape forced a
        // `to_vec()` clone of every fanout list on the hot path.
        let ImplicationEngine {
            topo,
            faulty,
            stamp,
            queued,
            epoch,
            counters,
        } = self;
        let pos = topo.order_positions();
        let epoch = *epoch;
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        let mut changes: Vec<NetChange> = Vec::new();

        let mut push_gate = |heap: &mut BinaryHeap<Reverse<(u32, NodeId)>>, id: NodeId| {
            let p = pos[id.index()];
            if p == u32::MAX {
                return; // not a combinational node (DFF): propagation stops
            }
            if queued[id.index()] != epoch {
                queued[id.index()] = epoch;
                heap.push(Reverse((p, id)));
            }
        };

        // Seed the cone.
        match fault.site {
            FaultSite::Stem(n) => {
                let stuck = V3::from_bool(fault.stuck);
                let kind = topo.kind(n);
                if kind.is_gate() || matches!(kind, fscan_netlist::GateKind::Const0 | fscan_netlist::GateKind::Const1) {
                    // Re-evaluate at the gate itself (the stem override is
                    // applied when the node is processed below).
                    push_gate(&mut heap, n);
                } else if good[n.index()] != stuck {
                    faulty[n.index()] = stuck;
                    stamp[n.index()] = epoch;
                    changes.push(NetChange {
                        node: n,
                        good: good[n.index()],
                        faulty: stuck,
                    });
                    for sink in topo.fanout_sinks(n) {
                        push_gate(&mut heap, *sink);
                    }
                }
            }
            FaultSite::Branch { gate, .. } => {
                push_gate(&mut heap, gate);
            }
        }

        while let Some(Reverse((_, id))) = heap.pop() {
            counters.implication_events += 1;
            let mut out = V3::eval_gate(
                topo.kind(id),
                topo.fanin(id).iter().enumerate().map(|(pin, &src)| {
                    if let FaultSite::Branch { gate, pin: fpin } = fault.site {
                        if gate == id && fpin == pin {
                            return V3::from_bool(fault.stuck);
                        }
                    }
                    if stamp[src.index()] == epoch {
                        faulty[src.index()]
                    } else {
                        good[src.index()]
                    }
                }),
            );
            if fault.site == FaultSite::Stem(id) {
                out = V3::from_bool(fault.stuck);
            }
            if out != good[id.index()] {
                faulty[id.index()] = out;
                stamp[id.index()] = epoch;
                changes.push(NetChange {
                    node: id,
                    good: good[id.index()],
                    faulty: out,
                });
                for sink in topo.fanout_sinks(id) {
                    push_gate(&mut heap, *sink);
                }
            } else {
                // Value restored to good: make sure an earlier overlay for
                // this node (impossible in topological processing, but
                // cheap to guard) does not linger.
                stamp[id.index()] = epoch.wrapping_sub(1);
            }
        }
        counters.cone_nets += changes.len() as u64;
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{Circuit, GateKind};

    /// Builds the circuit of the paper's Figure 3:
    ///
    /// PI (=1 in scan mode) drives A; A s-a-0 is the fault. The values
    /// follow the paper: A: 1→0, B: X→0, C: 0→1, D: X→1, E: 0→X.
    fn figure3() -> (Circuit, [NodeId; 6], Vec<V3>) {
        let mut c = Circuit::new("fig3");
        let pi = c.add_input("PI");
        let ff = c.add_dff_placeholder("FF"); // chain data, X
        // A = BUF(PI) so the fault site is an internal net like the paper's.
        let a = c.add_gate(GateKind::Buf, vec![pi], "A");
        // B = AND(A, FF): good 1·X = X; faulty 0·X = 0.
        let b = c.add_gate(GateKind::And, vec![a, ff], "B");
        // C = NOT(A): good 0; faulty 1.
        let cn = c.add_gate(GateKind::Not, vec![a], "C");
        // D = OR(C, FF): good 0+X = X; faulty 1+X = 1.
        let d = c.add_gate(GateKind::Or, vec![cn, ff], "D");
        // E = AND(C, FF): good 0·X = 0; faulty 1·X = X (the paper's 0→X).
        let e = c.add_gate(GateKind::And, vec![cn, ff], "E");
        c.set_dff_input(ff, b).unwrap();
        c.mark_output(e);
        c.mark_output(d);
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::One;
        good[ff.index()] = V3::X;
        eval.eval(&c, &mut good);
        (c, [pi, a, b, cn, d, e], good)
    }

    #[test]
    fn figure3_value_changes() {
        let (c, [pi, a, b, cn, d, e], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let changes = forward_implication(&c, &eval, &good, Fault::stem(pi, false));
        let get = |n: NodeId| changes.iter().find(|ch| ch.node == n).copied();
        // A: 1 → 0
        let ca = get(a).expect("A changes");
        assert_eq!((ca.good, ca.faulty), (V3::One, V3::Zero));
        // B: X → 0
        let cb = get(b).expect("B changes");
        assert_eq!((cb.good, cb.faulty), (V3::X, V3::Zero));
        // C: 0 → 1
        let cc = get(cn).expect("C changes");
        assert_eq!((cc.good, cc.faulty), (V3::Zero, V3::One));
        // D: X → 1
        let cd = get(d).expect("D changes");
        assert_eq!((cd.good, cd.faulty), (V3::X, V3::One));
        // E: 0 → X
        let ce = get(e).expect("E changes");
        assert_eq!((ce.good, ce.faulty), (V3::Zero, V3::X));
        // PI itself changed too.
        assert!(get(pi).is_some());
        assert_eq!(changes.len(), 6);
    }

    #[test]
    fn unexcited_fault_has_empty_cone() {
        let (c, [pi, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        // PI is already 1; s-a-1 changes nothing.
        let changes = forward_implication(&c, &eval, &good, Fault::stem(pi, true));
        assert!(changes.is_empty());
    }

    #[test]
    fn propagation_stops_at_flip_flops() {
        let mut c = Circuit::new("t");
        let pi = c.add_input("pi");
        let g = c.add_gate(GateKind::Not, vec![pi], "g");
        let ff = c.add_dff(g, "ff");
        let h = c.add_gate(GateKind::Not, vec![ff], "h");
        c.mark_output(h);
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::Zero;
        good[ff.index()] = V3::X;
        eval.eval(&c, &mut good);
        let changes = forward_implication(&c, &eval, &good, Fault::stem(pi, true));
        // pi and g change; ff's Q and h must not (combinational analysis).
        assert!(changes.iter().any(|ch| ch.node == g));
        assert!(changes.iter().all(|ch| ch.node != ff && ch.node != h));
    }

    #[test]
    fn branch_fault_cone_starts_at_reader() {
        let mut c = Circuit::new("t");
        let pi = c.add_input("pi");
        let g1 = c.add_gate(GateKind::Buf, vec![pi], "g1");
        let g2 = c.add_gate(GateKind::Not, vec![pi], "g2");
        c.mark_output(g1);
        c.mark_output(g2);
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::One;
        eval.eval(&c, &mut good);
        let changes = forward_implication(&c, &eval, &good, Fault::branch(g1, 0, false));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].node, g1);
        assert_eq!(changes[0].faulty, V3::Zero);
    }

    #[test]
    fn counters_track_events_and_cone_sizes() {
        let (c, [pi, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut engine = ImplicationEngine::new(&c, &eval);
        let r = engine.run(&c, &good, Fault::stem(pi, false));
        let counters = engine.take_counters();
        assert_eq!(counters.cone_nets, r.len() as u64);
        // Every change except the seeded PI stem was produced by a pop.
        assert!(counters.implication_events >= r.len() as u64 - 1);
        assert!(engine.counters().is_zero(), "take_counters resets");
    }

    #[test]
    fn engine_reuse_is_consistent() {
        let (c, [pi, a, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut engine = ImplicationEngine::new(&c, &eval);
        let r1 = engine.run(&c, &good, Fault::stem(pi, false));
        let r2 = engine.run(&c, &good, Fault::stem(a, true));
        let r3 = engine.run(&c, &good, Fault::stem(pi, false));
        assert_eq!(r1, r3, "engine state must not leak between runs");
        assert_ne!(r1, r2);
    }
}
