//! Forward implication cone of a fault (paper, Section 3 / Figure 3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, CompiledTopology, NodeId};

use crate::comb::CombEvaluator;
use crate::counters::WorkCounters;
use crate::kernel::{self, Rail};
use crate::packed::Pv;
use crate::scratch::{SimScratch, NO_ENTRY};
use crate::value::V3;

/// One net whose steady scan-mode value changes under a fault.
///
/// `good` is the fault-free three-valued value, `faulty` the value under
/// the single stuck-at fault. Following the paper's Figure 3, a change
/// may be any transition among {0, 1, X} — including X→0, X→1, 0→X and
/// 1→X.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NetChange {
    /// The net (identified by its driving node).
    pub node: NodeId,
    /// Fault-free value.
    pub good: V3,
    /// Value under the fault.
    pub faulty: V3,
}

/// Reusable forward-implication engine.
///
/// Classifying every fault of a circuit calls the implication thousands
/// of times; this engine keeps its scratch buffers (epoch-stamped
/// overlays) across calls and walks the shared [`CompiledTopology`] for
/// fanout lists and topological positions.
#[derive(Clone, Debug)]
pub struct ImplicationEngine {
    topo: Arc<CompiledTopology>,
    faulty: Vec<V3>,
    stamp: Vec<u32>,
    queued: Vec<u32>,
    epoch: u32,
    counters: WorkCounters,
}

impl ImplicationEngine {
    /// Builds an engine sharing the evaluator's compiled topology.
    pub fn new(circuit: &Circuit, eval: &CombEvaluator) -> ImplicationEngine {
        debug_assert_eq!(circuit.num_nodes(), eval.topology().num_nodes());
        ImplicationEngine::with_topology(eval.topology().clone())
    }

    /// Builds an engine over an already-compiled topology.
    pub fn with_topology(topo: Arc<CompiledTopology>) -> ImplicationEngine {
        let n = topo.num_nodes();
        ImplicationEngine {
            topo,
            faulty: vec![V3::X; n],
            stamp: vec![0; n],
            queued: vec![0; n],
            epoch: 0,
            counters: WorkCounters::ZERO,
        }
    }

    /// Work counters accumulated across every [`run`](Self::run) since
    /// construction (or the last [`take_counters`](Self::take_counters)).
    pub fn counters(&self) -> WorkCounters {
        self.counters
    }

    /// Returns the accumulated counters and resets them to zero.
    pub fn take_counters(&mut self) -> WorkCounters {
        std::mem::take(&mut self.counters)
    }

    /// Computes the forward implication cone of `fault` given the
    /// fault-free steady values `good` (produced by a prior
    /// [`CombEvaluator::eval`]).
    ///
    /// Returns every net whose value changes, in topological order. The
    /// propagation is purely combinational: flip-flops block it (their
    /// outputs keep the value recorded in `good`), matching the static
    /// scan-mode analysis of the paper, which reasons about the logic
    /// *between* consecutive scan flip-flops.
    ///
    /// Note that a *branch* fault changes no net by itself — only the
    /// value seen by one gate pin — so its cone starts at the reading
    /// gate's output.
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan_netlist::{Circuit, GateKind};
    /// use fscan_fault::Fault;
    /// use fscan_sim::{CombEvaluator, ImplicationEngine, V3};
    ///
    /// let mut c = Circuit::new("t");
    /// let pi = c.add_input("pi");
    /// let ff = c.add_dff_placeholder("ff");
    /// let g = c.add_gate(GateKind::And, vec![pi, ff], "g");
    /// c.set_dff_input(ff, g)?;
    /// let eval = CombEvaluator::new(&c);
    /// let mut good = vec![V3::X; c.num_nodes()];
    /// good[pi.index()] = V3::One; // scan-mode PI assignment
    /// eval.eval(&c, &mut good);
    /// let mut engine = ImplicationEngine::new(&c, &eval);
    /// let changes = engine.run(&c, &good, Fault::stem(pi, false));
    /// // PI 1→0 and the AND output X→0 both change.
    /// assert_eq!(changes.len(), 2);
    /// assert_eq!(changes[1].faulty, V3::Zero);
    /// # Ok::<(), fscan_netlist::NetlistError>(())
    /// ```
    pub fn run(&mut self, circuit: &Circuit, good: &[V3], fault: Fault) -> Vec<NetChange> {
        debug_assert_eq!(circuit.num_nodes(), self.topo.num_nodes());
        let _ = circuit;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset stamps to keep correctness.
            self.stamp.fill(u32::MAX);
            self.queued.fill(u32::MAX);
            self.epoch = 1;
        }
        // Split the engine into disjoint borrows so the CSR fanout slices
        // can be walked by reference while the scratch overlays are
        // updated — the old `push_gate(&mut self, ..)` shape forced a
        // `to_vec()` clone of every fanout list on the hot path.
        let ImplicationEngine {
            topo,
            faulty,
            stamp,
            queued,
            epoch,
            counters,
        } = self;
        let pos = topo.order_positions();
        let epoch = *epoch;
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        let mut changes: Vec<NetChange> = Vec::new();

        let mut push_gate = |heap: &mut BinaryHeap<Reverse<(u32, NodeId)>>, id: NodeId| {
            let p = pos[id.index()];
            if p == u32::MAX {
                return; // not a combinational node (DFF): propagation stops
            }
            if queued[id.index()] != epoch {
                queued[id.index()] = epoch;
                heap.push(Reverse((p, id)));
            }
        };

        // Seed the cone.
        match fault.site {
            FaultSite::Stem(n) => {
                let stuck = V3::from_bool(fault.stuck);
                let kind = topo.kind(n);
                if kind.is_gate() || matches!(kind, fscan_netlist::GateKind::Const0 | fscan_netlist::GateKind::Const1) {
                    // Re-evaluate at the gate itself (the stem override is
                    // applied when the node is processed below).
                    push_gate(&mut heap, n);
                } else if good[n.index()] != stuck {
                    faulty[n.index()] = stuck;
                    stamp[n.index()] = epoch;
                    changes.push(NetChange {
                        node: n,
                        good: good[n.index()],
                        faulty: stuck,
                    });
                    for sink in topo.fanout_sinks(n) {
                        push_gate(&mut heap, *sink);
                    }
                }
            }
            FaultSite::Branch { gate, .. } => {
                push_gate(&mut heap, gate);
            }
        }

        while let Some(Reverse((_, id))) = heap.pop() {
            counters.implication_events += 1;
            counters.gate_evals += 1;
            let mut out = kernel::eval_v3(
                topo.kind(id),
                topo.fanin(id).iter().enumerate().map(|(pin, &src)| {
                    if let FaultSite::Branch { gate, pin: fpin } = fault.site {
                        if gate == id && fpin == pin {
                            return V3::from_bool(fault.stuck);
                        }
                    }
                    if stamp[src.index()] == epoch {
                        faulty[src.index()]
                    } else {
                        good[src.index()]
                    }
                }),
            );
            if fault.site == FaultSite::Stem(id) {
                out = V3::from_bool(fault.stuck);
            }
            if out != good[id.index()] {
                faulty[id.index()] = out;
                stamp[id.index()] = epoch;
                changes.push(NetChange {
                    node: id,
                    good: good[id.index()],
                    faulty: out,
                });
                for sink in topo.fanout_sinks(id) {
                    push_gate(&mut heap, *sink);
                }
            } else {
                // Value restored to good: make sure an earlier overlay for
                // this node (impossible in topological processing, but
                // cheap to guard) does not linger.
                stamp[id.index()] = epoch.wrapping_sub(1);
            }
        }
        counters.cone_nets += changes.len() as u64;
        changes
    }
}

/// One net change of a packed implication word: up to `W::LANES` lanes'
/// faulty values in one dual-rail [`Pv<W>`](Pv), with `lanes` marking
/// the lanes whose value actually differs from `good`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PackedChange<W: Rail = u64> {
    /// The net (identified by its driving node).
    pub node: NodeId,
    /// Fault-free value.
    pub good: V3,
    /// Per-lane values under each lane's fault.
    pub faulty: Pv<W>,
    /// Mask of lanes where `faulty` differs from `good`.
    pub lanes: W,
}

/// Lanes of `w` whose value differs from the scalar `good`.
fn lanes_changed<W: Rail>(w: Pv<W>, good: V3) -> W {
    match good {
        V3::Zero => !w.zeros(),
        V3::One => !w.ones(),
        V3::X => w.known(),
    }
}

/// Packed `W::LANES`-fault forward implication — the classification
/// kernel. [`ImplicationEngine64`] is the historical 64-lane alias; the
/// pipeline default is the 256-lane instance
/// (`PackedImplicationEngine<R256>`).
///
/// Runs [`ImplicationEngine::run`]'s propagation for up to `W::LANES`
/// faults at once: the fault-free steady values are splatted across all
/// lanes and
/// the faulty dual-rail trace propagates only through the union of the
/// word's fault cones, swept in [`CompiledTopology`] CSR topological
/// order with [`SimScratch`] arenas — zero steady-state heap
/// allocations.
///
/// Lane-exactness invariant: for every lane, the sequence of net
/// changes (see [`lane_changes`](Self::lane_changes)) and the
/// `implication_events` / `cone_nets` counter contributions are
/// bit-identical to running the scalar engine on that lane's fault
/// alone. Only `gate_evals` shrinks: one packed kernel evaluation
/// (counted once in `gate_evals` and once in `kernel_gate_evals`)
/// covers every lane the scalar engine would have popped individually.
#[derive(Clone, Debug)]
pub struct PackedImplicationEngine<W: Rail = u64> {
    topo: Arc<CompiledTopology>,
    scratch: SimScratch<W>,
    /// Per-node seed masks, valid when `seed_stamp[n] == word`: lanes
    /// whose fault forces a re-evaluation of gate `n` even without a
    /// fanin change (stem-on-gate and branch faults).
    seed_stamp: Vec<u64>,
    seed_mask: Vec<W>,
    /// Word epoch for the seed stamps (`u64`: never wraps).
    word: u64,
    /// Per-node changed-lane masks, valid for cone members only.
    diff: Vec<W>,
    changes: Vec<PackedChange<W>>,
    counters: WorkCounters,
}

/// The 64-lane packed implication engine (the historical name).
pub type ImplicationEngine64 = PackedImplicationEngine<u64>;

impl<W: Rail> PackedImplicationEngine<W> {
    /// Builds an engine sharing the evaluator's compiled topology.
    pub fn new(circuit: &Circuit, eval: &CombEvaluator) -> PackedImplicationEngine<W> {
        debug_assert_eq!(circuit.num_nodes(), eval.topology().num_nodes());
        PackedImplicationEngine::with_topology(eval.topology().clone())
    }

    /// Builds an engine over an already-compiled topology.
    pub fn with_topology(topo: Arc<CompiledTopology>) -> PackedImplicationEngine<W> {
        let n = topo.num_nodes();
        PackedImplicationEngine {
            scratch: SimScratch::new(&topo),
            seed_stamp: vec![0; n],
            seed_mask: vec![W::EMPTY; n],
            word: 0,
            diff: vec![W::EMPTY; n],
            changes: Vec::new(),
            counters: WorkCounters::ZERO,
            topo,
        }
    }

    /// Work counters accumulated across every
    /// [`run_word`](Self::run_word) since construction (or the last
    /// [`take_counters`](Self::take_counters)).
    pub fn counters(&self) -> WorkCounters {
        self.counters
    }

    /// Returns the accumulated counters and resets them to zero.
    pub fn take_counters(&mut self) -> WorkCounters {
        std::mem::take(&mut self.counters)
    }

    /// The changes of the last [`run_word`](Self::run_word), restricted
    /// to `lane` and unpacked to scalar [`NetChange`]s — bit-identical,
    /// in the same order, to a scalar [`ImplicationEngine::run`] on that
    /// lane's fault.
    pub fn lane_changes(&self, lane: u32) -> impl Iterator<Item = NetChange> + '_ {
        // `lane_bit` is width-checked in every build profile: an
        // out-of-range lane panics instead of silently reading the
        // wrong lane's changes.
        let bit = W::lane_bit(lane);
        self.changes
            .iter()
            .filter(move |ch| !(ch.lanes & bit).is_empty())
            .map(move |ch| NetChange {
                node: ch.node,
                good: ch.good,
                faulty: ch.faulty.get(lane),
            })
    }

    /// Runs the forward implication of up to `W::LANES` faults in one
    /// packed pass and returns the changed nets in topological order
    /// (sources first), with per-lane change masks.
    ///
    /// # Panics
    ///
    /// Panics if `faults` holds more than `W::LANES` entries.
    pub fn run_word(&mut self, good: &[V3], faults: &[Fault]) -> &[PackedChange<W>] {
        assert!(
            faults.len() <= W::LANES as usize,
            "a packed word holds at most {} faults",
            W::LANES
        );
        debug_assert!(good.len() >= self.topo.num_nodes());
        self.word += 1;
        self.scratch.begin_word();
        let PackedImplicationEngine {
            topo,
            scratch,
            seed_stamp,
            seed_mask,
            word,
            diff,
            changes,
            counters,
        } = self;
        let word = *word;
        counters.implication_words += 1;
        counters.scratch_reuses += 1;
        changes.clear();
        let full_mask = W::low_mask(faults.len() as u32);
        let SimScratch {
            epoch,
            fval,
            cone_stamp,
            stack,
            cone_order,
            cone_pis,
            buf,
            stem_head,
            stem_entries,
            branch_head,
            branch_entries,
            ..
        } = scratch;
        let epoch = *epoch;
        let pos = topo.order_positions();

        // Injection tables (epoch-stamped per-node linked lists, as in
        // the parallel fault simulator) plus per-gate seed masks: the
        // scalar engine re-evaluates a stem-on-gate or branch site
        // unconditionally, so those lanes must pop even without a fanin
        // change.
        for (lane, f) in faults.iter().enumerate() {
            let mask = W::lane_bit(lane as u32);
            match f.site {
                FaultSite::Stem(n) => {
                    let i = n.index();
                    let prev = if stem_head[i].0 == epoch {
                        stem_head[i].1
                    } else {
                        NO_ENTRY
                    };
                    stem_head[i] = (epoch, stem_entries.len() as u32);
                    stem_entries.push((mask, f.stuck, prev));
                    if pos[i] != u32::MAX {
                        if seed_stamp[i] != word {
                            seed_stamp[i] = word;
                            seed_mask[i] = W::EMPTY;
                        }
                        seed_mask[i] |= mask;
                    }
                }
                FaultSite::Branch { gate, pin } => {
                    // A branch behind a non-combinational reader (a
                    // flip-flop D pin, incl. the placeholder self-loop)
                    // has no combinational cone: the scalar engine's
                    // push_gate guard drops it, and funneling it into
                    // the kernel would evaluate a Dff "gate". The lane
                    // stays inert.
                    let i = gate.index();
                    if pos[i] == u32::MAX {
                        continue;
                    }
                    let prev = if branch_head[i].0 == epoch {
                        branch_head[i].1
                    } else {
                        NO_ENTRY
                    };
                    branch_head[i] = (epoch, branch_entries.len() as u32);
                    branch_entries.push((pin as u32, mask, f.stuck, prev));
                    if seed_stamp[i] != word {
                        seed_stamp[i] = word;
                        seed_mask[i] = W::EMPTY;
                    }
                    seed_mask[i] |= mask;
                }
            }
        }
        let force_stem = |mut w: Pv<W>, id: NodeId| -> Pv<W> {
            let (ep, mut e) = stem_head[id.index()];
            if ep == epoch {
                while e != NO_ENTRY {
                    let (mask, stuck, next) = stem_entries[e as usize];
                    w = w.force(mask, stuck);
                    e = next;
                }
            }
            w
        };
        let force_branch = |mut w: Pv<W>, id: NodeId, pin: usize| -> Pv<W> {
            let (ep, mut e) = branch_head[id.index()];
            if ep == epoch {
                while e != NO_ENTRY {
                    let (epin, mask, stuck, next) = branch_entries[e as usize];
                    if epin as usize == pin {
                        w = w.force(mask, stuck);
                    }
                    e = next;
                }
            }
            w
        };

        // Union fault cone: forward closure of every lane's fault site.
        // Unlike the sequential simulator's cone, flip-flops block the
        // closure here — the implication is the paper's static scan-mode
        // analysis of the logic between consecutive scan flip-flops.
        // Sources (PI / flip-flop stem sites) go to `cone_pis`,
        // combinational members to `cone_order`.
        for f in faults {
            let site = match f.site {
                FaultSite::Stem(n) => n,
                FaultSite::Branch { gate, .. } => {
                    if pos[gate.index()] == u32::MAX {
                        continue;
                    }
                    gate
                }
            };
            let i = site.index();
            if cone_stamp[i] != epoch {
                cone_stamp[i] = epoch;
                if pos[i] == u32::MAX {
                    cone_pis.push(site);
                } else {
                    cone_order.push(site);
                }
                stack.push(site);
            }
        }
        while let Some(id) = stack.pop() {
            for &sink in topo.fanout_sinks(id) {
                let s = sink.index();
                if pos[s] == u32::MAX {
                    continue; // flip-flop D pin: propagation stops
                }
                if cone_stamp[s] != epoch {
                    cone_stamp[s] = epoch;
                    cone_order.push(sink);
                    stack.push(sink);
                }
            }
        }
        cone_order.sort_unstable_by_key(|id| pos[id.index()]);

        // Sources first: splat the good value, force the stem lanes and
        // record the excited lanes (the scalar engine reports the seeded
        // source change before any gate pop).
        for &src in cone_pis.iter() {
            let i = src.index();
            let w = force_stem(Pv::splat(good[i]), src);
            fval[i] = w;
            let d = lanes_changed(w, good[i]) & full_mask;
            diff[i] = d;
            if !d.is_empty() {
                counters.cone_nets += u64::from(d.count());
                changes.push(PackedChange {
                    node: src,
                    good: good[i],
                    faulty: w,
                    lanes: d,
                });
            }
        }

        // Sweep the union cone in topological order. A gate pops in the
        // lanes its fault seeds plus the lanes any in-cone fanin changed
        // in; lanes that pop nowhere read pure good values everywhere,
        // so the whole-word evaluation is exact per lane.
        for &id in cone_order.iter() {
            let i = id.index();
            let seeds = if seed_stamp[i] == word {
                seed_mask[i]
            } else {
                W::EMPTY
            };
            let mut pop = seeds;
            for &src in topo.fanin(id) {
                if cone_stamp[src.index()] == epoch {
                    pop |= diff[src.index()];
                }
            }
            if pop.is_empty() {
                // No lane re-evaluates this gate; it keeps the good
                // value so downstream in-cone reads stay exact.
                fval[i] = Pv::splat(good[i]);
                diff[i] = W::EMPTY;
                continue;
            }
            counters.implication_events += u64::from(pop.count());
            counters.gate_evals += 1;
            counters.kernel_gate_evals += 1;
            buf.clear();
            for (pin, &src) in topo.fanin(id).iter().enumerate() {
                let w = if cone_stamp[src.index()] == epoch {
                    fval[src.index()]
                } else {
                    Pv::splat(good[src.index()])
                };
                buf.push(force_branch(w, id, pin));
            }
            let out = force_stem(Pv::eval(topo.kind(id), buf.iter().copied()), id);
            fval[i] = out;
            let d = lanes_changed(out, good[i]) & full_mask;
            diff[i] = d;
            if !d.is_empty() {
                counters.cone_nets += u64::from(d.count());
                changes.push(PackedChange {
                    node: id,
                    good: good[i],
                    faulty: out,
                    lanes: d,
                });
            }
        }
        &self.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{Circuit, GateKind};

    fn imply(c: &Circuit, eval: &CombEvaluator, good: &[V3], f: Fault) -> Vec<NetChange> {
        ImplicationEngine::new(c, eval).run(c, good, f)
    }

    /// Builds the circuit of the paper's Figure 3:
    ///
    /// PI (=1 in scan mode) drives A; A s-a-0 is the fault. The values
    /// follow the paper: A: 1→0, B: X→0, C: 0→1, D: X→1, E: 0→X.
    fn figure3() -> (Circuit, [NodeId; 6], Vec<V3>) {
        let mut c = Circuit::new("fig3");
        let pi = c.add_input("PI");
        let ff = c.add_dff_placeholder("FF"); // chain data, X
        // A = BUF(PI) so the fault site is an internal net like the paper's.
        let a = c.add_gate(GateKind::Buf, vec![pi], "A");
        // B = AND(A, FF): good 1·X = X; faulty 0·X = 0.
        let b = c.add_gate(GateKind::And, vec![a, ff], "B");
        // C = NOT(A): good 0; faulty 1.
        let cn = c.add_gate(GateKind::Not, vec![a], "C");
        // D = OR(C, FF): good 0+X = X; faulty 1+X = 1.
        let d = c.add_gate(GateKind::Or, vec![cn, ff], "D");
        // E = AND(C, FF): good 0·X = 0; faulty 1·X = X (the paper's 0→X).
        let e = c.add_gate(GateKind::And, vec![cn, ff], "E");
        c.set_dff_input(ff, b).unwrap();
        c.mark_output(e);
        c.mark_output(d);
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::One;
        good[ff.index()] = V3::X;
        eval.eval(&c, &mut good);
        (c, [pi, a, b, cn, d, e], good)
    }

    #[test]
    fn figure3_value_changes() {
        let (c, [pi, a, b, cn, d, e], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let changes = imply(&c, &eval, &good, Fault::stem(pi, false));
        let get = |n: NodeId| changes.iter().find(|ch| ch.node == n).copied();
        // A: 1 → 0
        let ca = get(a).expect("A changes");
        assert_eq!((ca.good, ca.faulty), (V3::One, V3::Zero));
        // B: X → 0
        let cb = get(b).expect("B changes");
        assert_eq!((cb.good, cb.faulty), (V3::X, V3::Zero));
        // C: 0 → 1
        let cc = get(cn).expect("C changes");
        assert_eq!((cc.good, cc.faulty), (V3::Zero, V3::One));
        // D: X → 1
        let cd = get(d).expect("D changes");
        assert_eq!((cd.good, cd.faulty), (V3::X, V3::One));
        // E: 0 → X
        let ce = get(e).expect("E changes");
        assert_eq!((ce.good, ce.faulty), (V3::Zero, V3::X));
        // PI itself changed too.
        assert!(get(pi).is_some());
        assert_eq!(changes.len(), 6);
    }

    #[test]
    fn unexcited_fault_has_empty_cone() {
        let (c, [pi, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        // PI is already 1; s-a-1 changes nothing.
        let changes = imply(&c, &eval, &good, Fault::stem(pi, true));
        assert!(changes.is_empty());
    }

    #[test]
    fn propagation_stops_at_flip_flops() {
        let mut c = Circuit::new("t");
        let pi = c.add_input("pi");
        let g = c.add_gate(GateKind::Not, vec![pi], "g");
        let ff = c.add_dff(g, "ff");
        let h = c.add_gate(GateKind::Not, vec![ff], "h");
        c.mark_output(h);
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::Zero;
        good[ff.index()] = V3::X;
        eval.eval(&c, &mut good);
        let changes = imply(&c, &eval, &good, Fault::stem(pi, true));
        // pi and g change; ff's Q and h must not (combinational analysis).
        assert!(changes.iter().any(|ch| ch.node == g));
        assert!(changes.iter().all(|ch| ch.node != ff && ch.node != h));
    }

    #[test]
    fn branch_fault_cone_starts_at_reader() {
        let mut c = Circuit::new("t");
        let pi = c.add_input("pi");
        let g1 = c.add_gate(GateKind::Buf, vec![pi], "g1");
        let g2 = c.add_gate(GateKind::Not, vec![pi], "g2");
        c.mark_output(g1);
        c.mark_output(g2);
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::One;
        eval.eval(&c, &mut good);
        let changes = imply(&c, &eval, &good, Fault::branch(g1, 0, false));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].node, g1);
        assert_eq!(changes[0].faulty, V3::Zero);
    }

    #[test]
    fn counters_track_events_and_cone_sizes() {
        let (c, [pi, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut engine = ImplicationEngine::new(&c, &eval);
        let r = engine.run(&c, &good, Fault::stem(pi, false));
        let counters = engine.take_counters();
        assert_eq!(counters.cone_nets, r.len() as u64);
        // Every change except the seeded PI stem was produced by a pop.
        assert!(counters.implication_events >= r.len() as u64 - 1);
        assert!(engine.counters().is_zero(), "take_counters resets");
    }

    #[test]
    fn engine_reuse_is_consistent() {
        let (c, [pi, a, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut engine = ImplicationEngine::new(&c, &eval);
        let r1 = engine.run(&c, &good, Fault::stem(pi, false));
        let r2 = engine.run(&c, &good, Fault::stem(a, true));
        let r3 = engine.run(&c, &good, Fault::stem(pi, false));
        assert_eq!(r1, r3, "engine state must not leak between runs");
        assert_ne!(r1, r2);
    }

    fn packed_matches_scalar_at<W: Rail>() {
        let (c, nodes, good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut faults: Vec<Fault> = Vec::new();
        for n in nodes {
            faults.push(Fault::stem(n, false));
            faults.push(Fault::stem(n, true));
        }
        let mut scalar = ImplicationEngine::new(&c, &eval);
        let mut packed = PackedImplicationEngine::<W>::new(&c, &eval);
        packed.run_word(&good, &faults);
        for (lane, &f) in faults.iter().enumerate() {
            let expect = scalar.run(&c, &good, f);
            let got: Vec<NetChange> = packed.lane_changes(lane as u32).collect();
            assert_eq!(got, expect, "{f:?}");
        }
        let sc = scalar.take_counters();
        let pc = packed.take_counters();
        assert_eq!(pc.implication_events, sc.implication_events);
        assert_eq!(pc.cone_nets, sc.cone_nets);
        assert_eq!(pc.implication_words, 1);
        assert_eq!(pc.scratch_reuses, 1);
        assert_eq!(pc.kernel_gate_evals, pc.gate_evals);
        assert!(pc.gate_evals <= sc.gate_evals, "packing must not add evals");
    }

    #[test]
    fn packed_word_matches_scalar_per_lane() {
        packed_matches_scalar_at::<u64>();
    }

    #[test]
    fn wide_packed_word_matches_scalar_per_lane() {
        // The same lane-exactness invariant at 256 lanes; the 12-fault
        // word also exercises the tail masking (12 % 256 != 0).
        packed_matches_scalar_at::<crate::kernel::R256>();
    }

    #[test]
    fn lane_changes_is_width_checked() {
        let (c, [pi, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut packed = ImplicationEngine64::new(&c, &eval);
        packed.run_word(&good, &[Fault::stem(pi, false)]);
        // A hard (release-mode) check: the old debug_assert let the
        // mask wrap to lane % 64 and report the wrong lane's changes.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            packed.lane_changes(64).count()
        }));
        assert!(r.is_err());
    }

    #[test]
    fn dff_dpin_branch_lane_is_inert() {
        // A branch fault behind a flip-flop D pin (here the placeholder
        // self-loop) has no combinational implication cone; the packed
        // engine must keep the lane inert instead of funneling a Dff
        // into the gate kernel, while sibling lanes stay exact.
        let mut c = Circuit::new("t");
        let pi = c.add_input("pi");
        let ff = c.add_dff_placeholder("ff");
        let g = c.add_gate(GateKind::And, vec![pi, ff], "g");
        c.set_dff_input(ff, g).unwrap();
        let eval = CombEvaluator::new(&c);
        let mut good = vec![V3::X; c.num_nodes()];
        good[pi.index()] = V3::One;
        eval.eval(&c, &mut good);
        let faults = [Fault::branch(ff, 0, false), Fault::stem(pi, false)];
        let mut packed = ImplicationEngine64::new(&c, &eval);
        packed.run_word(&good, &faults);
        assert_eq!(packed.lane_changes(0).count(), 0);
        let mut scalar = ImplicationEngine::new(&c, &eval);
        let expect = scalar.run(&c, &good, faults[1]);
        let got: Vec<NetChange> = packed.lane_changes(1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn packed_engine_reuse_is_consistent() {
        let (c, [pi, a, ..], good) = figure3();
        let eval = CombEvaluator::new(&c);
        let mut packed = ImplicationEngine64::new(&c, &eval);
        let r1: Vec<PackedChange> = packed.run_word(&good, &[Fault::stem(pi, false)]).to_vec();
        packed.run_word(&good, &[Fault::stem(a, true), Fault::stem(pi, true)]);
        let r3: Vec<PackedChange> = packed.run_word(&good, &[Fault::stem(pi, false)]).to_vec();
        assert_eq!(r1, r3, "packed engine state must not leak between words");
    }
}
