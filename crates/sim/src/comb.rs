//! Levelized combinational evaluation with stuck-at fault injection.

use std::sync::Arc;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, CompiledTopology, GateKind, NodeId};

use crate::kernel;
use crate::value::V3;

/// A reusable combinational evaluator for one circuit.
///
/// A thin view over a shared [`CompiledTopology`]; evaluation writes
/// into a caller provided value vector indexed by node id, so callers
/// control where primary-input and flip-flop values come from.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Clone, Debug)]
pub struct CombEvaluator {
    topo: Arc<CompiledTopology>,
}

impl CombEvaluator {
    /// Builds an evaluator for `circuit`, compiling a private topology.
    /// Prefer [`CombEvaluator::with_topology`] when a compiled plan is
    /// already available.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has combinational cycles.
    pub fn new(circuit: &Circuit) -> CombEvaluator {
        CombEvaluator::with_topology(CompiledTopology::shared(circuit))
    }

    /// Builds an evaluator over an already-compiled topology.
    pub fn with_topology(topo: Arc<CompiledTopology>) -> CombEvaluator {
        CombEvaluator { topo }
    }

    /// The shared compiled topology this evaluator runs against.
    pub fn topology(&self) -> &Arc<CompiledTopology> {
        &self.topo
    }

    /// The evaluation order (constants and gates, topologically sorted).
    pub fn order(&self) -> &[NodeId] {
        self.topo.eval_order()
    }

    /// Each node's position in [`CombEvaluator::order`], indexed by node
    /// id (`u32::MAX` for nodes outside the order: inputs, flip-flops).
    /// Event-driven consumers use this to schedule gates topologically.
    pub fn order_positions(&self) -> &[u32] {
        self.topo.order_positions()
    }

    /// Evaluates the fault-free combinational logic.
    ///
    /// `values` must be indexed by node id; primary-input and flip-flop
    /// entries are read, gate and constant entries are written.
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the node count.
    pub fn eval(&self, circuit: &Circuit, values: &mut [V3]) {
        debug_assert_eq!(circuit.num_nodes(), self.topo.num_nodes());
        self.eval_inner(values, None);
    }

    /// [`CombEvaluator::eval`] against the compiled topology alone — for
    /// callers that no longer hold the `Circuit`.
    pub fn eval_values(&self, values: &mut [V3]) {
        self.eval_inner(values, None);
    }

    /// Evaluates with a single stuck-at fault injected.
    ///
    /// Stem faults on primary inputs or flip-flops override the preset
    /// entry in `values`; stem faults on gates override the gate's
    /// computed output; branch faults override the value seen by one
    /// input pin only.
    pub fn eval_with_fault(&self, circuit: &Circuit, values: &mut [V3], fault: Fault) {
        debug_assert_eq!(circuit.num_nodes(), self.topo.num_nodes());
        self.eval_inner(values, Some(fault));
    }

    fn eval_inner(&self, values: &mut [V3], fault: Option<Fault>) {
        assert!(values.len() >= self.topo.num_nodes());
        // Pre-pass: stem faults on nodes not in the evaluation order
        // (inputs, flip-flop outputs) must override the preset values.
        if let Some(Fault {
            site: FaultSite::Stem(n),
            stuck,
        }) = fault
        {
            let k = self.topo.kind(n);
            if !k.is_gate() && !matches!(k, GateKind::Const0 | GateKind::Const1) {
                values[n.index()] = V3::from_bool(stuck);
            }
        }
        let mut buf: Vec<V3> = Vec::with_capacity(8);
        for &id in self.topo.eval_order() {
            buf.clear();
            for (pin, &src) in self.topo.fanin(id).iter().enumerate() {
                let mut v = values[src.index()];
                if let Some(Fault {
                    site: FaultSite::Branch { gate, pin: fpin },
                    stuck,
                }) = fault
                {
                    if gate == id && fpin == pin {
                        v = V3::from_bool(stuck);
                    }
                }
                buf.push(v);
            }
            let mut out = kernel::eval_v3(self.topo.kind(id), buf.iter().copied());
            if let Some(Fault {
                site: FaultSite::Stem(n),
                stuck,
            }) = fault
            {
                if n == id {
                    out = V3::from_bool(stuck);
                }
            }
            values[id.index()] = out;
        }
        // Branch fault on a flip-flop's D pin is handled by the caller
        // (sequential simulators) when sampling next state; nothing to do
        // in a purely combinational pass.
    }

    /// The value a flip-flop would capture next cycle, honoring a branch
    /// fault on its D pin and stem faults on its driver.
    pub fn dff_next(&self, circuit: &Circuit, values: &[V3], dff: NodeId, fault: Option<Fault>) -> V3 {
        debug_assert_eq!(circuit.num_nodes(), self.topo.num_nodes());
        let d = self.topo.fanin(dff)[0];
        if let Some(Fault {
            site: FaultSite::Branch { gate, pin: 0 },
            stuck,
        }) = fault
        {
            if gate == dff {
                return V3::from_bool(stuck);
            }
        }
        values[d.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux_circuit() -> (Circuit, [NodeId; 6]) {
        // y = (a AND s') OR (b AND s)
        let mut c = Circuit::new("mux");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s = c.add_input("s");
        let ns = c.add_gate(GateKind::Not, vec![s], "ns");
        let t0 = c.add_gate(GateKind::And, vec![a, ns], "t0");
        let t1 = c.add_gate(GateKind::And, vec![b, s], "t1");
        let y = c.add_gate(GateKind::Or, vec![t0, t1], "y");
        c.mark_output(y);
        (c, [a, b, s, t0, t1, y])
    }

    #[test]
    fn mux_selects() {
        let (c, [a, b, s, _, _, y]) = mux_circuit();
        let eval = CombEvaluator::new(&c);
        let mut v = vec![V3::X; c.num_nodes()];
        v[a.index()] = V3::One;
        v[b.index()] = V3::Zero;
        v[s.index()] = V3::Zero;
        eval.eval(&c, &mut v);
        assert_eq!(v[y.index()], V3::One);
        v[s.index()] = V3::One;
        eval.eval(&c, &mut v);
        assert_eq!(v[y.index()], V3::Zero);
    }

    #[test]
    fn x_propagates_only_when_needed() {
        let (c, [a, b, s, _, _, y]) = mux_circuit();
        let eval = CombEvaluator::new(&c);
        let mut v = vec![V3::X; c.num_nodes()];
        // a == b == 1 makes the output 1 regardless of s... but a plain
        // 3-valued simulator cannot see that (X-pessimism): s=X gives X.
        v[a.index()] = V3::One;
        v[b.index()] = V3::One;
        v[s.index()] = V3::X;
        eval.eval(&c, &mut v);
        assert_eq!(v[y.index()], V3::X, "3-valued sim is pessimistic by design");
        // With the select known, output is known.
        v[s.index()] = V3::One;
        eval.eval(&c, &mut v);
        assert_eq!(v[y.index()], V3::One);
    }

    #[test]
    fn stem_fault_on_gate() {
        let (c, [a, b, s, t0, _, y]) = mux_circuit();
        let eval = CombEvaluator::new(&c);
        let mut v = vec![V3::X; c.num_nodes()];
        v[a.index()] = V3::One;
        v[b.index()] = V3::Zero;
        v[s.index()] = V3::Zero;
        eval.eval_with_fault(&c, &mut v, Fault::stem(t0, false));
        assert_eq!(v[y.index()], V3::Zero, "t0 s-a-0 kills the selected path");
    }

    #[test]
    fn stem_fault_on_input() {
        let (c, [a, b, s, _, _, y]) = mux_circuit();
        let eval = CombEvaluator::new(&c);
        let mut v = vec![V3::X; c.num_nodes()];
        v[a.index()] = V3::One;
        v[b.index()] = V3::Zero;
        v[s.index()] = V3::Zero;
        eval.eval_with_fault(&c, &mut v, Fault::stem(a, false));
        assert_eq!(v[a.index()], V3::Zero, "input value overridden");
        assert_eq!(v[y.index()], V3::Zero);
    }

    #[test]
    fn branch_fault_hits_one_pin_only() {
        // s fans out to NOT and t1; a branch fault on t1's s-pin must not
        // disturb the NOT gate.
        let (c, [a, b, s, _, t1, y]) = mux_circuit();
        let eval = CombEvaluator::new(&c);
        let mut v = vec![V3::X; c.num_nodes()];
        v[a.index()] = V3::Zero;
        v[b.index()] = V3::One;
        v[s.index()] = V3::Zero;
        // Good: y = 0 (a selected, a=0). Fault: t1.pin1 (s) s-a-1 turns
        // t1 on (b AND 1 = 1) while ns still sees s=0 → y = 1.
        eval.eval_with_fault(&c, &mut v, Fault::branch(t1, 1, true));
        assert_eq!(v[y.index()], V3::One);
    }

    #[test]
    fn dff_next_with_branch_fault() {
        let mut c = Circuit::new("seq");
        let a = c.add_input("a");
        let ff = c.add_dff(a, "ff");
        c.mark_output(ff);
        let eval = CombEvaluator::new(&c);
        let mut v = vec![V3::X; c.num_nodes()];
        v[a.index()] = V3::One;
        eval.eval(&c, &mut v);
        assert_eq!(eval.dff_next(&c, &v, ff, None), V3::One);
        let f = Fault::branch(ff, 0, false);
        assert_eq!(eval.dff_next(&c, &v, ff, Some(f)), V3::Zero);
    }
}
