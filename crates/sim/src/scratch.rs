//! Per-thread reusable simulation arenas.

use fscan_netlist::{CompiledTopology, NodeId};

use crate::event::EventQueue;
use crate::kernel::Rail;
use crate::packed::Pv;
use crate::value::V3;

/// Sentinel for "no entry" in the epoch-stamped injection lists.
pub(crate) const NO_ENTRY: u32 = u32::MAX;

/// A per-thread scratch arena for
/// [`ParallelFaultSim`](crate::ParallelFaultSim).
///
/// Holds every buffer a `W::LANES`-fault word needs — the replayed good
/// values,
/// the packed faulty values, epoch-stamped cone marks, the event queue,
/// the cone work lists and the fault-injection tables. `shard_map`
/// workers construct one arena per thread (in the per-worker init
/// closure) and the simulator *resets* it between fault words — epoch
/// bumps and length-zero clears that keep capacity — so the steady-state
/// hot loop performs zero heap allocation. Each word served through an
/// arena increments the `scratch_reuses` work counter.
///
/// The injection tables replace the per-word `HashMap`s of the previous
/// implementation with per-node linked lists: `stem_head[n]` /
/// `branch_head[n]` hold `(epoch, first-entry)` pairs valid only when
/// the stored epoch matches the current word's, so "clearing" the map
/// is one integer increment.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::Fault;
/// use fscan_sim::{ParallelFaultSim, SimScratch, V3};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// c.mark_output(g);
/// let sim = ParallelFaultSim::new(&c);
/// let trace = sim.good_trace(&[vec![V3::One]], &[]);
/// let mut scratch = sim.scratch();
/// let mut out = Vec::new();
/// let w = sim.fault_sim_into(&[Fault::stem(g, true)], &trace, &mut scratch, &mut out);
/// assert_eq!(out, vec![Some(0)]);
/// assert_eq!(w.scratch_reuses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct SimScratch<W: Rail = u64> {
    pub(crate) num_nodes: usize,
    /// Current word epoch; stamps equal to it are valid for this word.
    pub(crate) epoch: u32,
    pub(crate) good_now: Vec<V3>,
    pub(crate) fval: Vec<Pv<W>>,
    /// `cone_stamp[n] == epoch` marks node `n` as inside the union cone.
    pub(crate) cone_stamp: Vec<u32>,
    pub(crate) stack: Vec<NodeId>,
    pub(crate) cone_order: Vec<NodeId>,
    pub(crate) cone_pis: Vec<NodeId>,
    pub(crate) cone_ffs: Vec<NodeId>,
    pub(crate) cone_outs: Vec<(u32, NodeId)>,
    pub(crate) queue: EventQueue,
    pub(crate) fnext: Vec<Pv<W>>,
    pub(crate) buf: Vec<Pv<W>>,
    /// Per-node `(epoch, first stem entry)` heads.
    pub(crate) stem_head: Vec<(u32, u32)>,
    /// `(lane mask, stuck value, next entry)` stem-injection entries.
    pub(crate) stem_entries: Vec<(W, bool, u32)>,
    /// Per-gate `(epoch, first branch entry)` heads.
    pub(crate) branch_head: Vec<(u32, u32)>,
    /// `(pin, lane mask, stuck value, next entry)` branch entries.
    pub(crate) branch_entries: Vec<(u32, W, bool, u32)>,
}

impl<W: Rail> SimScratch<W> {
    /// A fresh arena sized for `topo`. All buffers are allocated here,
    /// once; reuse across words never reallocates.
    pub fn new(topo: &CompiledTopology) -> SimScratch<W> {
        let n = topo.num_nodes();
        SimScratch {
            num_nodes: n,
            epoch: 0,
            good_now: vec![V3::X; n],
            fval: vec![Pv::ALL_X; n],
            cone_stamp: vec![0; n],
            stack: Vec::new(),
            cone_order: Vec::new(),
            cone_pis: Vec::new(),
            cone_ffs: Vec::new(),
            cone_outs: Vec::new(),
            queue: EventQueue::new(n),
            fnext: Vec::new(),
            buf: Vec::with_capacity(8),
            stem_head: vec![(0, NO_ENTRY); n],
            stem_entries: Vec::with_capacity(64),
            branch_head: vec![(0, NO_ENTRY); n],
            branch_entries: Vec::with_capacity(64),
        }
    }

    /// The structural arena footprint in bytes for a circuit with
    /// `num_nodes` nodes at rail width `W`: the node-indexed arrays
    /// every worker allocates once ([`new`](Self::new)). A pure
    /// function of node count and rail width — identical for every
    /// shard and thread count — so it is the deterministic
    /// `arena_bytes` quantity of
    /// [`MemMetrics`](crate::MemMetrics). The word-sized work lists
    /// (stack, cone orders, injection entries) grow with the data and
    /// are covered by the allocator-observed `peak_bytes` instead.
    pub fn footprint_bytes(num_nodes: usize) -> u64 {
        use std::mem::size_of;
        let per_node = size_of::<V3>()        // good_now
            + size_of::<Pv<W>>()              // fval
            + size_of::<u32>()                // cone_stamp
            + 2 * size_of::<(u32, u32)>()     // stem_head + branch_head
            + size_of::<u32>(); // event-queue stamp array
        (num_nodes * per_node) as u64
    }

    /// [`footprint_bytes`](Self::footprint_bytes) of this arena.
    pub fn arena_bytes(&self) -> u64 {
        SimScratch::<W>::footprint_bytes(self.num_nodes)
    }

    /// Starts a new fault word: bumps the epoch (invalidating cone marks
    /// and injection heads in O(1)), clears the entry and work lists
    /// (keeping capacity) and resets the event queue.
    pub(crate) fn begin_word(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare u32 wrap: reset stamps to keep correctness.
            self.cone_stamp.fill(u32::MAX);
            for h in &mut self.stem_head {
                h.0 = u32::MAX;
            }
            for h in &mut self.branch_head {
                h.0 = u32::MAX;
            }
            self.epoch = 1;
        }
        self.stem_entries.clear();
        self.branch_entries.clear();
        self.cone_order.clear();
        self.cone_pis.clear();
        self.cone_ffs.clear();
        self.cone_outs.clear();
        self.stack.clear();
        self.queue.reset();
    }
}
