//! Cycle-accurate sequential simulation and serial fault simulation.

use fscan_fault::Fault;
use fscan_netlist::Circuit;

use crate::comb::CombEvaluator;
use crate::counters::WorkCounters;
use crate::value::V3;

/// The observable result of a sequential simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Primary-output values per cycle, in `Circuit::outputs` order.
    pub outputs: Vec<Vec<V3>>,
    /// Flip-flop state after the last cycle, in `Circuit::dffs` order.
    pub final_state: Vec<V3>,
}

/// Returns the first cycle at which the two traces *definitely* differ
/// on some primary output: both values known and unequal. An X in either
/// trace never counts as a detection (the standard pessimistic rule).
///
/// # Examples
///
/// ```
/// use fscan_sim::{detects, Trace, V3};
///
/// let good = Trace { outputs: vec![vec![V3::One]], final_state: vec![] };
/// let bad = Trace { outputs: vec![vec![V3::Zero]], final_state: vec![] };
/// let masked = Trace { outputs: vec![vec![V3::X]], final_state: vec![] };
/// assert_eq!(detects(&good, &bad), Some(0));
/// assert_eq!(detects(&good, &masked), None);
/// ```
pub fn detects(good: &Trace, faulty: &Trace) -> Option<usize> {
    good.outputs
        .iter()
        .zip(faulty.outputs.iter())
        .position(|(g, f)| {
            g.iter()
                .zip(f.iter())
                .any(|(&gv, &fv)| gv.is_known() && fv.is_known() && gv != fv)
        })
}

/// A sequential (cycle-accurate) simulator for one circuit.
///
/// Each cycle applies one primary-input vector, evaluates the
/// combinational logic, samples primary outputs, then clocks every
/// flip-flop with its D value. Unknown (X) initial state is supported.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_sim::{SeqSim, V3};
///
/// // A 1-bit toggle: ff <- NOT ff.
/// let mut c = Circuit::new("toggle");
/// let ff = c.add_dff_placeholder("ff");
/// let n = c.add_gate(GateKind::Not, vec![ff], "n");
/// c.set_dff_input(ff, n).unwrap();
/// c.mark_output(ff);
/// let sim = SeqSim::new(&c);
/// let trace = sim.run(&vec![vec![]; 3], &[V3::Zero], None);
/// let po: Vec<V3> = trace.outputs.iter().map(|o| o[0]).collect();
/// assert_eq!(po, vec![V3::Zero, V3::One, V3::Zero]);
/// ```
#[derive(Clone, Debug)]
pub struct SeqSim<'c> {
    circuit: &'c Circuit,
    eval: CombEvaluator,
}

impl<'c> SeqSim<'c> {
    /// Builds a simulator, compiling a private topology. Prefer
    /// [`SeqSim::with_topology`] when a compiled plan is already
    /// available.
    pub fn new(circuit: &'c Circuit) -> SeqSim<'c> {
        SeqSim {
            circuit,
            eval: CombEvaluator::new(circuit),
        }
    }

    /// Builds a simulator over an already-compiled topology of `circuit`.
    pub fn with_topology(
        circuit: &'c Circuit,
        topo: std::sync::Arc<fscan_netlist::CompiledTopology>,
    ) -> SeqSim<'c> {
        debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
        SeqSim {
            circuit,
            eval: CombEvaluator::with_topology(topo),
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The combinational evaluator (shared levelization).
    pub fn evaluator(&self) -> &CombEvaluator {
        &self.eval
    }

    /// Runs `vectors.len()` cycles from the initial flip-flop state
    /// `init`, optionally with a stuck-at fault injected in every cycle.
    ///
    /// `vectors[t]` holds the cycle-`t` primary-input values in
    /// `Circuit::inputs` order; `init` is in `Circuit::dffs` order.
    ///
    /// # Panics
    ///
    /// Panics if a vector's length differs from the input count or
    /// `init` from the flip-flop count.
    pub fn run(&self, vectors: &[Vec<V3>], init: &[V3], fault: Option<Fault>) -> Trace {
        let mut on_cycle = |_: usize, _: &[V3]| true;
        self.run_observed(vectors, init, fault, &mut on_cycle)
    }

    /// Like [`SeqSim::run`] but invokes `on_cycle(t, po_values)` after
    /// each cycle; returning `false` stops the simulation early (the
    /// trace then contains only the cycles simulated).
    pub fn run_observed(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        fault: Option<Fault>,
        on_cycle: &mut dyn FnMut(usize, &[V3]) -> bool,
    ) -> Trace {
        let c = self.circuit;
        assert_eq!(init.len(), c.dffs().len(), "init length != flip-flop count");
        let mut values = vec![V3::X; c.num_nodes()];
        let mut state = init.to_vec();
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut po_buf = vec![V3::X; c.outputs().len()];
        for (t, vec_t) in vectors.iter().enumerate() {
            assert_eq!(vec_t.len(), c.inputs().len(), "vector length != input count");
            for (&pi, &v) in c.inputs().iter().zip(vec_t.iter()) {
                values[pi.index()] = v;
            }
            for (&ff, &v) in c.dffs().iter().zip(state.iter()) {
                values[ff.index()] = v;
            }
            match fault {
                Some(f) => self.eval.eval_with_fault(c, &mut values, f),
                None => self.eval.eval(c, &mut values),
            }
            for (k, &po) in c.outputs().iter().enumerate() {
                po_buf[k] = values[po.index()];
            }
            outputs.push(po_buf.clone());
            for (s, &ff) in state.iter_mut().zip(c.dffs().iter()) {
                *s = self.eval.dff_next(c, &values, ff, fault);
            }
            if !on_cycle(t, &po_buf) {
                break;
            }
        }
        Trace {
            outputs,
            final_state: state,
        }
    }

    /// Exact work performed by a run that simulated `cycles` cycles:
    /// every ordered combinational node is evaluated once per cycle, and
    /// a serial run covers exactly one fault lane per cycle.
    ///
    /// The count depends only on the circuit and the cycle count — never
    /// on wall-clock or thread count — so it is safe to feed into the
    /// deterministic [`WorkCounters`] aggregation.
    pub fn work_for_cycles(&self, cycles: usize) -> WorkCounters {
        WorkCounters {
            gate_evals: cycles as u64 * self.eval.order().len() as u64,
            lane_cycles: cycles as u64,
            ..WorkCounters::ZERO
        }
    }

    /// Serial sequential fault simulation: for every fault, runs the
    /// whole sequence from state `init` and reports the first cycle of
    /// definite detection (`None` if undetected). Simulation of a fault
    /// stops at its first detection.
    pub fn fault_sim(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
    ) -> Vec<Option<usize>> {
        self.fault_sim_counted(vectors, init, faults).0
    }

    /// [`SeqSim::fault_sim`] plus the exact [`WorkCounters`] of the good
    /// run and every (early-stopping) faulty run.
    pub fn fault_sim_counted(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
    ) -> (Vec<Option<usize>>, WorkCounters) {
        let good = self.run(vectors, init, None);
        let mut counters = self.work_for_cycles(good.outputs.len());
        let detections = faults
            .iter()
            .map(|&f| {
                let mut hit = None;
                let mut on_cycle = |t: usize, po: &[V3]| {
                    let g = &good.outputs[t];
                    let diff = g
                        .iter()
                        .zip(po.iter())
                        .any(|(&gv, &fv)| gv.is_known() && fv.is_known() && gv != fv);
                    if diff {
                        hit = Some(t);
                        false
                    } else {
                        true
                    }
                };
                let trace = self.run_observed(vectors, init, Some(f), &mut on_cycle);
                counters += self.work_for_cycles(trace.outputs.len());
                if hit.is_some() && trace.outputs.len() < vectors.len() {
                    counters.early_exits += 1;
                }
                hit
            })
            .collect();
        (detections, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::GateKind;

    /// A 3-stage shift register with a NAND (side input held by a PI) in
    /// the middle — a miniature functional scan path.
    fn shiftreg() -> (Circuit, Vec<fscan_netlist::NodeId>) {
        let mut c = Circuit::new("shift3");
        let sin = c.add_input("scan_in");
        let side = c.add_input("side");
        let ff0 = c.add_dff(sin, "ff0");
        let nand = c.add_gate(GateKind::Nand, vec![ff0, side], "nand");
        let ff1 = c.add_dff(nand, "ff1");
        let ff2 = c.add_dff(ff1, "ff2");
        c.mark_output(ff2);
        (c, vec![sin, side, ff0, nand, ff1, ff2])
    }

    fn bits(s: &str) -> Vec<V3> {
        s.chars()
            .map(|ch| match ch {
                '0' => V3::Zero,
                '1' => V3::One,
                _ => V3::X,
            })
            .collect()
    }

    #[test]
    fn shift_register_delays_by_three() {
        let (c, _) = shiftreg();
        let sim = SeqSim::new(&c);
        // side held at 1 → NAND inverts. Feed 1,0,1,1,0,...
        let stream = bits("10110");
        let vectors: Vec<Vec<V3>> = stream.iter().map(|&b| vec![b, V3::One]).collect();
        let init = vec![V3::Zero; 3];
        let trace = sim.run(&vectors, &init, None);
        // ff2 at cycle t shows NOT(stream[t-3]) for t >= 3.
        assert_eq!(trace.outputs[3][0], !stream[0]);
        assert_eq!(trace.outputs[4][0], !stream[1]);
    }

    #[test]
    fn x_initial_state_washes_out() {
        let (c, _) = shiftreg();
        let sim = SeqSim::new(&c);
        let vectors: Vec<Vec<V3>> = (0..5).map(|_| vec![V3::One, V3::One]).collect();
        let trace = sim.run(&vectors, &[V3::X, V3::X, V3::X], None);
        assert_eq!(trace.outputs[0][0], V3::X);
        assert_eq!(trace.outputs[2][0], V3::X);
        // After 3 shifts the X state has been flushed.
        assert_eq!(trace.outputs[3][0], V3::Zero); // NOT(1)
    }

    #[test]
    fn fault_sim_detects_stuck_side_input() {
        let (c, nodes) = shiftreg();
        let side = nodes[1];
        let sim = SeqSim::new(&c);
        // Alternating scan pattern, side at 1.
        let stream = bits("00110011");
        let vectors: Vec<Vec<V3>> = stream.iter().map(|&b| vec![b, V3::One]).collect();
        let init = vec![V3::Zero; 3];
        // side s-a-0 forces the NAND output to 1 → tail of constant 1s.
        let res = sim.fault_sim(&vectors, &init, &[Fault::stem(side, false)]);
        assert!(res[0].is_some(), "stuck side input must be detected");
    }

    #[test]
    fn undetected_fault_reports_none() {
        let (c, nodes) = shiftreg();
        let side = nodes[1];
        let sim = SeqSim::new(&c);
        // side s-a-1 is invisible while we drive side = 1 anyway.
        let vectors: Vec<Vec<V3>> = bits("0101").iter().map(|&b| vec![b, V3::One]).collect();
        let res = sim.fault_sim(&vectors, &[V3::Zero; 3], &[Fault::stem(side, true)]);
        assert_eq!(res[0], None);
    }

    #[test]
    fn detects_requires_known_values() {
        let good = Trace {
            outputs: vec![vec![V3::X], vec![V3::One]],
            final_state: vec![],
        };
        let faulty = Trace {
            outputs: vec![vec![V3::Zero], vec![V3::Zero]],
            final_state: vec![],
        };
        assert_eq!(detects(&good, &faulty), Some(1));
    }

    #[test]
    fn observer_can_stop_early() {
        let (c, _) = shiftreg();
        let sim = SeqSim::new(&c);
        let vectors: Vec<Vec<V3>> = (0..10).map(|_| vec![V3::One, V3::One]).collect();
        let mut seen = 0;
        let mut cb = |t: usize, _: &[V3]| {
            seen = t + 1;
            t < 2
        };
        let trace = sim.run_observed(&vectors, &[V3::X; 3], None, &mut cb);
        assert_eq!(seen, 3);
        assert_eq!(trace.outputs.len(), 3);
    }
}
