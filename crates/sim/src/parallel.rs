//! 64-fault-per-pass sequential fault simulation.

use std::collections::HashMap;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, GateKind, NodeId};

use crate::comb::CombEvaluator;
use crate::counters::WorkCounters;
use crate::packed::Pv64;
use crate::seq::SeqSim;
use crate::value::V3;

/// Parallel-fault sequential fault simulator: simulates up to 64 faulty
/// machines per pass, one machine per bit lane, against a scalar good
/// machine.
///
/// Produces exactly the same detection verdicts as
/// [`SeqSim::fault_sim`] (the serial reference), typically an order of
/// magnitude faster on fault lists larger than a few dozen.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::Fault;
/// use fscan_sim::{ParallelFaultSim, V3};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// c.mark_output(g);
/// let sim = ParallelFaultSim::new(&c);
/// let res = sim.fault_sim(&[vec![V3::One]], &[], &[Fault::stem(g, true)]);
/// assert_eq!(res, vec![Some(0)]);
/// ```
#[derive(Clone, Debug)]
pub struct ParallelFaultSim<'c> {
    circuit: &'c Circuit,
    eval: CombEvaluator,
}

impl<'c> ParallelFaultSim<'c> {
    /// Builds a simulator (levelizes the circuit once).
    pub fn new(circuit: &'c Circuit) -> ParallelFaultSim<'c> {
        ParallelFaultSim {
            circuit,
            eval: CombEvaluator::new(circuit),
        }
    }

    /// Runs the full sequence for every fault and reports the first
    /// definite detection cycle per fault (`None` if undetected).
    ///
    /// Semantics match [`SeqSim::fault_sim`]: detection requires the good
    /// and faulty primary-output values to be known and different in the
    /// same cycle.
    pub fn fault_sim(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
    ) -> Vec<Option<usize>> {
        let good = SeqSim::new(self.circuit).run(vectors, init, None);
        self.fault_sim_with_good(vectors, init, faults, &good.outputs)
    }

    /// [`fault_sim`](Self::fault_sim) against an already-computed good
    /// trace (`good_outputs[cycle][output]`), so callers simulating the
    /// same sequence repeatedly — or sharding one fault list across
    /// workers — pay for the good machine once.
    pub fn fault_sim_with_good(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
        good_outputs: &[Vec<V3>],
    ) -> Vec<Option<usize>> {
        self.fault_sim_with_good_counted(vectors, init, faults, good_outputs)
            .0
    }

    /// [`fault_sim_with_good`](Self::fault_sim_with_good) plus exact
    /// [`WorkCounters`]: one `gate_evals` per packed gate evaluation,
    /// `lane_cycles` = Σ active lanes per simulated cycle, one
    /// `early_exits` per 64-lane word whose faults were all detected
    /// before the vector set ran out.
    ///
    /// Every contribution is a function of one 64-fault word only, so
    /// sums over any partition of the fault list (at word boundaries)
    /// are identical — the property `fault_sim_sharded` relies on.
    pub fn fault_sim_with_good_counted(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
        good_outputs: &[Vec<V3>],
    ) -> (Vec<Option<usize>>, WorkCounters) {
        let mut result = vec![None; faults.len()];
        let mut counters = WorkCounters::ZERO;
        for (chunk_idx, chunk) in faults.chunks(64).enumerate() {
            let base = chunk_idx * 64;
            let (det, work) = self.simulate_chunk(vectors, init, chunk, good_outputs);
            for (lane, d) in det.into_iter().enumerate() {
                result[base + lane] = d;
            }
            counters += work;
        }
        (result, counters)
    }

    /// [`fault_sim`](Self::fault_sim) sharded across `threads` scoped
    /// workers (`0` = hardware thread count).
    ///
    /// The good trace is computed once and shared read-only; each worker
    /// simulates whole 64-lane words, and verdicts are merged in fault
    /// order, so the result is identical to the serial
    /// [`fault_sim`](Self::fault_sim) for every thread count. Also
    /// returns the work distribution and the summed [`WorkCounters`]
    /// (good-machine run included), which are bit-identical for every
    /// thread count because each word's contribution is chunk-local.
    pub fn fault_sim_sharded(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
        threads: usize,
    ) -> (Vec<Option<usize>>, crate::pool::ShardStats, WorkCounters) {
        let good_sim = SeqSim::new(self.circuit);
        let good = good_sim.run(vectors, init, None);
        let (detections, stats, mut counters) =
            crate::pool::shard_map_counted(threads, 64, faults, || (), |_, _, chunk| {
                self.fault_sim_with_good_counted(vectors, init, chunk, &good.outputs)
            });
        counters += good_sim.work_for_cycles(good.outputs.len());
        (detections, stats, counters)
    }

    fn simulate_chunk(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        chunk: &[Fault],
        good_outputs: &[Vec<V3>],
    ) -> (Vec<Option<usize>>, WorkCounters) {
        let c = self.circuit;
        let n_lanes = chunk.len() as u32;
        let full_mask: u64 = if n_lanes == 64 {
            !0
        } else {
            (1u64 << n_lanes) - 1
        };

        // Injection tables.
        let mut stem: HashMap<NodeId, Vec<(u64, bool)>> = HashMap::new();
        let mut branch: HashMap<(NodeId, usize), Vec<(u64, bool)>> = HashMap::new();
        for (lane, f) in chunk.iter().enumerate() {
            let mask = 1u64 << lane;
            match f.site {
                FaultSite::Stem(n) => stem.entry(n).or_default().push((mask, f.stuck)),
                FaultSite::Branch { gate, pin } => {
                    branch.entry((gate, pin)).or_default().push((mask, f.stuck))
                }
            }
        }

        let mut values: Vec<Pv64> = vec![Pv64::ALL_X; c.num_nodes()];
        let mut state: Vec<Pv64> = init.iter().map(|&v| Pv64::splat(v)).collect();
        let mut detected_mask: u64 = 0;
        let mut detection = vec![None; chunk.len()];
        let mut counters = WorkCounters::ZERO;

        for (t, vec_t) in vectors.iter().enumerate() {
            counters.gate_evals += self.eval.order().len() as u64;
            counters.lane_cycles += u64::from(n_lanes);
            // Drive inputs and state.
            for (&pi, &v) in c.inputs().iter().zip(vec_t.iter()) {
                let mut w = Pv64::splat(v);
                if let Some(inj) = stem.get(&pi) {
                    for &(mask, stuck) in inj {
                        w = w.force(mask, stuck);
                    }
                }
                values[pi.index()] = w;
            }
            for (&ff, w) in c.dffs().iter().zip(state.iter()) {
                let mut w = *w;
                if let Some(inj) = stem.get(&ff) {
                    for &(mask, stuck) in inj {
                        w = w.force(mask, stuck);
                    }
                }
                values[ff.index()] = w;
            }
            // Evaluate combinational logic in topological order.
            let mut buf: Vec<Pv64> = Vec::with_capacity(8);
            for &id in self.eval.order() {
                let node = c.node(id);
                buf.clear();
                for (pin, &src) in node.fanin().iter().enumerate() {
                    let mut w = values[src.index()];
                    if let Some(inj) = branch.get(&(id, pin)) {
                        for &(mask, stuck) in inj {
                            w = w.force(mask, stuck);
                        }
                    }
                    buf.push(w);
                }
                let mut out = Pv64::eval_gate(node.kind(), buf.iter().copied());
                if let Some(inj) = stem.get(&id) {
                    for &(mask, stuck) in inj {
                        out = out.force(mask, stuck);
                    }
                }
                values[id.index()] = out;
            }
            // Detection: faulty PO known and opposite of a known good PO.
            for (k, &po) in c.outputs().iter().enumerate() {
                let g = good_outputs[t][k];
                let w = values[po.index()];
                let diff = match g {
                    V3::Zero => w.ones(),
                    V3::One => w.zeros(),
                    V3::X => 0,
                };
                let newly = diff & full_mask & !detected_mask;
                if newly != 0 {
                    let mut bits = newly;
                    while bits != 0 {
                        let lane = bits.trailing_zeros();
                        detection[lane as usize] = Some(t);
                        bits &= bits - 1;
                    }
                    detected_mask |= newly;
                }
            }
            if detected_mask == full_mask {
                if t + 1 < vectors.len() {
                    counters.early_exits += 1;
                }
                break;
            }
            // Clock flip-flops (branch faults on D pins injected here).
            for (s, &ff) in state.iter_mut().zip(c.dffs().iter()) {
                debug_assert_eq!(c.node(ff).kind(), GateKind::Dff);
                let d = c.node(ff).fanin()[0];
                let mut w = values[d.index()];
                if let Some(inj) = branch.get(&(ff, 0)) {
                    for &(mask, stuck) in inj {
                        w = w.force(mask, stuck);
                    }
                }
                *s = w;
            }
        }
        (detection, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(rng: &mut StdRng, n_inputs: usize, cycles: usize) -> Vec<Vec<V3>> {
        (0..cycles)
            .map(|_| {
                (0..n_inputs)
                    .map(|_| if rng.gen_bool(0.5) { V3::One } else { V3::Zero })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn agrees_with_serial_reference() {
        for seed in 0..3u64 {
            let cfg = GeneratorConfig::new(format!("p{seed}"), seed)
                .inputs(6)
                .gates(80)
                .dffs(6);
            let c = generate(&cfg);
            let faults = collapse(&c, &all_faults(&c));
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let vectors = random_vectors(&mut rng, 6, 20);
            let init = vec![V3::X; 6];
            let serial = SeqSim::new(&c).fault_sim(&vectors, &init, &faults);
            let parallel = ParallelFaultSim::new(&c).fault_sim(&vectors, &init, &faults);
            assert_eq!(serial, parallel, "seed {seed}");
        }
    }

    #[test]
    fn handles_more_than_64_faults() {
        let cfg = GeneratorConfig::new("big", 9).inputs(8).gates(150).dffs(8);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        assert!(faults.len() > 64, "need multiple chunks");
        let mut rng = StdRng::seed_from_u64(1);
        let vectors = random_vectors(&mut rng, 8, 12);
        let init = vec![V3::X; 8];
        let serial = SeqSim::new(&c).fault_sim(&vectors, &init, &faults);
        let parallel = ParallelFaultSim::new(&c).fault_sim(&vectors, &init, &faults);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_matches_serial_for_every_thread_count() {
        let cfg = GeneratorConfig::new("shard", 11).inputs(8).gates(160).dffs(8);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        assert!(faults.len() > 128, "need several 64-lane words");
        let mut rng = StdRng::seed_from_u64(7);
        let vectors = random_vectors(&mut rng, 8, 16);
        let init = vec![V3::X; 8];
        let sim = ParallelFaultSim::new(&c);
        let reference = sim.fault_sim(&vectors, &init, &faults);
        let mut reference_work = None;
        for threads in [1, 2, 3, 4, 0] {
            let (sharded, stats, work) = sim.fault_sim_sharded(&vectors, &init, &faults, threads);
            assert_eq!(sharded, reference, "threads = {threads}");
            assert_eq!(stats.items(), faults.len());
            assert!(work.gate_evals > 0 && work.lane_cycles > 0);
            // Work counters are per-64-lane-word sums: bit-identical for
            // every thread count.
            let expect = *reference_work.get_or_insert(work);
            assert_eq!(work, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_fault_list() {
        let cfg = GeneratorConfig::new("e", 2).gates(20).dffs(2);
        let c = generate(&cfg);
        let sim = ParallelFaultSim::new(&c);
        let res = sim.fault_sim(&[vec![V3::Zero; c.inputs().len()]], &[V3::X; 2], &[]);
        assert!(res.is_empty());
    }
}
