//! Lane-parallel sequential fault simulation (one fault word —
//! `W::LANES` faults — per pass), event-driven and cone-restricted.

use std::marker::PhantomData;
use std::sync::Arc;

use fscan_fault::{Fault, FaultSite};
use fscan_netlist::{Circuit, CompiledTopology, GateKind, NodeId};

use crate::comb::CombEvaluator;
use crate::counters::WorkCounters;
use crate::event::{EventQueue, GoodTrace};
use crate::kernel::Rail;
use crate::packed::Pv;
use crate::scratch::{SimScratch, NO_ENTRY};
use crate::value::V3;

/// Parallel-fault sequential fault simulator: simulates up to
/// `W::LANES` faulty machines per pass (64 at the default `u64` rail,
/// 256 at [`R256`](crate::kernel::R256)), one machine per bit lane,
/// against a shared fault-free trace.
///
/// The good machine is simulated once per vector sequence (event-driven,
/// see [`GoodTrace`]) and replayed read-only by every fault word — the
/// trace is scalar and width-independent, so widening the rail divides
/// the number of cone walks without touching the good machine.
/// Each word restricts itself to the union fanout cone of its fault
/// sites — nets outside the cone provably carry good values — and within
/// the cone only gates whose inputs changed since the previous cycle are
/// re-evaluated. All structural data comes from the shared
/// [`CompiledTopology`]; per-word buffers live in a reusable
/// [`SimScratch`] arena, so the steady-state loop allocates nothing.
///
/// Produces exactly the same detection verdicts as
/// [`SeqSim::fault_sim`](crate::SeqSim::fault_sim) (the serial
/// reference), typically orders of magnitude faster on fault lists
/// larger than a few dozen.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::Fault;
/// use fscan_sim::{ParallelFaultSim, V3};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// c.mark_output(g);
/// let sim = ParallelFaultSim::new(&c);
/// let res = sim.fault_sim(&[vec![V3::One]], &[], &[Fault::stem(g, true)]);
/// assert_eq!(res, vec![Some(0)]);
/// ```
#[derive(Clone, Debug)]
pub struct ParallelFaultSim<W: Rail = u64> {
    eval: CombEvaluator,
    _width: PhantomData<W>,
}

impl ParallelFaultSim {
    /// Builds a 64-lane simulator, compiling a private topology. Prefer
    /// [`ParallelFaultSim::with_topology`] when a compiled plan is
    /// already available; use [`ParallelFaultSim::new_wide`] /
    /// [`ParallelFaultSim::with_topology_wide`] to pick another rail
    /// width.
    pub fn new(circuit: &Circuit) -> ParallelFaultSim {
        ParallelFaultSim::new_wide(circuit)
    }

    /// Builds a 64-lane simulator over an already-compiled topology.
    pub fn with_topology(topo: Arc<CompiledTopology>) -> ParallelFaultSim {
        ParallelFaultSim::with_topology_wide(topo)
    }
}

impl<W: Rail> ParallelFaultSim<W> {
    /// Builds a simulator at rail width `W`, compiling a private
    /// topology.
    pub fn new_wide(circuit: &Circuit) -> ParallelFaultSim<W> {
        ParallelFaultSim {
            eval: CombEvaluator::new(circuit),
            _width: PhantomData,
        }
    }

    /// Builds a simulator at rail width `W` over an already-compiled
    /// topology.
    pub fn with_topology_wide(topo: Arc<CompiledTopology>) -> ParallelFaultSim<W> {
        ParallelFaultSim {
            eval: CombEvaluator::with_topology(topo),
            _width: PhantomData,
        }
    }

    /// The shared compiled topology this simulator runs against.
    pub fn topology(&self) -> &Arc<CompiledTopology> {
        self.eval.topology()
    }

    /// A fresh per-thread scratch arena sized for this simulator's
    /// topology, reusable across any number of
    /// [`fault_sim_into`](Self::fault_sim_into) calls.
    pub fn scratch(&self) -> SimScratch<W> {
        SimScratch::new(self.eval.topology())
    }

    /// Simulates the fault-free machine over `vectors` from state `init`
    /// once, event-driven. The returned trace can be passed to
    /// [`fault_sim_with_trace`](Self::fault_sim_with_trace) any number
    /// of times, so callers re-simulating the same sequence against
    /// different fault lists pay for the good machine once.
    pub fn good_trace(&self, vectors: &[Vec<V3>], init: &[V3]) -> GoodTrace {
        GoodTrace::compute(&self.eval, vectors, init)
    }

    /// Runs the full sequence for every fault and reports the first
    /// definite detection cycle per fault (`None` if undetected).
    ///
    /// Semantics match [`SeqSim::fault_sim`](crate::SeqSim::fault_sim):
    /// detection requires the good and faulty primary-output values to
    /// be known and different in the same cycle.
    pub fn fault_sim(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
    ) -> Vec<Option<usize>> {
        let trace = self.good_trace(vectors, init);
        self.fault_sim_with_trace(faults, &trace)
    }

    /// [`fault_sim`](Self::fault_sim) against an already-computed good
    /// trace (from [`good_trace`](Self::good_trace) over the same
    /// circuit).
    pub fn fault_sim_with_trace(&self, faults: &[Fault], trace: &GoodTrace) -> Vec<Option<usize>> {
        self.fault_sim_with_trace_counted(faults, trace).0
    }

    /// [`fault_sim_with_trace`](Self::fault_sim_with_trace) plus exact
    /// [`WorkCounters`] for the faulty machines: one `gate_evals` per
    /// packed gate evaluation actually performed (event-driven from
    /// cycle 0 on — cycle 0 seeds the cone with value *copies* and only
    /// evaluates gates a fault effect reaches), `cone_nets` = the
    /// union fault-cone size per 64-fault word, `lane_cycles` = Σ active
    /// lanes per simulated cycle, one `early_exits` per word whose
    /// faults were all detected before the vector set ran out, one
    /// `scratch_reuses` per word served by the arena. The good-machine
    /// work is *not* included — it lives in [`GoodTrace::counters`] and
    /// is paid once, not per word.
    ///
    /// Every contribution is a function of one 64-fault word only, so
    /// sums over any partition of the fault list (at word boundaries)
    /// are identical — the property `fault_sim_sharded` relies on.
    pub fn fault_sim_with_trace_counted(
        &self,
        faults: &[Fault],
        trace: &GoodTrace,
    ) -> (Vec<Option<usize>>, WorkCounters) {
        let mut scratch = self.scratch();
        let mut out = Vec::new();
        let counters = self.fault_sim_into(faults, trace, &mut scratch, &mut out);
        (out, counters)
    }

    /// The zero-allocation workhorse:
    /// [`fault_sim_with_trace_counted`](Self::fault_sim_with_trace_counted)
    /// writing verdicts into a caller-owned vector and running every
    /// 64-fault word through the reusable `scratch` arena. Once
    /// `scratch` and `out` are warm (one prior call of at least this
    /// size), a call performs no heap allocation at all — the property
    /// the allocation-counter integration test pins down.
    pub fn fault_sim_into(
        &self,
        faults: &[Fault],
        trace: &GoodTrace,
        scratch: &mut SimScratch<W>,
        out: &mut Vec<Option<usize>>,
    ) -> WorkCounters {
        out.clear();
        out.resize(faults.len(), None);
        let mut counters = WorkCounters::ZERO;
        let lanes = W::LANES as usize;
        for (chunk_idx, chunk) in faults.chunks(lanes).enumerate() {
            let base = chunk_idx * lanes;
            counters +=
                self.simulate_chunk(chunk, trace, scratch, &mut out[base..base + chunk.len()]);
        }
        counters
    }

    /// [`fault_sim`](Self::fault_sim) sharded across `threads` scoped
    /// workers (`0` = hardware thread count).
    ///
    /// The good trace is computed once and shared read-only; each worker
    /// owns one [`SimScratch`] arena (built in the pool's per-worker
    /// init) and simulates whole 64-lane words, and verdicts are merged
    /// in fault order, so the result is identical to the serial
    /// [`fault_sim`](Self::fault_sim) for every thread count. Also
    /// returns the work distribution and the summed [`WorkCounters`]
    /// (good-machine run included), which are bit-identical for every
    /// thread count because each word's contribution is chunk-local.
    pub fn fault_sim_sharded(
        &self,
        vectors: &[Vec<V3>],
        init: &[V3],
        faults: &[Fault],
        threads: usize,
    ) -> (Vec<Option<usize>>, crate::pool::ShardStats, WorkCounters) {
        let trace = self.good_trace(vectors, init);
        let (detections, stats, mut counters) =
            self.fault_sim_sharded_with_trace(faults, &trace, threads);
        counters += trace.counters();
        (detections, stats, counters)
    }

    /// [`fault_sim_sharded`](Self::fault_sim_sharded) against a
    /// caller-supplied good trace — the incremental-rerun entry point,
    /// where the trace comes from [`GoodTrace::replay_from`] rather
    /// than a fresh [`good_trace`](Self::good_trace). The returned
    /// counters cover only the faulty machines; the caller owns the
    /// trace's own [`GoodTrace::counters`] accounting.
    pub fn fault_sim_sharded_with_trace(
        &self,
        faults: &[Fault],
        trace: &GoodTrace,
        threads: usize,
    ) -> (Vec<Option<usize>>, crate::pool::ShardStats, WorkCounters) {
        crate::pool::shard_map_counted(
            threads,
            W::LANES as usize,
            faults,
            || self.scratch(),
            |scratch, _, chunk| {
                let mut out = Vec::new();
                let work = self.fault_sim_into(chunk, trace, scratch, &mut out);
                (out, work)
            },
        )
    }

    /// Simulates one 64-fault word against the shared good trace, using
    /// (and resetting) the caller's scratch arena.
    ///
    /// Restricted to the union fanout cone of the word's fault sites:
    /// every net outside the cone carries the good value in every lane
    /// (no structural path from any fault site reaches it), so faulty
    /// values (`fval`) are maintained — and gates re-evaluated — only
    /// inside the cone, and only when an input changed. Stale `fval`
    /// entries from the previous word are harmless: every in-cone node
    /// is overwritten by the cycle-0 seed copies before it is first
    /// read.
    fn simulate_chunk(
        &self,
        chunk: &[Fault],
        trace: &GoodTrace,
        scratch: &mut SimScratch<W>,
        detection: &mut [Option<usize>],
    ) -> WorkCounters {
        let topo = &**self.eval.topology();
        debug_assert_eq!(scratch.num_nodes, topo.num_nodes());
        debug_assert_eq!(detection.len(), chunk.len());
        let mut counters = WorkCounters::ZERO;
        counters.scratch_reuses += 1;
        if trace.cycles() == 0 {
            return counters;
        }
        let n_lanes = chunk.len() as u32;
        let full_mask = W::low_mask(n_lanes);

        scratch.begin_word();
        let SimScratch {
            epoch,
            good_now,
            fval,
            cone_stamp,
            stack,
            cone_order,
            cone_pis,
            cone_ffs,
            cone_outs,
            queue,
            fnext,
            buf,
            stem_head,
            stem_entries,
            branch_head,
            branch_entries,
            ..
        } = scratch;
        let epoch = *epoch;

        // Injection tables: epoch-stamped per-node linked lists. Lanes
        // are disjoint bits, so application order does not matter.
        for (lane, f) in chunk.iter().enumerate() {
            let mask = W::lane_bit(lane as u32);
            match f.site {
                FaultSite::Stem(n) => {
                    let i = n.index();
                    let prev = if stem_head[i].0 == epoch {
                        stem_head[i].1
                    } else {
                        NO_ENTRY
                    };
                    stem_head[i] = (epoch, stem_entries.len() as u32);
                    stem_entries.push((mask, f.stuck, prev));
                }
                FaultSite::Branch { gate, pin } => {
                    let i = gate.index();
                    let prev = if branch_head[i].0 == epoch {
                        branch_head[i].1
                    } else {
                        NO_ENTRY
                    };
                    branch_head[i] = (epoch, branch_entries.len() as u32);
                    branch_entries.push((pin as u32, mask, f.stuck, prev));
                }
            }
        }
        let force_stem = |mut w: Pv<W>, id: NodeId| -> Pv<W> {
            let (ep, mut e) = stem_head[id.index()];
            if ep == epoch {
                while e != NO_ENTRY {
                    let (mask, stuck, next) = stem_entries[e as usize];
                    w = w.force(mask, stuck);
                    e = next;
                }
            }
            w
        };
        let force_branch = |mut w: Pv<W>, id: NodeId, pin: usize| -> Pv<W> {
            let (ep, mut e) = branch_head[id.index()];
            if ep == epoch {
                while e != NO_ENTRY {
                    let (epin, mask, stuck, next) = branch_entries[e as usize];
                    if epin as usize == pin {
                        w = w.force(mask, stuck);
                    }
                    e = next;
                }
            }
            w
        };

        // Union fault cone: forward closure of every fault site over the
        // CSR fanout slices (crossing flip-flops — the D pin is a
        // fanout), marked by stamping the current epoch.
        for f in chunk {
            let site = match f.site {
                FaultSite::Stem(n) => n,
                FaultSite::Branch { gate, .. } => gate,
            };
            if cone_stamp[site.index()] != epoch {
                cone_stamp[site.index()] = epoch;
                counters.cone_nets += 1;
                stack.push(site);
            }
        }
        while let Some(id) = stack.pop() {
            for &sink in topo.fanout_sinks(id) {
                if cone_stamp[sink.index()] != epoch {
                    cone_stamp[sink.index()] = epoch;
                    counters.cone_nets += 1;
                    stack.push(sink);
                }
            }
        }
        let in_cone = |id: NodeId| cone_stamp[id.index()] == epoch;

        let pos = self.eval.order_positions();
        cone_order.extend(topo.eval_order().iter().copied().filter(|&id| in_cone(id)));
        cone_pis.extend(topo.inputs().iter().copied().filter(|&pi| in_cone(pi)));
        cone_ffs.extend(topo.dffs().iter().copied().filter(|&ff| in_cone(ff)));
        cone_outs.extend(
            topo.outputs()
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, po)| in_cone(po))
                .map(|(k, po)| (k as u32, po)),
        );

        // Current good values (replayed from the trace's deltas); faulty
        // lanes' values are meaningful only inside the cone.
        good_now.copy_from_slice(trace.values0());
        let schedule = |queue: &mut EventQueue, id: NodeId| {
            for &sink in topo.fanout_sinks(id) {
                if in_cone(sink) && topo.kind(sink).is_gate() {
                    queue.push(pos[sink.index()], sink);
                }
            }
        };

        let mut detected_mask = W::EMPTY;
        for t in 0..trace.cycles() {
            counters.lane_cycles += u64::from(n_lanes);
            if t == 0 {
                // Seed: every in-cone net starts at the good snapshot
                // with the word's forces applied — value copies, not gate
                // evaluations. A gate is re-evaluated at cycle 0 only if
                // a fault effect can have changed it: stem forces that
                // diverge from the good value wake their fanout, a
                // branch force wakes the gate it feeds, and the shared
                // event loop below propagates from there.
                for &pi in cone_pis.iter() {
                    fval[pi.index()] = force_stem(Pv::splat(good_now[pi.index()]), pi);
                }
                for &ff in cone_ffs.iter() {
                    fval[ff.index()] = force_stem(Pv::splat(good_now[ff.index()]), ff);
                }
                for &id in cone_order.iter() {
                    fval[id.index()] = force_stem(Pv::splat(good_now[id.index()]), id);
                }
                for f in chunk {
                    match f.site {
                        FaultSite::Stem(n) => {
                            if fval[n.index()] != Pv::splat(good_now[n.index()]) {
                                schedule(queue, n);
                            }
                        }
                        FaultSite::Branch { gate, .. } => {
                            // A D-pin branch is injected by the clocking
                            // step; only real gates need a cycle-0 eval.
                            if topo.kind(gate).is_gate() {
                                queue.push(pos[gate.index()], gate);
                            }
                        }
                    }
                }
            } else {
                queue.next_cycle();
                // Replay the good machine's deltas. An out-of-cone change
                // is visible to cone gates reading it; an in-cone input
                // re-splats its lanes; in-cone gate and flip-flop deltas
                // need nothing here (the event loop re-derives gates from
                // their changed fanins, the clocking step below presents
                // flip-flops).
                for (id, v) in trace.changes(t) {
                    good_now[id.index()] = v;
                    if in_cone(id) {
                        if topo.kind(id) == GateKind::Input {
                            let w = force_stem(Pv::splat(v), id);
                            if w != fval[id.index()] {
                                fval[id.index()] = w;
                                schedule(queue, id);
                            }
                        }
                    } else {
                        schedule(queue, id);
                    }
                }
                // Present the captured faulty state to in-cone flip-flops.
                for (k, &ff) in cone_ffs.iter().enumerate() {
                    let w = force_stem(fnext[k], ff);
                    if w != fval[ff.index()] {
                        fval[ff.index()] = w;
                        schedule(queue, ff);
                    }
                }
            }
            // Drain events in topological order: each gate pops at most
            // once per cycle, after all its fanins settled.
            while let Some(id) = queue.pop() {
                counters.gate_evals += 1;
                counters.kernel_gate_evals += 1;
                buf.clear();
                for (pin, &src) in topo.fanin(id).iter().enumerate() {
                    let w = if in_cone(src) {
                        fval[src.index()]
                    } else {
                        Pv::splat(good_now[src.index()])
                    };
                    buf.push(force_branch(w, id, pin));
                }
                let out = force_stem(Pv::eval(topo.kind(id), buf.iter().copied()), id);
                if out != fval[id.index()] {
                    fval[id.index()] = out;
                    schedule(queue, id);
                }
            }
            // Detection: faulty PO known and opposite of a known good PO.
            // Out-of-cone outputs carry good values in every lane and can
            // never differ.
            for &(k, po) in cone_outs.iter() {
                let g = trace.outputs()[t][k as usize];
                let w = fval[po.index()];
                let diff = match g {
                    V3::Zero => w.ones(),
                    V3::One => w.zeros(),
                    V3::X => W::EMPTY,
                };
                let newly = diff & full_mask & !detected_mask;
                if !newly.is_empty() {
                    newly.for_each_set_lane(|lane| detection[lane as usize] = Some(t));
                    detected_mask |= newly;
                }
            }
            if detected_mask == full_mask {
                if t + 1 < trace.cycles() {
                    counters.early_exits += 1;
                }
                break;
            }
            // Clock in-cone flip-flops (branch faults on D pins injected
            // here); out-of-cone state always equals the good machine's.
            fnext.clear();
            for &ff in cone_ffs.iter() {
                debug_assert_eq!(topo.kind(ff), GateKind::Dff);
                let d = topo.fanin(ff)[0];
                let w = if in_cone(d) {
                    fval[d.index()]
                } else {
                    Pv::splat(good_now[d.index()])
                };
                fnext.push(force_branch(w, ff, 0));
            }
        }
        counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SeqSim;
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vectors(rng: &mut StdRng, n_inputs: usize, cycles: usize) -> Vec<Vec<V3>> {
        (0..cycles)
            .map(|_| {
                (0..n_inputs)
                    .map(|_| if rng.gen_bool(0.5) { V3::One } else { V3::Zero })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn agrees_with_serial_reference() {
        for seed in 0..3u64 {
            let cfg = GeneratorConfig::new(format!("p{seed}"), seed)
                .inputs(6)
                .gates(80)
                .dffs(6);
            let c = generate(&cfg);
            let faults = collapse(&c, &all_faults(&c));
            let mut rng = StdRng::seed_from_u64(seed + 100);
            let vectors = random_vectors(&mut rng, 6, 20);
            let init = vec![V3::X; 6];
            let serial = SeqSim::new(&c).fault_sim(&vectors, &init, &faults);
            let parallel = ParallelFaultSim::new(&c).fault_sim(&vectors, &init, &faults);
            assert_eq!(serial, parallel, "seed {seed}");
        }
    }

    #[test]
    fn handles_more_than_64_faults() {
        let cfg = GeneratorConfig::new("big", 9).inputs(8).gates(150).dffs(8);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        assert!(faults.len() > 64, "need multiple chunks");
        let mut rng = StdRng::seed_from_u64(1);
        let vectors = random_vectors(&mut rng, 8, 12);
        let init = vec![V3::X; 8];
        let serial = SeqSim::new(&c).fault_sim(&vectors, &init, &faults);
        let parallel = ParallelFaultSim::new(&c).fault_sim(&vectors, &init, &faults);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_matches_serial_for_every_thread_count() {
        let cfg = GeneratorConfig::new("shard", 11).inputs(8).gates(160).dffs(8);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        assert!(faults.len() > 128, "need several 64-lane words");
        let mut rng = StdRng::seed_from_u64(7);
        let vectors = random_vectors(&mut rng, 8, 16);
        let init = vec![V3::X; 8];
        let sim = ParallelFaultSim::new(&c);
        let reference = sim.fault_sim(&vectors, &init, &faults);
        let mut reference_work = None;
        for threads in [1, 2, 3, 4, 0] {
            let (sharded, stats, work) = sim.fault_sim_sharded(&vectors, &init, &faults, threads);
            assert_eq!(sharded, reference, "threads = {threads}");
            assert_eq!(stats.items(), faults.len());
            assert!(work.gate_evals > 0 && work.lane_cycles > 0);
            assert_eq!(work.scratch_reuses, faults.len().div_ceil(64) as u64);
            // Work counters are per-64-lane-word sums: bit-identical for
            // every thread count.
            let expect = *reference_work.get_or_insert(work);
            assert_eq!(work, expect, "threads = {threads}");
        }
    }

    #[test]
    fn trace_reuse_matches_one_shot_and_is_cheaper_than_full_resim() {
        let cfg = GeneratorConfig::new("tr", 21).inputs(7).gates(140).dffs(7);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        let mut rng = StdRng::seed_from_u64(3);
        let vectors = random_vectors(&mut rng, 7, 18);
        let init = vec![V3::X; 7];
        let sim = ParallelFaultSim::new(&c);
        let trace = sim.good_trace(&vectors, &init);
        let (via_trace, work) = sim.fault_sim_with_trace_counted(&faults, &trace);
        assert_eq!(via_trace, sim.fault_sim(&vectors, &init, &faults));
        assert!(work.cone_nets > 0, "cones must be accounted");
        // The whole point: incremental cone simulation does strictly less
        // gate work than re-evaluating every gate every cycle per word.
        let words = faults.len().div_ceil(64) as u64;
        let full = words * vectors.len() as u64 * sim.eval.order().len() as u64;
        assert!(
            work.gate_evals < full,
            "incremental {} >= full relevelization {}",
            work.gate_evals,
            full
        );
    }

    #[test]
    fn scratch_reuse_is_verdict_and_counter_identical() {
        // One arena serving many words must behave exactly like a fresh
        // arena per call — no state may leak across words.
        let cfg = GeneratorConfig::new("reuse", 5).inputs(7).gates(120).dffs(6);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        assert!(faults.len() > 64);
        let mut rng = StdRng::seed_from_u64(17);
        let vectors = random_vectors(&mut rng, 7, 14);
        let init = vec![V3::X; 6];
        let sim = ParallelFaultSim::new(&c);
        let trace = sim.good_trace(&vectors, &init);
        let (reference, ref_work) = sim.fault_sim_with_trace_counted(&faults, &trace);
        let mut scratch = sim.scratch();
        let mut out = Vec::new();
        for round in 0..3 {
            let work = sim.fault_sim_into(&faults, &trace, &mut scratch, &mut out);
            assert_eq!(out, reference, "round {round}");
            assert_eq!(work, ref_work, "round {round}");
        }
    }

    #[test]
    fn wide_rail_matches_default_width_verdicts() {
        use crate::kernel::R256;
        // 256-lane words must give the exact verdicts of the 64-lane
        // default (and the serial reference), with fewer cone walks.
        let cfg = GeneratorConfig::new("wide", 11).inputs(8).gates(160).dffs(8);
        let c = generate(&cfg);
        let faults = collapse(&c, &all_faults(&c));
        assert!(faults.len() > 64, "need more than one 64-lane word");
        assert_ne!(faults.len() % 256, 0, "want a tail word");
        let mut rng = StdRng::seed_from_u64(7);
        let vectors = random_vectors(&mut rng, 8, 16);
        let init = vec![V3::X; 8];
        let narrow = ParallelFaultSim::new(&c);
        let wide = ParallelFaultSim::<R256>::new_wide(&c);
        let trace = narrow.good_trace(&vectors, &init);
        let (nres, nwork) = narrow.fault_sim_with_trace_counted(&faults, &trace);
        let (wres, wwork) = wide.fault_sim_with_trace_counted(&faults, &trace);
        assert_eq!(wres, nres, "verdicts must be width-invariant");
        assert_eq!(wwork.scratch_reuses, faults.len().div_ceil(256) as u64);
        assert!(
            wwork.gate_evals < nwork.gate_evals,
            "wider words must walk fewer cones ({} vs {})",
            wwork.gate_evals,
            nwork.gate_evals
        );
        // Thread count must not change wide verdicts or counters.
        let mut reference_work = None;
        for threads in [1, 2, 4] {
            let (sharded, stats, work) = wide.fault_sim_sharded(&vectors, &init, &faults, threads);
            assert_eq!(sharded, nres, "threads = {threads}");
            assert_eq!(stats.items(), faults.len());
            let expect = *reference_work.get_or_insert(work);
            assert_eq!(work, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_fault_list() {
        let cfg = GeneratorConfig::new("e", 2).gates(20).dffs(2);
        let c = generate(&cfg);
        let sim = ParallelFaultSim::new(&c);
        let res = sim.fault_sim(&[vec![V3::Zero; c.inputs().len()], ], &[V3::X; 2], &[]);
        assert!(res.is_empty());
    }
}
