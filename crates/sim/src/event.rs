//! Event-driven incremental simulation: the shared good-machine trace
//! and the topological event queue.
//!
//! A scan-mode circuit is mostly quiescent — between consecutive cycles
//! only the shifting chain and its fanout cone change value — yet the
//! levelized evaluators re-visit every gate every cycle. The two pieces
//! here exploit that locality:
//!
//! * [`EventQueue`] — a topologically-ordered scheduler (the same
//!   pattern as the implication engine's): gates are processed in
//!   levelization order, so by the time a gate pops, every fanin it
//!   depends on holds its final value for the cycle and each gate is
//!   evaluated at most once per cycle.
//! * [`GoodTrace`] — the fault-free machine, simulated **once** per
//!   vector sequence with persistent per-net values: cycle 0 is one
//!   full levelized pass, every later cycle re-evaluates only the gates
//!   whose inputs changed. The trace stores the cycle-0 net snapshot
//!   plus per-cycle delta lists, so fault batches replay the good
//!   machine read-only by walking the deltas forward instead of
//!   re-simulating it per 64-lane pass.
//!
//! Exactness: a gate whose inputs are unchanged from the previous cycle
//! produces an unchanged output, so propagating only changes in
//! topological order yields exactly the values a full re-evaluation
//! would — the differential proptest oracle in `tests/props.rs` checks
//! this net-for-net against [`CombEvaluator`] on random circuits.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fscan_netlist::NodeId;

use crate::comb::CombEvaluator;
use crate::counters::WorkCounters;
use crate::kernel;
use crate::value::V3;

/// A deduplicating, topologically-ordered event scheduler.
///
/// Nodes are pushed with their position in the levelized evaluation
/// order and pop in ascending position; pushing a node twice within one
/// cycle schedules it once (epoch-stamped, so starting a new cycle is
/// O(1)).
#[derive(Clone, Debug)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl EventQueue {
    /// A queue for a circuit with `num_nodes` nodes.
    pub(crate) fn new(num_nodes: usize) -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            stamp: vec![0; num_nodes],
            epoch: 0,
        }
    }

    /// Starts a new cycle: previously-popped nodes become schedulable
    /// again. The queue must be drained first.
    pub(crate) fn next_cycle(&mut self) {
        debug_assert!(self.heap.is_empty(), "event queue not drained");
        self.epoch += 1;
    }

    /// Hard reset for arena reuse: drops any still-enqueued events (an
    /// early-exiting consumer may leave some behind) and starts a fresh
    /// epoch, keeping the allocated capacity.
    pub(crate) fn reset(&mut self) {
        self.heap.clear();
        self.epoch += 1;
    }

    /// Schedules `node` (at order position `pos`) unless it is already
    /// scheduled or was already processed this cycle.
    pub(crate) fn push(&mut self, pos: u32, node: NodeId) {
        let i = node.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.heap.push(Reverse((pos, i as u32)));
        }
    }

    /// Pops the scheduled node with the lowest order position.
    pub(crate) fn pop(&mut self) -> Option<NodeId> {
        self.heap
            .pop()
            .map(|Reverse((_, i))| NodeId::from_index(i as usize))
    }
}

/// The fault-free machine's full behavior over one vector sequence,
/// computed once by event-driven simulation and shared read-only by
/// every fault batch.
///
/// Stored as the cycle-0 net-value snapshot plus per-cycle
/// `(node, new value)` delta lists, which bounds memory to the actual
/// switching activity instead of `cycles × nets`. Consumers keep a
/// `Vec<V3>` of current good values and walk the deltas forward with
/// [`GoodTrace::changes`].
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_sim::{ParallelFaultSim, V3};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// c.mark_output(g);
/// let sim = ParallelFaultSim::new(&c);
/// let trace = sim.good_trace(&[vec![V3::One], vec![V3::One]], &[]);
/// assert_eq!(trace.outputs()[0], vec![V3::Zero]);
/// // The second cycle is quiescent: no gate was re-evaluated.
/// assert_eq!(trace.counters().gate_evals, 1);
/// ```
#[derive(Clone, Debug)]
pub struct GoodTrace {
    outputs: Vec<Vec<V3>>,
    final_state: Vec<V3>,
    values0: Vec<V3>,
    delta_nodes: Vec<u32>,
    delta_values: Vec<V3>,
    /// `delta_ends[t]` = end of cycle `t`'s deltas in the flat arrays
    /// (`delta_ends[0] == 0`: cycle 0 is the snapshot).
    delta_ends: Vec<usize>,
    counters: WorkCounters,
}

impl GoodTrace {
    /// Simulates `vectors.len()` cycles of the fault-free machine from
    /// flip-flop state `init`, re-evaluating only gates whose inputs
    /// changed (cycle 0 pays one full levelized pass). Fanout adjacency
    /// comes from the evaluator's shared [`CompiledTopology`]
    /// (`fscan_netlist::CompiledTopology`) CSR slices.
    ///
    /// # Panics
    ///
    /// Panics if a vector's length differs from the input count or
    /// `init` from the flip-flop count.
    pub fn compute(eval: &CombEvaluator, vectors: &[Vec<V3>], init: &[V3]) -> GoodTrace {
        let topo = eval.topology();
        assert_eq!(
            init.len(),
            topo.dffs().len(),
            "init length != flip-flop count"
        );
        let n = topo.num_nodes();
        let pos = eval.order_positions();
        let mut values = vec![V3::X; n];
        let mut outputs: Vec<Vec<V3>> = Vec::with_capacity(vectors.len());
        let mut counters = WorkCounters::ZERO;
        let mut delta_nodes: Vec<u32> = Vec::new();
        let mut delta_values: Vec<V3> = Vec::new();
        let mut delta_ends: Vec<usize> = Vec::with_capacity(vectors.len());
        let mut state: Vec<V3> = init.to_vec();

        let Some(vec0) = vectors.first() else {
            return GoodTrace {
                outputs,
                final_state: state,
                values0: values,
                delta_nodes,
                delta_values,
                delta_ends,
                counters,
            };
        };

        // Cycle 0: one full levelized pass seeds the persistent values.
        assert_eq!(
            vec0.len(),
            topo.inputs().len(),
            "vector length != input count"
        );
        for (&pi, &v) in topo.inputs().iter().zip(vec0.iter()) {
            values[pi.index()] = v;
        }
        for (&ff, &v) in topo.dffs().iter().zip(state.iter()) {
            values[ff.index()] = v;
        }
        eval.eval_values(&mut values);
        counters.gate_evals += eval.order().len() as u64;
        counters.lane_cycles += 1;
        outputs.push(topo.outputs().iter().map(|&po| values[po.index()]).collect());
        delta_ends.push(0);
        let values0 = values.clone();
        for (s, &ff) in state.iter_mut().zip(topo.dffs().iter()) {
            *s = values[topo.fanin(ff)[0].index()];
        }

        // Cycles 1..: drive only the changed inputs and state bits and
        // let the event queue propagate.
        let mut queue = EventQueue::new(n);
        let schedule = |queue: &mut EventQueue, id: NodeId| {
            for &sink in topo.fanout_sinks(id) {
                if topo.kind(sink).is_gate() {
                    queue.push(pos[sink.index()], sink);
                }
            }
        };
        for vec_t in vectors.iter().skip(1) {
            assert_eq!(
                vec_t.len(),
                topo.inputs().len(),
                "vector length != input count"
            );
            counters.lane_cycles += 1;
            queue.next_cycle();
            for (&pi, &v) in topo.inputs().iter().zip(vec_t.iter()) {
                if values[pi.index()] != v {
                    values[pi.index()] = v;
                    delta_nodes.push(pi.index() as u32);
                    delta_values.push(v);
                    schedule(&mut queue, pi);
                }
            }
            for (&ff, &v) in topo.dffs().iter().zip(state.iter()) {
                if values[ff.index()] != v {
                    values[ff.index()] = v;
                    delta_nodes.push(ff.index() as u32);
                    delta_values.push(v);
                    schedule(&mut queue, ff);
                }
            }
            while let Some(id) = queue.pop() {
                counters.gate_evals += 1;
                let out = kernel::eval_v3(
                    topo.kind(id),
                    topo.fanin(id).iter().map(|&src| values[src.index()]),
                );
                if values[id.index()] != out {
                    values[id.index()] = out;
                    delta_nodes.push(id.index() as u32);
                    delta_values.push(out);
                    schedule(&mut queue, id);
                }
            }
            delta_ends.push(delta_nodes.len());
            outputs.push(topo.outputs().iter().map(|&po| values[po.index()]).collect());
            for (s, &ff) in state.iter_mut().zip(topo.dffs().iter()) {
                *s = values[topo.fanin(ff)[0].index()];
            }
        }

        GoodTrace {
            outputs,
            final_state: state,
            values0,
            delta_nodes,
            delta_values,
            delta_ends,
            counters,
        }
    }

    /// Simulates like [`compute`](Self::compute), but seeds every cycle
    /// from `prior` — a trace of the **base** design this evaluator's
    /// topology was patched from — so gates outside the edit's dirty
    /// cones are *copied* instead of re-evaluated.
    ///
    /// The result is identical to `GoodTrace::compute(eval, vectors,
    /// init)` in every stored artifact (outputs, states, snapshot,
    /// deltas); only the [`counters`](Self::counters) differ:
    /// `gate_evals` counts just the gates that actually went through the
    /// kernel, and `trace_cycles_reused` counts the cycles for which
    /// `prior` was live. The reuse rule is purely value-based — a gate
    /// is copied when its function is unchanged (it is not in the
    /// patch's [`touched`](fscan_netlist::DirtyInfo::touched) set) and
    /// its fanin values match the prior machine's values for the same
    /// cycle, in which case its output provably matches too. `prior`
    /// may therefore come from *any* vector sequence: divergent inputs
    /// simply shrink the copied region. A cold (unpatched) topology
    /// reuses the whole trace when vectors and init are unchanged.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`compute`](Self::compute),
    /// or if `prior` has a different base node count than the patch
    /// expects.
    pub fn replay_from(
        eval: &CombEvaluator,
        prior: &GoodTrace,
        vectors: &[Vec<V3>],
        init: &[V3],
    ) -> GoodTrace {
        let topo = eval.topology();
        assert_eq!(
            init.len(),
            topo.dffs().len(),
            "init length != flip-flop count"
        );
        let n = topo.num_nodes();
        let prior_n = prior.values0.len();
        assert!(
            prior_n <= n,
            "prior trace has {prior_n} nodes, patched topology only {n}"
        );
        // Nodes whose *function* changed: copying their prior value is
        // never sound, no matter how the fanin values compare.
        let mut changed_fn = vec![false; n];
        if let Some(dirty) = topo.dirty() {
            for &t in dirty.touched() {
                changed_fn[t.index()] = true;
            }
        }
        let pos = eval.order_positions();
        let mut values = vec![V3::X; n];
        let mut outputs: Vec<Vec<V3>> = Vec::with_capacity(vectors.len());
        let mut counters = WorkCounters::ZERO;
        let mut delta_nodes: Vec<u32> = Vec::new();
        let mut delta_values: Vec<V3> = Vec::new();
        let mut delta_ends: Vec<usize> = Vec::with_capacity(vectors.len());
        let mut state: Vec<V3> = init.to_vec();
        // The prior machine's end-of-cycle net values, advanced through
        // its delta lists in lockstep with our own cycles.
        let mut pvals: Vec<V3> = prior.values0.clone();

        let Some(vec0) = vectors.first() else {
            return GoodTrace {
                outputs,
                final_state: state,
                values0: values,
                delta_nodes,
                delta_values,
                delta_ends,
                counters,
            };
        };

        // Cycle 0: one levelized pass, copying wherever the prior
        // machine already knows the answer.
        assert_eq!(
            vec0.len(),
            topo.inputs().len(),
            "vector length != input count"
        );
        let live0 = prior.cycles() > 0;
        if live0 {
            counters.trace_cycles_reused += 1;
        }
        for (&pi, &v) in topo.inputs().iter().zip(vec0.iter()) {
            values[pi.index()] = v;
        }
        for (&ff, &v) in topo.dffs().iter().zip(state.iter()) {
            values[ff.index()] = v;
        }
        for &id in eval.order() {
            let i = id.index();
            let clean = live0 && i < prior_n && !changed_fn[i];
            if clean
                && topo
                    .fanin(id)
                    .iter()
                    .all(|&f| values[f.index()] == pvals[f.index()])
            {
                values[i] = pvals[i];
            } else {
                counters.gate_evals += 1;
                values[i] = kernel::eval_v3(
                    topo.kind(id),
                    topo.fanin(id).iter().map(|&src| values[src.index()]),
                );
            }
        }
        counters.lane_cycles += 1;
        outputs.push(topo.outputs().iter().map(|&po| values[po.index()]).collect());
        delta_ends.push(0);
        let values0 = values.clone();
        for (s, &ff) in state.iter_mut().zip(topo.dffs().iter()) {
            *s = values[topo.fanin(ff)[0].index()];
        }

        // Cycles 1..: the same event-driven propagation as `compute`,
        // except a popped gate whose function is unchanged and whose
        // fanins match the prior machine is copied, not evaluated.
        let mut queue = EventQueue::new(n);
        let schedule = |queue: &mut EventQueue, id: NodeId| {
            for &sink in topo.fanout_sinks(id) {
                if topo.kind(sink).is_gate() {
                    queue.push(pos[sink.index()], sink);
                }
            }
        };
        for (t, vec_t) in vectors.iter().enumerate().skip(1) {
            assert_eq!(
                vec_t.len(),
                topo.inputs().len(),
                "vector length != input count"
            );
            let live = t < prior.cycles();
            if live {
                counters.trace_cycles_reused += 1;
                for (id, v) in prior.changes(t) {
                    pvals[id.index()] = v;
                }
            }
            counters.lane_cycles += 1;
            queue.next_cycle();
            for (&pi, &v) in topo.inputs().iter().zip(vec_t.iter()) {
                if values[pi.index()] != v {
                    values[pi.index()] = v;
                    delta_nodes.push(pi.index() as u32);
                    delta_values.push(v);
                    schedule(&mut queue, pi);
                }
            }
            for (&ff, &v) in topo.dffs().iter().zip(state.iter()) {
                if values[ff.index()] != v {
                    values[ff.index()] = v;
                    delta_nodes.push(ff.index() as u32);
                    delta_values.push(v);
                    schedule(&mut queue, ff);
                }
            }
            while let Some(id) = queue.pop() {
                let i = id.index();
                let clean = live && i < prior_n && !changed_fn[i];
                let out = if clean
                    && topo
                        .fanin(id)
                        .iter()
                        .all(|&f| values[f.index()] == pvals[f.index()])
                {
                    pvals[i]
                } else {
                    counters.gate_evals += 1;
                    kernel::eval_v3(
                        topo.kind(id),
                        topo.fanin(id).iter().map(|&src| values[src.index()]),
                    )
                };
                if values[i] != out {
                    values[i] = out;
                    delta_nodes.push(i as u32);
                    delta_values.push(out);
                    schedule(&mut queue, id);
                }
            }
            delta_ends.push(delta_nodes.len());
            outputs.push(topo.outputs().iter().map(|&po| values[po.index()]).collect());
            for (s, &ff) in state.iter_mut().zip(topo.dffs().iter()) {
                *s = values[topo.fanin(ff)[0].index()];
            }
        }

        GoodTrace {
            outputs,
            final_state: state,
            values0,
            delta_nodes,
            delta_values,
            delta_ends,
            counters,
        }
    }

    /// Cycles simulated.
    pub fn cycles(&self) -> usize {
        self.outputs.len()
    }

    /// Primary-output values per cycle, in `Circuit::outputs` order —
    /// the same shape as [`Trace::outputs`](crate::Trace).
    pub fn outputs(&self) -> &[Vec<V3>] {
        &self.outputs
    }

    /// Flip-flop state after the last cycle, in `Circuit::dffs` order.
    pub fn final_state(&self) -> &[V3] {
        &self.final_state
    }

    /// The complete net-value snapshot after cycle 0 (indexed by node
    /// id). Presented flip-flop entries equal the initial state, input
    /// entries equal `vectors[0]`.
    pub fn values0(&self) -> &[V3] {
        &self.values0
    }

    /// The `(node index, new value)` deltas turning the cycle `t - 1`
    /// net values into the cycle `t` values (`t >= 1`; cycle 0 has no
    /// deltas — start from [`GoodTrace::values0`]).
    pub fn changes(&self, t: usize) -> impl Iterator<Item = (NodeId, V3)> + '_ {
        let lo = self.delta_ends[t - 1];
        let hi = self.delta_ends[t];
        self.delta_nodes[lo..hi]
            .iter()
            .zip(self.delta_values[lo..hi].iter())
            .map(|(&i, &v)| (NodeId::from_index(i as usize), v))
    }

    /// The exact work this trace's computation performed: `gate_evals`
    /// counts only the gates actually re-evaluated (one full pass at
    /// cycle 0, activity only afterwards); `lane_cycles` is one per
    /// cycle, as for any serial good-machine run.
    pub fn counters(&self) -> WorkCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, Circuit, GateKind, GeneratorConfig};
    use crate::seq::SeqSim;

    fn trace_for(c: &Circuit, vectors: &[Vec<V3>], init: &[V3]) -> GoodTrace {
        let eval = CombEvaluator::new(c);
        GoodTrace::compute(&eval, vectors, init)
    }

    #[test]
    fn matches_full_reference_simulation() {
        for seed in 0..4u64 {
            let c = generate(
                &GeneratorConfig::new(format!("g{seed}"), seed)
                    .inputs(6)
                    .gates(90)
                    .dffs(7),
            );
            let vectors = fscan_atpg_free_vectors(&c, 25, seed);
            let init: Vec<V3> = (0..c.dffs().len())
                .map(|i| match i % 3 {
                    0 => V3::Zero,
                    1 => V3::One,
                    _ => V3::X,
                })
                .collect();
            let reference = SeqSim::new(&c).run(&vectors, &init, None);
            let trace = trace_for(&c, &vectors, &init);
            assert_eq!(trace.outputs(), &reference.outputs[..], "seed {seed}");
            assert_eq!(trace.final_state(), &reference.final_state[..]);
        }
    }

    /// Deterministic xorshift vectors (avoid depending on fscan-atpg
    /// from fscan-sim's dev-deps).
    fn fscan_atpg_free_vectors(c: &Circuit, cycles: usize, seed: u64) -> Vec<Vec<V3>> {
        let mut s = seed.wrapping_mul(2).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        (0..cycles)
            .map(|_| {
                (0..c.inputs().len())
                    .map(|_| match next() % 3 {
                        0 => V3::Zero,
                        1 => V3::One,
                        _ => V3::X,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn deltas_replay_to_reference_values() {
        let c = generate(&GeneratorConfig::new("replay", 3).inputs(5).gates(70).dffs(5));
        let vectors = fscan_atpg_free_vectors(&c, 15, 9);
        let init = vec![V3::X; c.dffs().len()];
        let trace = trace_for(&c, &vectors, &init);
        // Walk the deltas forward and compare the reconstructed net
        // values against a full levelized evaluation at every cycle.
        let eval = CombEvaluator::new(&c);
        let mut now = trace.values0().to_vec();
        let mut full = vec![V3::X; c.num_nodes()];
        let mut state = init.clone();
        for (t, vec_t) in vectors.iter().enumerate() {
            if t > 0 {
                for (id, v) in trace.changes(t) {
                    now[id.index()] = v;
                }
            }
            for (&pi, &v) in c.inputs().iter().zip(vec_t.iter()) {
                full[pi.index()] = v;
            }
            for (&ff, &v) in c.dffs().iter().zip(state.iter()) {
                full[ff.index()] = v;
            }
            eval.eval(&c, &mut full);
            assert_eq!(now, full, "cycle {t}");
            for (s, &ff) in state.iter_mut().zip(c.dffs().iter()) {
                *s = full[c.node(ff).fanin()[0].index()];
            }
        }
    }

    #[test]
    fn quiescent_cycles_evaluate_zero_gates() {
        // A purely combinational circuit under a constant input sequence
        // is quiescent after cycle 0: the event queue must stay empty.
        let mut c = Circuit::new("quiet");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1");
        let g2 = c.add_gate(GateKind::Nor, vec![g1, a], "g2");
        c.mark_output(g2);
        let vectors = vec![vec![V3::One, V3::Zero]; 10];
        let trace = trace_for(&c, &vectors, &[]);
        let eval = CombEvaluator::new(&c);
        assert_eq!(
            trace.counters().gate_evals,
            eval.order().len() as u64,
            "only the cycle-0 seed pass may evaluate gates"
        );
        assert_eq!(trace.counters().lane_cycles, 10);
        for t in 1..10 {
            assert_eq!(trace.changes(t).count(), 0, "cycle {t} must be delta-free");
        }
    }

    #[test]
    fn empty_sequence_is_empty_trace() {
        let c = generate(&GeneratorConfig::new("e", 1).gates(20).dffs(2));
        let trace = trace_for(&c, &[], &[V3::X, V3::X]);
        assert_eq!(trace.cycles(), 0);
        assert!(trace.counters().is_zero());
    }

    fn assert_same_trace(a: &GoodTrace, b: &GoodTrace) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.final_state, b.final_state);
        assert_eq!(a.values0, b.values0);
        assert_eq!(a.delta_nodes, b.delta_nodes);
        assert_eq!(a.delta_values, b.delta_values);
        assert_eq!(a.delta_ends, b.delta_ends);
    }

    #[test]
    fn replay_on_unpatched_design_is_free_and_identical() {
        let c = generate(&GeneratorConfig::new("r", 5).inputs(6).gates(80).dffs(6));
        let vectors = fscan_atpg_free_vectors(&c, 20, 4);
        let init = vec![V3::Zero; c.dffs().len()];
        let eval = CombEvaluator::new(&c);
        let cold = GoodTrace::compute(&eval, &vectors, &init);
        let replayed = GoodTrace::replay_from(&eval, &cold, &vectors, &init);
        assert_same_trace(&cold, &replayed);
        // Same design, same vectors: every gate value is copied.
        assert_eq!(replayed.counters().gate_evals, 0);
        assert_eq!(replayed.counters().trace_cycles_reused, 20);
        assert_eq!(replayed.counters().lane_cycles, cold.counters().lane_cycles);
    }

    #[test]
    fn replay_with_divergent_vectors_is_identical_to_compute() {
        let c = generate(&GeneratorConfig::new("rd", 8).inputs(5).gates(60).dffs(5));
        let init = vec![V3::X; c.dffs().len()];
        let eval = CombEvaluator::new(&c);
        let prior = GoodTrace::compute(&eval, &fscan_atpg_free_vectors(&c, 12, 1), &init);
        // Different vectors, and more cycles than the prior trace has.
        let vectors = fscan_atpg_free_vectors(&c, 18, 2);
        let cold = GoodTrace::compute(&eval, &vectors, &init);
        let replayed = GoodTrace::replay_from(&eval, &prior, &vectors, &init);
        assert_same_trace(&cold, &replayed);
        assert!(replayed.counters().gate_evals <= cold.counters().gate_evals);
        assert_eq!(replayed.counters().trace_cycles_reused, 12);
    }

    #[test]
    fn replay_through_a_patched_topology_matches_cold_compute() {
        use fscan_netlist::{CompiledTopology, NetlistDelta};
        let base = generate(&GeneratorConfig::new("rp", 13).inputs(6).gates(90).dffs(7));
        let vectors = fscan_atpg_free_vectors(&base, 16, 3);
        let init = vec![V3::Zero; base.dffs().len()];
        let base_eval = CombEvaluator::new(&base);
        let prior = GoodTrace::compute(&base_eval, &vectors, &init);

        // Re-drive one gate, patch the topology, replay from the base
        // trace and compare against a cold compute of the edited design.
        let victim = base
            .iter()
            .find(|(_, n)| n.kind() == GateKind::And || n.kind() == GateKind::Or)
            .map(|(id, _)| id)
            .unwrap();
        let dual = if base.node(victim).kind() == GateKind::And {
            GateKind::Or
        } else {
            GateKind::And
        };
        let mut eco = base.clone();
        eco.redrive(victim, dual, base.node(victim).fanin().to_vec());
        let delta = NetlistDelta::diff(&base, &eco).unwrap();
        let patched_topo =
            std::sync::Arc::new(CompiledTopology::compile(&base).patch(&delta));
        let eval = CombEvaluator::with_topology(patched_topo);

        let cold = GoodTrace::compute(&eval, &vectors, &init);
        let replayed = GoodTrace::replay_from(&eval, &prior, &vectors, &init);
        assert_same_trace(&cold, &replayed);
        assert!(
            replayed.counters().gate_evals < cold.counters().gate_evals,
            "replay must save work: {} vs {}",
            replayed.counters().gate_evals,
            cold.counters().gate_evals
        );
    }
}
