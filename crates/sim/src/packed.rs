//! 64-way packed three-valued values.

use std::fmt;

use fscan_netlist::GateKind;

use crate::kernel::{self, DualRail, NonCombinational};
use crate::value::V3;

/// 64 three-valued logic values packed into two machine words.
///
/// Bit `i` of `zeros`/`ones` describes machine `i`: `zeros` set means 0,
/// `ones` set means 1, neither means X. The invariant
/// `zeros & ones == 0` is maintained by all constructors and operations.
///
/// # Examples
///
/// ```
/// use fscan_sim::{Pv64, V3};
///
/// let a = Pv64::splat(V3::One);
/// let b = Pv64::splat(V3::X);
/// let c = a.and(b);
/// assert_eq!(c.get(17), V3::X);
/// assert_eq!(a.and(Pv64::splat(V3::Zero)).get(0), V3::Zero);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Pv64 {
    zeros: u64,
    ones: u64,
}

impl Pv64 {
    /// All 64 machines at X.
    pub const ALL_X: Pv64 = Pv64 { zeros: 0, ones: 0 };

    /// Creates a packed value from raw masks.
    ///
    /// # Panics
    ///
    /// Panics if `zeros & ones != 0`.
    pub fn from_masks(zeros: u64, ones: u64) -> Pv64 {
        assert_eq!(zeros & ones, 0, "contradictory packed value");
        Pv64 { zeros, ones }
    }

    /// All 64 machines at the same value.
    pub fn splat(v: V3) -> Pv64 {
        match v {
            V3::Zero => Pv64 { zeros: !0, ones: 0 },
            V3::One => Pv64 { zeros: 0, ones: !0 },
            V3::X => Pv64::ALL_X,
        }
    }

    /// The mask of machines holding 0.
    pub fn zeros(self) -> u64 {
        self.zeros
    }

    /// The mask of machines holding 1.
    pub fn ones(self) -> u64 {
        self.ones
    }

    /// The mask of machines holding a known value.
    pub fn known(self) -> u64 {
        self.zeros | self.ones
    }

    /// The value of machine `lane`.
    ///
    /// `lane` must be `< 64`: there are exactly 64 machines in a word.
    /// A larger lane would shift `1u64` out of range — a panic in debug
    /// builds and a silent wrap to lane `lane % 64` (i.e. the *wrong
    /// machine*) in release builds, so the contract is asserted here.
    pub fn get(self, lane: u32) -> V3 {
        debug_assert!(lane < 64, "Pv64 lane out of range: {lane} >= 64");
        let bit = 1u64 << lane;
        if self.zeros & bit != 0 {
            V3::Zero
        } else if self.ones & bit != 0 {
            V3::One
        } else {
            V3::X
        }
    }

    /// Returns a copy with machine `lane` set to `v`.
    ///
    /// `lane` must be `< 64` — see [`Pv64::get`] for the contract.
    #[must_use]
    pub fn with(self, lane: u32, v: V3) -> Pv64 {
        debug_assert!(lane < 64, "Pv64 lane out of range: {lane} >= 64");
        let bit = 1u64 << lane;
        let mut r = Pv64 {
            zeros: self.zeros & !bit,
            ones: self.ones & !bit,
        };
        match v {
            V3::Zero => r.zeros |= bit,
            V3::One => r.ones |= bit,
            V3::X => {}
        }
        r
    }

    /// Forces the machines in `mask` to the Boolean value `stuck`
    /// (stuck-at injection).
    #[must_use]
    pub fn force(self, mask: u64, stuck: bool) -> Pv64 {
        if stuck {
            Pv64 {
                zeros: self.zeros & !mask,
                ones: self.ones | mask,
            }
        } else {
            Pv64 {
                zeros: self.zeros | mask,
                ones: self.ones & !mask,
            }
        }
    }

    // The logic operations delegate to the dual-rail kernel (`Pv64` is
    // its 64-lane instance), so the workspace has exactly one
    // three-valued truth table.

    /// Lane-wise NOT.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pv64 {
        DualRail::from(self).not().into()
    }

    /// Lane-wise three-valued AND.
    #[must_use]
    pub fn and(self, rhs: Pv64) -> Pv64 {
        DualRail::from(self).and(rhs.into()).into()
    }

    /// Lane-wise three-valued OR.
    #[must_use]
    pub fn or(self, rhs: Pv64) -> Pv64 {
        DualRail::from(self).or(rhs.into()).into()
    }

    /// Lane-wise three-valued XOR.
    #[must_use]
    pub fn xor(self, rhs: Pv64) -> Pv64 {
        DualRail::from(self).xor(rhs.into()).into()
    }

    /// Evaluates a combinational gate kind lane-wise through the
    /// dual-rail kernel.
    ///
    /// Non-combinational kinds ([`GateKind::Input`], [`GateKind::Dff`])
    /// debug-assert and yield all-X in release builds — see
    /// [`kernel::eval_gate`]; use [`Pv64::try_eval`] to handle them as
    /// a typed error.
    pub fn eval(kind: GateKind, inputs: impl IntoIterator<Item = Pv64>) -> Pv64 {
        kernel::eval_gate(kind, inputs.into_iter().map(DualRail::from)).into()
    }

    /// [`Pv64::eval`] returning a typed error for non-combinational
    /// kinds.
    pub fn try_eval(
        kind: GateKind,
        inputs: impl IntoIterator<Item = Pv64>,
    ) -> Result<Pv64, NonCombinational> {
        kernel::try_eval_gate(kind, inputs.into_iter().map(DualRail::from)).map(Pv64::from)
    }
}

impl From<Pv64> for DualRail<u64> {
    fn from(p: Pv64) -> DualRail<u64> {
        DualRail::new(p.zeros, p.ones)
    }
}

impl From<DualRail<u64>> for Pv64 {
    fn from(d: DualRail<u64>) -> Pv64 {
        Pv64 {
            zeros: d.zeros(),
            ones: d.ones(),
        }
    }
}

impl fmt::Debug for Pv64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pv64(zeros={:#x}, ones={:#x})", self.zeros, self.ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pv(rng: &mut StdRng) -> Pv64 {
        let mut p = Pv64::ALL_X;
        for lane in 0..64 {
            let v = match rng.gen_range(0..3) {
                0 => V3::Zero,
                1 => V3::One,
                _ => V3::X,
            };
            p = p.with(lane, v);
        }
        p
    }

    #[test]
    fn splat_get_roundtrip() {
        for v in [V3::Zero, V3::One, V3::X] {
            let p = Pv64::splat(v);
            for lane in [0, 13, 63] {
                assert_eq!(p.get(lane), v);
            }
        }
    }

    #[test]
    fn lanes_agree_with_v3_semantics() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let a = random_pv(&mut rng);
            let b = random_pv(&mut rng);
            for lane in 0..64 {
                let (va, vb) = (a.get(lane), b.get(lane));
                assert_eq!(a.and(b).get(lane), va & vb);
                assert_eq!(a.or(b).get(lane), va | vb);
                assert_eq!(a.xor(b).get(lane), va ^ vb);
                assert_eq!(a.not().get(lane), !va);
            }
        }
    }

    #[test]
    fn force_overrides_everything() {
        let p = Pv64::splat(V3::X).force(0b101, true).force(0b010, false);
        assert_eq!(p.get(0), V3::One);
        assert_eq!(p.get(1), V3::Zero);
        assert_eq!(p.get(2), V3::One);
        assert_eq!(p.get(3), V3::X);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn lane_out_of_range_is_rejected() {
        assert!(std::panic::catch_unwind(|| Pv64::splat(V3::X).get(64)).is_err());
        assert!(std::panic::catch_unwind(|| Pv64::splat(V3::X).with(64, V3::One)).is_err());
    }

    #[test]
    fn invariant_checked() {
        let r = std::panic::catch_unwind(|| Pv64::from_masks(1, 1));
        assert!(r.is_err());
    }

    #[test]
    fn gate_eval_lanes_match_scalar() {
        let mut rng = StdRng::seed_from_u64(5);
        for kind in GateKind::COMBINATIONAL {
            let arity = kind.fixed_arity().unwrap_or(3);
            let ins: Vec<Pv64> = (0..arity).map(|_| random_pv(&mut rng)).collect();
            let out = Pv64::eval(kind, ins.iter().copied());
            for lane in 0..64 {
                let scalar = crate::kernel::eval_v3(kind, ins.iter().map(|p| p.get(lane)));
                assert_eq!(out.get(lane), scalar, "{kind} lane {lane}");
            }
        }
    }

    #[test]
    fn try_eval_rejects_non_combinational() {
        let err = Pv64::try_eval(GateKind::Dff, [Pv64::splat(V3::One)]).unwrap_err();
        assert_eq!(err, NonCombinational(GateKind::Dff));
    }
}
