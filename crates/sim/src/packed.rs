//! Width-generic packed three-valued values.
//!
//! [`Pv<W>`](Pv) packs `W::LANES` three-valued logic values into one
//! dual-rail pair of lane masks; [`Pv64`] is the historical 64-lane
//! instance (`W = u64`) and [`Pv256`] the 256-lane instance behind the
//! pipeline's default packed width.

use std::fmt;

use fscan_netlist::GateKind;

use crate::kernel::{self, DualRail, NonCombinational, Rail, R256};
use crate::value::V3;

/// `W::LANES` three-valued logic values packed into two lane masks.
///
/// Lane `i` of `zeros`/`ones` describes machine `i`: `zeros` set means
/// 0, `ones` set means 1, neither means X. The invariant
/// `zeros & ones == EMPTY` is maintained by all constructors and
/// operations. All lane-indexed accessors are width-checked in every
/// build profile: an out-of-range lane panics instead of silently
/// wrapping onto the wrong machine.
///
/// # Examples
///
/// ```
/// use fscan_sim::{Pv64, Pv256, V3};
///
/// let a = Pv64::splat(V3::One);
/// let b = Pv64::splat(V3::X);
/// let c = a.and(b);
/// assert_eq!(c.get(17), V3::X);
/// assert_eq!(a.and(Pv64::splat(V3::Zero)).get(0), V3::Zero);
///
/// let wide = Pv256::splat(V3::Zero).with(200, V3::One);
/// assert_eq!(wide.get(200), V3::One);
/// assert_eq!(wide.get(199), V3::Zero);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Pv<W: Rail> {
    zeros: W,
    ones: W,
}

/// The 64-lane packed value (two machine words).
pub type Pv64 = Pv<u64>;

/// The 256-lane packed value (four 64-bit words per rail).
pub type Pv256 = Pv<R256>;

impl<W: Rail> Default for Pv<W> {
    fn default() -> Pv<W> {
        Pv::ALL_X
    }
}

impl<W: Rail> Pv<W> {
    /// All machines at X.
    pub const ALL_X: Pv<W> = Pv {
        zeros: W::EMPTY,
        ones: W::EMPTY,
    };

    /// Creates a packed value from raw masks.
    ///
    /// # Panics
    ///
    /// Panics if `zeros & ones != EMPTY`.
    pub fn from_masks(zeros: W, ones: W) -> Pv<W> {
        assert!((zeros & ones).is_empty(), "contradictory packed value");
        Pv { zeros, ones }
    }

    /// All machines at the same value.
    pub fn splat(v: V3) -> Pv<W> {
        match v {
            V3::Zero => Pv {
                zeros: W::FULL,
                ones: W::EMPTY,
            },
            V3::One => Pv {
                zeros: W::EMPTY,
                ones: W::FULL,
            },
            V3::X => Pv::ALL_X,
        }
    }

    /// The mask of machines holding 0.
    pub fn zeros(self) -> W {
        self.zeros
    }

    /// The mask of machines holding 1.
    pub fn ones(self) -> W {
        self.ones
    }

    /// The mask of machines holding a known value.
    pub fn known(self) -> W {
        self.zeros | self.ones
    }

    /// The value of machine `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= W::LANES` — in release builds too. The old
    /// `1u64 << lane` read the *wrong machine* (`lane % 64`) on an
    /// out-of-range index in release builds; [`Rail::lane_bit`] is the
    /// checked replacement.
    pub fn get(self, lane: u32) -> V3 {
        let bit = W::lane_bit(lane);
        if !(self.zeros & bit).is_empty() {
            V3::Zero
        } else if !(self.ones & bit).is_empty() {
            V3::One
        } else {
            V3::X
        }
    }

    /// Returns a copy with machine `lane` set to `v`.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= W::LANES` — see [`Pv::get`].
    #[must_use]
    pub fn with(self, lane: u32, v: V3) -> Pv<W> {
        let bit = W::lane_bit(lane);
        let mut r = Pv {
            zeros: self.zeros & !bit,
            ones: self.ones & !bit,
        };
        match v {
            V3::Zero => r.zeros |= bit,
            V3::One => r.ones |= bit,
            V3::X => {}
        }
        r
    }

    /// Forces the machines in `mask` to the Boolean value `stuck`
    /// (stuck-at injection).
    #[must_use]
    pub fn force(self, mask: W, stuck: bool) -> Pv<W> {
        if stuck {
            Pv {
                zeros: self.zeros & !mask,
                ones: self.ones | mask,
            }
        } else {
            Pv {
                zeros: self.zeros | mask,
                ones: self.ones & !mask,
            }
        }
    }

    // The logic operations delegate to the dual-rail kernel (`Pv<W>` is
    // its `W`-lane instance), so the workspace has exactly one
    // three-valued truth table.

    /// Lane-wise NOT.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pv<W> {
        DualRail::from(self).not().into()
    }

    /// Lane-wise three-valued AND.
    #[must_use]
    pub fn and(self, rhs: Pv<W>) -> Pv<W> {
        DualRail::from(self).and(rhs.into()).into()
    }

    /// Lane-wise three-valued OR.
    #[must_use]
    pub fn or(self, rhs: Pv<W>) -> Pv<W> {
        DualRail::from(self).or(rhs.into()).into()
    }

    /// Lane-wise three-valued XOR.
    #[must_use]
    pub fn xor(self, rhs: Pv<W>) -> Pv<W> {
        DualRail::from(self).xor(rhs.into()).into()
    }

    /// Evaluates a combinational gate kind lane-wise through the
    /// dual-rail kernel.
    ///
    /// Non-combinational kinds ([`GateKind::Input`], [`GateKind::Dff`])
    /// debug-assert and yield all-X in release builds — see
    /// [`kernel::eval_gate`]; use [`Pv::try_eval`] to handle them as a
    /// typed error.
    pub fn eval(kind: GateKind, inputs: impl IntoIterator<Item = Pv<W>>) -> Pv<W> {
        kernel::eval_gate(kind, inputs.into_iter().map(DualRail::from)).into()
    }

    /// [`Pv::eval`] returning a typed error for non-combinational
    /// kinds.
    pub fn try_eval(
        kind: GateKind,
        inputs: impl IntoIterator<Item = Pv<W>>,
    ) -> Result<Pv<W>, NonCombinational> {
        kernel::try_eval_gate(kind, inputs.into_iter().map(DualRail::from)).map(Pv::from)
    }
}

impl<W: Rail> From<Pv<W>> for DualRail<W> {
    fn from(p: Pv<W>) -> DualRail<W> {
        DualRail::new(p.zeros, p.ones)
    }
}

impl<W: Rail> From<DualRail<W>> for Pv<W> {
    fn from(d: DualRail<W>) -> Pv<W> {
        Pv {
            zeros: d.zeros(),
            ones: d.ones(),
        }
    }
}

impl<W: Rail> fmt::Debug for Pv<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pv<{} lanes>(zeros={:?}, ones={:?})",
            W::LANES,
            self.zeros,
            self.ones
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_pv<W: Rail>(rng: &mut StdRng) -> Pv<W> {
        let mut p = Pv::ALL_X;
        for lane in 0..W::LANES {
            let v = match rng.gen_range(0..3) {
                0 => V3::Zero,
                1 => V3::One,
                _ => V3::X,
            };
            p = p.with(lane, v);
        }
        p
    }

    #[test]
    fn splat_get_roundtrip() {
        for v in [V3::Zero, V3::One, V3::X] {
            let p = Pv64::splat(v);
            for lane in [0, 13, 63] {
                assert_eq!(p.get(lane), v);
            }
            let w = Pv256::splat(v);
            for lane in [0, 64, 129, 255] {
                assert_eq!(w.get(lane), v);
            }
        }
    }

    fn lanes_agree_at<W: Rail>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let a = random_pv::<W>(&mut rng);
            let b = random_pv::<W>(&mut rng);
            for lane in 0..W::LANES {
                let (va, vb) = (a.get(lane), b.get(lane));
                assert_eq!(a.and(b).get(lane), va & vb);
                assert_eq!(a.or(b).get(lane), va | vb);
                assert_eq!(a.xor(b).get(lane), va ^ vb);
                assert_eq!(a.not().get(lane), !va);
            }
        }
    }

    #[test]
    fn lanes_agree_with_v3_semantics() {
        lanes_agree_at::<u64>(11);
        lanes_agree_at::<R256>(12);
    }

    #[test]
    fn force_overrides_everything() {
        let p = Pv64::splat(V3::X).force(0b101, true).force(0b010, false);
        assert_eq!(p.get(0), V3::One);
        assert_eq!(p.get(1), V3::Zero);
        assert_eq!(p.get(2), V3::One);
        assert_eq!(p.get(3), V3::X);
        let w = Pv256::splat(V3::X)
            .force(R256::lane_bit(190), true)
            .force(R256::lane_bit(70), false);
        assert_eq!(w.get(190), V3::One);
        assert_eq!(w.get(70), V3::Zero);
        assert_eq!(w.get(71), V3::X);
    }

    #[test]
    fn lane_out_of_range_is_rejected() {
        // A hard (release-mode) check at every width: the old
        // debug_assert let `1u64 << lane` wrap in release builds and
        // read lane `lane % 64` — the wrong machine.
        assert!(std::panic::catch_unwind(|| Pv64::splat(V3::X).get(64)).is_err());
        assert!(std::panic::catch_unwind(|| Pv64::splat(V3::X).with(64, V3::One)).is_err());
        assert!(std::panic::catch_unwind(|| Pv256::splat(V3::X).get(256)).is_err());
        assert!(std::panic::catch_unwind(|| Pv256::splat(V3::X).with(256, V3::One)).is_err());
    }

    #[test]
    fn invariant_checked() {
        let r = std::panic::catch_unwind(|| Pv64::from_masks(1, 1));
        assert!(r.is_err());
        let bad = R256::lane_bit(100);
        let r = std::panic::catch_unwind(|| Pv256::from_masks(bad, bad));
        assert!(r.is_err());
    }

    fn gate_eval_matches_scalar_at<W: Rail>(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in GateKind::COMBINATIONAL {
            let arity = kind.fixed_arity().unwrap_or(3);
            let ins: Vec<Pv<W>> = (0..arity).map(|_| random_pv(&mut rng)).collect();
            let out = Pv::eval(kind, ins.iter().copied());
            for lane in 0..W::LANES {
                let scalar = crate::kernel::eval_v3(kind, ins.iter().map(|p| p.get(lane)));
                assert_eq!(out.get(lane), scalar, "{kind} lane {lane}");
            }
        }
    }

    #[test]
    fn gate_eval_lanes_match_scalar() {
        gate_eval_matches_scalar_at::<u64>(5);
        gate_eval_matches_scalar_at::<R256>(6);
    }

    #[test]
    fn try_eval_rejects_non_combinational() {
        let err = Pv64::try_eval(GateKind::Dff, [Pv64::splat(V3::One)]).unwrap_err();
        assert_eq!(err, NonCombinational(GateKind::Dff));
    }
}
