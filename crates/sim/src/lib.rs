//! Logic and fault simulation for gate-level sequential netlists.
//!
//! Everything the DATE'98 functional scan chain testing flow needs to
//! *observe* circuits lives here:
//!
//! * [`kernel`] — the single dual-rail three-valued gate-evaluation
//!   kernel, lane-generic over width (every other engine delegates to
//!   it);
//! * [`V3`] — three-valued logic (0, 1, X), the kernel's 1-lane
//!   instance;
//! * [`Pv<W>`](Pv) — `W::LANES` three-valued machines packed into one
//!   dual-rail pair ([`Pv64`] and [`Pv256`] are the 64- and 256-lane
//!   instances), used by the parallel fault simulator;
//! * [`CombEvaluator`] — levelized combinational evaluation with
//!   stuck-at fault injection;
//! * [`SeqSim`] — cycle-accurate sequential simulation and serial
//!   sequential fault simulation with X-aware detection (the reference
//!   oracle every faster engine is checked against);
//! * [`GoodTrace`] — the fault-free machine simulated once per vector
//!   sequence, event-driven, and shared read-only by every fault batch;
//! * [`ParallelFaultSim`] — `W::LANES`-fault-per-pass sequential fault
//!   simulation (width-generic; [`LaneWidth`] is the runtime switch,
//!   256 lanes the default), event-driven and restricted to each fault
//!   word's fanout cone, with [`SimScratch`] per-thread arenas reset
//!   (not reallocated) between fault words;
//! * [`shard_map`] — scoped-thread work sharding with a deterministic
//!   in-order merge, used by every fault-parallel pipeline stage;
//! * [`WorkCounters`] — exact, machine-independent work counters
//!   (bit-identical for every thread count) that the pipeline stages
//!   aggregate for the BENCH trajectory — and [`StageMetrics`], the
//!   per-stage `cpu`/`shards`/`counters` cost triple;
//! * [`ImplicationEngine`] / [`PackedImplicationEngine`] — the 3-valued
//!   forward implication cone of a fault under fixed input constraints
//!   (paper, Section 3/Figure 3), scalar and packed at any rail width
//!   ([`ImplicationEngine64`] is the 64-lane alias).
//!
//! # Examples
//!
//! ```
//! use fscan_netlist::{Circuit, GateKind};
//! use fscan_sim::{CombEvaluator, V3};
//!
//! let mut c = Circuit::new("t");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::Nand, vec![a, b], "g");
//! c.mark_output(g);
//! let eval = CombEvaluator::new(&c);
//! let mut values = vec![V3::X; c.num_nodes()];
//! values[a.index()] = V3::One;
//! values[b.index()] = V3::Zero;
//! eval.eval(&c, &mut values);
//! assert_eq!(values[g.index()], V3::One);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comb;
mod counters;
mod event;
mod implication;
pub mod kernel;
mod mem;
mod pack;
mod packed;
mod parallel;
pub mod pool;
mod scratch;
mod seq;
mod value;
mod width;

pub use comb::CombEvaluator;
pub use counters::{StageMetrics, WorkCounters};
pub use event::GoodTrace;
pub use implication::{
    ImplicationEngine, ImplicationEngine64, NetChange, PackedChange, PackedImplicationEngine,
};
pub use mem::{ConeHist, MemMetrics, CONE_HIST_BUCKETS};
pub use pack::{pack_order, pack_order64};
pub use packed::{Pv, Pv256, Pv64};
pub use parallel::ParallelFaultSim;
pub use pool::{resolve_threads, shard_map, shard_map_counted, ShardStats};
pub use scratch::SimScratch;
pub use seq::{detects, SeqSim, Trace};
pub use value::V3;
pub use width::{LaneWidth, ParseLaneWidthError};
