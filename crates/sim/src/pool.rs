//! Work-sharded scoped thread pool for fault-parallel stages.
//!
//! Every step of the functional scan chain testing flow is
//! embarrassingly fault-parallel: classification, alternating-sequence
//! fault simulation, per-window confirmation simulation, and the
//! sequential-ATPG attempts all map an independent computation over a
//! fault list. [`shard_map`] runs exactly that shape on `std::thread`
//! scoped workers:
//!
//! * the item list is cut into fixed chunks and published through an
//!   atomic cursor (a chunked work queue — workers self-balance);
//! * each worker owns its own mutable state (`init()` per worker — e.g.
//!   a simulator or classifier over the shared immutable design);
//! * results are merged back **in input order**, so the output is
//!   bit-identical no matter how many workers ran or how the chunks
//!   were interleaved.
//!
//! No extra crates: the pool is `std::thread::scope` plus one
//! `AtomicUsize`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::counters::WorkCounters;

/// Resolves a configured worker count: `0` means one worker per
/// available hardware thread.
///
/// # Examples
///
/// ```
/// use fscan_sim::pool::resolve_threads;
///
/// assert_eq!(resolve_threads(3), 3);
/// assert!(resolve_threads(0) >= 1);
/// ```
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Per-stage sharding statistics: how many workers ran and how many
/// items each of them processed.
///
/// Wall-clock time lives in the stage reports' existing `cpu` fields;
/// this records only the work distribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Workers the stage ran with.
    pub threads: usize,
    /// Items processed per worker (length = `threads`; may contain
    /// zeros when there were fewer chunks than workers).
    pub per_worker: Vec<usize>,
}

impl ShardStats {
    /// Stats for a serially-executed stage over `items` items.
    pub fn serial(items: usize) -> ShardStats {
        ShardStats {
            threads: 1,
            per_worker: vec![items],
        }
    }

    /// Total items processed.
    pub fn items(&self) -> usize {
        self.per_worker.iter().sum()
    }

    /// Folds another invocation's stats into this one (stages that call
    /// [`shard_map`] repeatedly — e.g. once per test window — aggregate
    /// their distribution here).
    pub fn absorb(&mut self, other: &ShardStats) {
        self.threads = self.threads.max(other.threads);
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), 0);
        }
        for (mine, theirs) in self.per_worker.iter_mut().zip(other.per_worker.iter()) {
            *mine += theirs;
        }
    }
}

impl std::fmt::Display for ShardStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}w [", self.threads)?;
        for (i, n) in self.per_worker.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{n}")?;
        }
        f.write_str("]")
    }
}

/// Maps `f` over `items` in chunks across `threads` scoped workers and
/// returns the per-item results **in input order**.
///
/// `f` receives the worker's own state (built once per worker by
/// `init`), the chunk's base index into `items`, and the chunk slice;
/// it must return one result per chunk item. Chunks are at least
/// `min_chunk` items (the fault simulator wants multiples of its
/// packed word's lane count, classification is happy with anything).
///
/// Determinism: results depend only on `(index, item)`, never on the
/// worker that ran the chunk or the interleaving, so the merged output
/// is identical for every thread count — the property the pipeline's
/// bit-identical-reports guarantee rests on.
///
/// `threads == 0` resolves to the hardware thread count. A single
/// worker (or a single chunk) runs inline without spawning.
///
/// # Panics
///
/// Panics if `f` returns a result vector whose length differs from its
/// chunk, or if a worker panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// use fscan_sim::pool::shard_map;
///
/// let items: Vec<u32> = (0..100).collect();
/// let (doubled, stats) = shard_map(4, 8, &items, || (), |_, _, chunk| {
///     chunk.iter().map(|&x| x * 2).collect()
/// });
/// assert_eq!(doubled[7], 14);
/// assert_eq!(stats.items(), 100);
/// ```
pub fn shard_map<T, R, S, I, F>(
    threads: usize,
    min_chunk: usize,
    items: &[T],
    init: I,
    f: F,
) -> (Vec<R>, ShardStats)
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &[T]) -> Vec<R> + Sync,
{
    let (out, stats, _) = shard_map_counted(threads, min_chunk, items, init, |state, base, chunk| {
        (f(state, base, chunk), WorkCounters::ZERO)
    });
    (out, stats)
}

/// [`shard_map`] that additionally harvests [`WorkCounters`] from every
/// chunk and returns their sum.
///
/// `f` returns `(results, counters)` per chunk. Because chunk geometry
/// depends on the thread count, the counters a chunk reports must be an
/// unordered sum of per-item (or, with `min_chunk` = the rail's lane
/// count, per-packed-word) contributions; `u64` addition then makes the
/// total identical for every thread count — the determinism the
/// pipeline's BENCH counters rely on.
///
/// # Panics
///
/// Same contract as [`shard_map`].
///
/// # Examples
///
/// ```
/// use fscan_sim::pool::shard_map_counted;
/// use fscan_sim::WorkCounters;
///
/// let items: Vec<u64> = (0..100).collect();
/// let (out, _, counters) = shard_map_counted(4, 8, &items, || (), |_, _, chunk| {
///     let work = WorkCounters {
///         gate_evals: chunk.iter().sum(),
///         ..WorkCounters::ZERO
///     };
///     (chunk.to_vec(), work)
/// });
/// assert_eq!(out.len(), 100);
/// assert_eq!(counters.gate_evals, (0..100).sum::<u64>());
/// ```
pub fn shard_map_counted<T, R, S, I, F>(
    threads: usize,
    min_chunk: usize,
    items: &[T],
    init: I,
    f: F,
) -> (Vec<R>, ShardStats, WorkCounters)
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &[T]) -> (Vec<R>, WorkCounters) + Sync,
{
    let threads = resolve_threads(threads);
    let min_chunk = min_chunk.max(1);
    if items.is_empty() {
        // Report the *resolved* worker count: a hard-coded `threads: 1`
        // here made `ShardStats::absorb` (and the per-stage reports)
        // understate worker counts for stages that ever saw an empty
        // item list.
        return (
            Vec::new(),
            ShardStats {
                threads,
                per_worker: vec![0; threads],
            },
            WorkCounters::ZERO,
        );
    }
    // Fixed chunk geometry: ~4 chunks per worker for load balance, but
    // never below `min_chunk`. Chunk boundaries influence only the work
    // distribution, never the per-item results.
    let chunk = items.len().div_ceil(threads * 4).max(min_chunk);
    let chunk = if min_chunk > 1 {
        chunk.div_ceil(min_chunk) * min_chunk
    } else {
        chunk
    };
    let num_chunks = items.len().div_ceil(chunk);
    let workers = threads.min(num_chunks);

    if workers <= 1 {
        let mut state = init();
        let mut out = Vec::with_capacity(items.len());
        let mut counters = WorkCounters::ZERO;
        for (ci, slice) in items.chunks(chunk).enumerate() {
            let (part, work) = f(&mut state, ci * chunk, slice);
            assert_eq!(part.len(), slice.len(), "shard_map: result/chunk mismatch");
            out.extend(part);
            counters += work;
        }
        return (out, ShardStats::serial(items.len()), counters);
    }

    // Per worker: items processed, accumulated counters, plus the
    // (chunk index, results) pairs it pulled off the queue.
    type WorkerHarvest<R> = (usize, WorkCounters, Vec<(usize, Vec<R>)>);
    let cursor = AtomicUsize::new(0);
    let mut harvest: Vec<WorkerHarvest<R>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut parts: Vec<(usize, Vec<R>)> = Vec::new();
                    let mut processed = 0usize;
                    let mut counters = WorkCounters::ZERO;
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= num_chunks {
                            break;
                        }
                        let base = ci * chunk;
                        let slice = &items[base..(base + chunk).min(items.len())];
                        let (part, work) = f(&mut state, base, slice);
                        assert_eq!(part.len(), slice.len(), "shard_map: result/chunk mismatch");
                        processed += slice.len();
                        counters += work;
                        parts.push((ci, part));
                    }
                    (processed, counters, parts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard_map worker panicked"))
            .collect()
    });

    let per_worker: Vec<usize> = harvest.iter().map(|(n, _, _)| *n).collect();
    let counters: WorkCounters = harvest.iter().map(|(_, c, _)| *c).sum();
    let mut slots: Vec<Option<Vec<R>>> = (0..num_chunks).map(|_| None).collect();
    for (_, _, parts) in harvest.iter_mut() {
        for (ci, part) in parts.drain(..) {
            slots[ci] = Some(part);
        }
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        out.extend(slot.expect("shard_map: missing chunk"));
    }
    (
        out,
        ShardStats {
            threads: workers,
            per_worker,
        },
        counters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_in_input_order_for_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7] {
            let (got, stats) = shard_map(threads, 1, &items, || (), |_, base, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(k, &x)| {
                        assert_eq!(base + k, x, "base index must match item position");
                        x * 3 + 1
                    })
                    .collect()
            });
            assert_eq!(got, expect, "threads = {threads}");
            assert_eq!(stats.items(), items.len());
            assert!(stats.threads <= threads.max(1));
        }
    }

    #[test]
    fn worker_state_is_private_per_worker() {
        // Each worker counts into its own state; the sum over workers
        // must equal the item count (no sharing, no loss).
        let items: Vec<u8> = vec![0; 500];
        let (counts, _) = shard_map(
            4,
            1,
            &items,
            || 0usize,
            |seen, _, chunk| {
                *seen += chunk.len();
                chunk.iter().map(|_| *seen).collect()
            },
        );
        // The per-item value is the worker's running count — meaningless
        // globally, but every element must be > 0 (state really flowed).
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn respects_min_chunk_multiples() {
        let items: Vec<u32> = (0..300).collect();
        let (got, _) = shard_map(8, 64, &items, || (), |_, base, chunk| {
            // Every chunk except the last must start at a multiple of 64
            // and span a multiple of 64.
            assert_eq!(base % 64, 0);
            if base + chunk.len() < items.len() {
                assert_eq!(chunk.len() % 64, 0);
            }
            chunk.to_vec()
        });
        assert_eq!(got, items);
    }

    #[test]
    fn counted_totals_are_thread_invariant() {
        // Per-item contributions summed per chunk: the totals must be
        // bit-identical no matter how the chunks were cut or interleaved.
        let items: Vec<u64> = (0..513).collect();
        let expect = WorkCounters {
            gate_evals: items.iter().map(|&x| x * x).sum(),
            lane_cycles: items.len() as u64,
            ..WorkCounters::ZERO
        };
        for threads in [1, 2, 4, 7] {
            let (out, _, counters) = shard_map_counted(threads, 1, &items, || (), |_, _, chunk| {
                let work = WorkCounters {
                    gate_evals: chunk.iter().map(|&x| x * x).sum(),
                    lane_cycles: chunk.len() as u64,
                    ..WorkCounters::ZERO
                };
                (chunk.to_vec(), work)
            });
            assert_eq!(out, items, "threads = {threads}");
            assert_eq!(counters, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input() {
        let (got, stats) = shard_map(4, 64, &[] as &[u32], || (), |_, _, c| c.to_vec());
        assert!(got.is_empty());
        assert_eq!(stats.items(), 0);
        // The empty-input early return must report the resolved worker
        // count, not a hard-coded 1.
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.per_worker, vec![0; 4]);
        let (_, auto_stats) = shard_map(0, 1, &[] as &[u32], || (), |_, _, c| c.to_vec());
        assert_eq!(auto_stats.threads, resolve_threads(0));
    }

    #[test]
    fn absorb_accumulates() {
        let mut total = ShardStats::default();
        total.absorb(&ShardStats {
            threads: 2,
            per_worker: vec![10, 5],
        });
        total.absorb(&ShardStats {
            threads: 4,
            per_worker: vec![1, 2, 3, 4],
        });
        assert_eq!(total.threads, 4);
        assert_eq!(total.per_worker, vec![11, 7, 3, 4]);
        assert_eq!(total.items(), 25);
        assert_eq!(total.to_string(), "4w [11 7 3 4]");
    }

    #[test]
    fn absorb_covers_empty_calls() {
        // A stage that fires shard_map with an empty list (e.g. a window
        // with nothing left pending) must still absorb the requested
        // worker count without distorting the item distribution.
        let mut total = ShardStats::default();
        let (_, empty_stats, _) =
            shard_map_counted(4, 64, &[] as &[u32], || (), |_, _, c| (c.to_vec(), WorkCounters::ZERO));
        total.absorb(&empty_stats);
        assert_eq!(total.threads, 4);
        assert_eq!(total.items(), 0);
        let items: Vec<u32> = (0..100).collect();
        let (_, full_stats, _) =
            shard_map_counted(2, 1, &items, || (), |_, _, c| (c.to_vec(), WorkCounters::ZERO));
        total.absorb(&full_stats);
        assert_eq!(total.threads, 4, "empty call's worker count sticks");
        assert_eq!(total.items(), 100);
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }
}
