//! Deterministic work counters for the pipeline.
//!
//! Wall-clock `Duration`s depend on the machine, the load and the
//! thread count; the counters here count *work items* instead: gate
//! evaluations, lane·cycles, implication events, ATPG decisions. Each
//! contribution is a pure function of the item being processed — never
//! of the worker that processed it or of the chunk geometry — so the
//! per-stage sums are **bit-identical for every thread count**. That
//! makes them usable both as machine-independent perf oracles (the
//! BENCH trajectory) and as determinism regression tests.

use std::fmt;
use std::ops::{Add, AddAssign};
use std::time::Duration;

use crate::mem::MemMetrics;
use crate::pool::ShardStats;

/// Exact, machine-independent work counters.
///
/// Semantics of the individual fields:
///
/// * `gate_evals` — gate-evaluation operations executed. One scalar
///   [`V3`](crate::V3) gate evaluation counts 1; one packed
///   [`Pv<W>`](crate::Pv) gate evaluation also counts 1 (it is one
///   operation, covering up to `W::LANES` fault lanes — 64 on the
///   `u64` rail, 256 on [`R256`](crate::kernel::R256); `lane_cycles`
///   captures the logical coverage). The event-driven simulators count
///   only gates *actually re-evaluated* (one full seed pass at cycle
///   0, changed gates afterwards), so this measures incremental work,
///   not `cycles × gates`.
/// * `lane_cycles` — Σ over simulated cycles of the number of active
///   fault lanes (a serial simulation contributes 1 per cycle).
/// * `implication_events` — nodes popped and re-evaluated by
///   [`ImplicationEngine::run`](crate::ImplicationEngine::run).
/// * `cone_nets` — nets a fault can structurally reach: sizes of the
///   forward-implication cones, plus the union fault-cone size of every
///   packed fault word the parallel simulator restricted itself to
///   (tallied per lane, so the total is identical at every rail
///   width).
/// * `podem_decisions` — PODEM objective decisions taken (steps that
///   were not reversals).
/// * `podem_backtracks` — PODEM reversals of a previous decision.
/// * `podem_aborts` — PODEM/SeqAtpg runs that hit a backtrack or step
///   budget without a verdict.
/// * `windows_formed` — candidate test windows (scan-in / apply /
///   scan-out sequences) assembled by the core phases.
/// * `early_exits` — short-circuits taken: a packed fault word whose
///   faults were all detected before the vector set was exhausted, or a
///   phase skipping a target already covered by fault dropping.
/// * `topology_builds` — [`CompiledTopology`](fscan_netlist::CompiledTopology)
///   compilations a stage triggered. A full pipeline run over one design
///   reports exactly 1 (the compile-once invariant).
/// * `scratch_reuses` — packed fault words served through a reusable
///   [`SimScratch`](crate::SimScratch) arena instead of freshly
///   allocated buffers (one per word, so thread-count invariant; wider
///   rails serve fewer, larger words).
/// * `implication_words` — packed words processed by
///   [`PackedImplicationEngine`](crate::PackedImplicationEngine) (one
///   per `run_word` call, so thread-count invariant; the most direct
///   measure of wide-rail amortization).
/// * `kernel_gate_evals` — packed dual-rail kernel gate evaluations at
///   any rail width. A subset of `gate_evals`: every packed evaluation
///   counts once in both, so `gate_evals - kernel_gate_evals` is the
///   scalar share.
/// * `faults_dropped` — pending ATPG targets resolved by the global
///   packed drop simulation of a vector that was generated for a
///   *different* target (the classic fault-dropping win; a target
///   detected by its own vector does not count).
/// * `vectors_compacted` — tests removed from a `TestProgram` by
///   reverse-order static compaction.
/// * `podem_shards` — sharded PODEM batch rounds dispatched by the
///   comb phase (one per `shard_map` round, independent of the
///   thread count that served it).
/// * `cones_invalidated` — faults an incremental rerun
///   ([`PipelineSession::rerun`](https://docs.rs/fscan)) had to
///   re-enqueue because their detection cones intersect the netlist
///   delta's dirty set (includes faults new to the patched universe).
/// * `verdicts_reused` — per-fault verdicts an incremental rerun
///   carried forward unchanged from the prior report instead of
///   recomputing (classification verdicts, alternating detections, and
///   whole-stage reuses booked per fault).
/// * `trace_cycles_reused` — good-trace cycles
///   [`GoodTrace::replay_from`](crate::GoodTrace::replay_from) seeded
///   from a prior run's trace instead of simulating from scratch.
///
/// All fields are `u64` and every aggregation is an unordered sum, so
/// merging in any order yields the same totals.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Gate-evaluation operations executed (scalar or packed).
    pub gate_evals: u64,
    /// Σ active fault lanes over simulated cycles.
    pub lane_cycles: u64,
    /// Nodes re-evaluated during forward implication.
    pub implication_events: u64,
    /// Total nets changed across all implication cones.
    pub cone_nets: u64,
    /// PODEM objective decisions.
    pub podem_decisions: u64,
    /// PODEM backtracks (decision reversals).
    pub podem_backtracks: u64,
    /// ATPG runs aborted on a budget.
    pub podem_aborts: u64,
    /// Candidate test windows assembled.
    pub windows_formed: u64,
    /// Early exits taken (word fully detected, target already dropped).
    pub early_exits: u64,
    /// Circuit topology compilations triggered.
    pub topology_builds: u64,
    /// Packed fault words served by a reusable scratch arena.
    pub scratch_reuses: u64,
    /// Packed implication words processed.
    pub implication_words: u64,
    /// Packed dual-rail kernel gate evaluations (subset of `gate_evals`).
    pub kernel_gate_evals: u64,
    /// Pending targets resolved by a vector generated for another target.
    pub faults_dropped: u64,
    /// Tests removed by reverse-order static compaction.
    pub vectors_compacted: u64,
    /// Sharded PODEM batch rounds dispatched.
    pub podem_shards: u64,
    /// Faults re-enqueued by an incremental rerun (dirty cones).
    pub cones_invalidated: u64,
    /// Per-fault verdicts carried forward by an incremental rerun.
    pub verdicts_reused: u64,
    /// Good-trace cycles replayed from a prior run's trace.
    pub trace_cycles_reused: u64,
}

impl WorkCounters {
    /// The all-zero counter set.
    pub const ZERO: WorkCounters = WorkCounters {
        gate_evals: 0,
        lane_cycles: 0,
        implication_events: 0,
        cone_nets: 0,
        podem_decisions: 0,
        podem_backtracks: 0,
        podem_aborts: 0,
        windows_formed: 0,
        early_exits: 0,
        topology_builds: 0,
        scratch_reuses: 0,
        implication_words: 0,
        kernel_gate_evals: 0,
        faults_dropped: 0,
        vectors_compacted: 0,
        podem_shards: 0,
        cones_invalidated: 0,
        verdicts_reused: 0,
        trace_cycles_reused: 0,
    };

    /// Adds `other` into `self` field-wise.
    pub fn merge(&mut self, other: &WorkCounters) {
        *self += *other;
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == WorkCounters::ZERO
    }

    /// The counters as `(name, value)` pairs in a fixed order —
    /// the single source of truth for JSON emission and display.
    pub fn fields(&self) -> [(&'static str, u64); 19] {
        [
            ("gate_evals", self.gate_evals),
            ("lane_cycles", self.lane_cycles),
            ("implication_events", self.implication_events),
            ("cone_nets", self.cone_nets),
            ("podem_decisions", self.podem_decisions),
            ("podem_backtracks", self.podem_backtracks),
            ("podem_aborts", self.podem_aborts),
            ("windows_formed", self.windows_formed),
            ("early_exits", self.early_exits),
            ("topology_builds", self.topology_builds),
            ("scratch_reuses", self.scratch_reuses),
            ("implication_words", self.implication_words),
            ("kernel_gate_evals", self.kernel_gate_evals),
            ("faults_dropped", self.faults_dropped),
            ("vectors_compacted", self.vectors_compacted),
            ("podem_shards", self.podem_shards),
            ("cones_invalidated", self.cones_invalidated),
            ("verdicts_reused", self.verdicts_reused),
            ("trace_cycles_reused", self.trace_cycles_reused),
        ]
    }
}

/// The cost record every pipeline stage reports: wall-clock time, work
/// distribution across shard workers, deterministic work counters and
/// memory accounting.
///
/// `cpu` depends on the machine and thread count; `shards` on the
/// thread count; `counters` on neither — stripping the first two from a
/// report leaves thread-invariant output (the property the BENCH
/// trajectory and CI determinism check rely on). `mem` is mixed: its
/// `arena_bytes` and `cone_hist` are deterministic, while `peak_bytes`
/// and `reallocs` follow the wall-clock rules (allocator-observed,
/// stripped from determinism diffs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Wall-clock time the stage took.
    pub cpu: Duration,
    /// How the stage's items were distributed over workers.
    pub shards: ShardStats,
    /// Deterministic work counters (bit-identical across thread counts).
    pub counters: WorkCounters,
    /// Memory accounting (arena footprint, cone histogram, allocator
    /// peaks when a tracking allocator is installed).
    pub mem: MemMetrics,
}

impl StageMetrics {
    /// Assembles the record with zeroed memory accounting; stages fill
    /// [`mem`](Self::mem) in afterwards.
    pub fn new(cpu: Duration, shards: ShardStats, counters: WorkCounters) -> StageMetrics {
        StageMetrics {
            cpu,
            shards,
            counters,
            mem: MemMetrics::ZERO,
        }
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, rhs: WorkCounters) {
        self.gate_evals += rhs.gate_evals;
        self.lane_cycles += rhs.lane_cycles;
        self.implication_events += rhs.implication_events;
        self.cone_nets += rhs.cone_nets;
        self.podem_decisions += rhs.podem_decisions;
        self.podem_backtracks += rhs.podem_backtracks;
        self.podem_aborts += rhs.podem_aborts;
        self.windows_formed += rhs.windows_formed;
        self.early_exits += rhs.early_exits;
        self.topology_builds += rhs.topology_builds;
        self.scratch_reuses += rhs.scratch_reuses;
        self.implication_words += rhs.implication_words;
        self.kernel_gate_evals += rhs.kernel_gate_evals;
        self.faults_dropped += rhs.faults_dropped;
        self.vectors_compacted += rhs.vectors_compacted;
        self.podem_shards += rhs.podem_shards;
        self.cones_invalidated += rhs.cones_invalidated;
        self.verdicts_reused += rhs.verdicts_reused;
        self.trace_cycles_reused += rhs.trace_cycles_reused;
    }
}

impl Add for WorkCounters {
    type Output = WorkCounters;

    fn add(mut self, rhs: WorkCounters) -> WorkCounters {
        self += rhs;
        self
    }
}

impl std::iter::Sum for WorkCounters {
    fn sum<I: Iterator<Item = WorkCounters>>(iter: I) -> WorkCounters {
        iter.fold(WorkCounters::ZERO, Add::add)
    }
}

impl fmt::Display for WorkCounters {
    /// Compact `name=value` rendering of the non-zero counters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, value) in self.fields() {
            if value == 0 {
                continue;
            }
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{name}={value}")?;
            first = false;
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_fieldwise_sum() {
        let a = WorkCounters {
            gate_evals: 3,
            lane_cycles: 5,
            windows_formed: 1,
            ..WorkCounters::ZERO
        };
        let b = WorkCounters {
            gate_evals: 7,
            podem_aborts: 2,
            ..WorkCounters::ZERO
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.gate_evals, 10);
        assert_eq!(m.lane_cycles, 5);
        assert_eq!(m.podem_aborts, 2);
        assert_eq!(m.windows_formed, 1);
        assert_eq!(a + b, m);
        assert_eq!([a, b].into_iter().sum::<WorkCounters>(), m);
    }

    #[test]
    fn fields_cover_every_counter() {
        // One distinct value per field; fields() must surface them all.
        let c = WorkCounters {
            gate_evals: 1,
            lane_cycles: 2,
            implication_events: 3,
            cone_nets: 4,
            podem_decisions: 5,
            podem_backtracks: 6,
            podem_aborts: 7,
            windows_formed: 8,
            early_exits: 9,
            topology_builds: 10,
            scratch_reuses: 11,
            implication_words: 12,
            kernel_gate_evals: 13,
            faults_dropped: 14,
            vectors_compacted: 15,
            podem_shards: 16,
            cones_invalidated: 17,
            verdicts_reused: 18,
            trace_cycles_reused: 19,
        };
        let vals: Vec<u64> = c.fields().iter().map(|&(_, v)| v).collect();
        assert_eq!(
            vals,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19]
        );
        assert!(!c.is_zero());
        assert!(WorkCounters::ZERO.is_zero());
    }

    #[test]
    fn display_skips_zero_fields() {
        let c = WorkCounters {
            gate_evals: 12,
            early_exits: 1,
            ..WorkCounters::ZERO
        };
        assert_eq!(c.to_string(), "gate_evals=12 early_exits=1");
        assert_eq!(WorkCounters::ZERO.to_string(), "-");
    }
}
