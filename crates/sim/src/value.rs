//! Three-valued (0, 1, X) logic.

use std::fmt;

use fscan_netlist::GateKind;

/// A three-valued logic value: 0, 1, or unknown (X).
///
/// The unknown value is pessimistic: any operation whose result depends
/// on an unknown operand yields X unless a controlling value decides it.
///
/// # Examples
///
/// ```
/// use fscan_sim::V3;
///
/// assert_eq!(V3::Zero & V3::X, V3::Zero);   // controlling 0 wins
/// assert_eq!(V3::One & V3::X, V3::X);
/// assert_eq!(!V3::X, V3::X);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl V3 {
    /// Converts a Boolean to a known value.
    pub fn from_bool(b: bool) -> V3 {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// Returns `Some(bool)` for known values, `None` for X.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// Whether the value is 0 or 1 (not X).
    pub fn is_known(self) -> bool {
        self != V3::X
    }

    /// Three-valued AND over an iterator (identity: 1).
    pub fn and_all(values: impl IntoIterator<Item = V3>) -> V3 {
        let mut acc = V3::One;
        for v in values {
            acc = acc & v;
            if acc == V3::Zero {
                return V3::Zero;
            }
        }
        acc
    }

    /// Three-valued OR over an iterator (identity: 0).
    pub fn or_all(values: impl IntoIterator<Item = V3>) -> V3 {
        let mut acc = V3::Zero;
        for v in values {
            acc = acc | v;
            if acc == V3::One {
                return V3::One;
            }
        }
        acc
    }

    /// Three-valued XOR over an iterator (identity: 0).
    pub fn xor_all(values: impl IntoIterator<Item = V3>) -> V3 {
        let mut acc = V3::Zero;
        for v in values {
            acc = acc ^ v;
            if acc == V3::X {
                return V3::X;
            }
        }
        acc
    }

    /// Evaluates a combinational gate kind over three-valued inputs.
    ///
    /// # Panics
    ///
    /// Panics when called with [`GateKind::Input`] or [`GateKind::Dff`],
    /// which have no combinational function.
    pub fn eval_gate(kind: GateKind, inputs: impl IntoIterator<Item = V3>) -> V3 {
        match kind {
            GateKind::Const0 => V3::Zero,
            GateKind::Const1 => V3::One,
            GateKind::Buf => inputs.into_iter().next().unwrap_or(V3::X),
            GateKind::Not => !inputs.into_iter().next().unwrap_or(V3::X),
            GateKind::And => V3::and_all(inputs),
            GateKind::Nand => !V3::and_all(inputs),
            GateKind::Or => V3::or_all(inputs),
            GateKind::Nor => !V3::or_all(inputs),
            GateKind::Xor => V3::xor_all(inputs),
            GateKind::Xnor => !V3::xor_all(inputs),
            GateKind::Input | GateKind::Dff => {
                panic!("eval_gate called on non-combinational kind {kind:?}")
            }
        }
    }
}

impl std::ops::Not for V3 {
    type Output = V3;

    fn not(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }
}

impl std::ops::BitAnd for V3 {
    type Output = V3;

    fn bitand(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }
}

impl std::ops::BitOr for V3 {
    type Output = V3;

    fn bitor(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }
}

impl std::ops::BitXor for V3 {
    type Output = V3;

    fn bitxor(self, rhs: V3) -> V3 {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => V3::from_bool(a ^ b),
            _ => V3::X,
        }
    }
}

impl From<bool> for V3 {
    fn from(b: bool) -> V3 {
        V3::from_bool(b)
    }
}

impl fmt::Display for V3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            V3::Zero => '0',
            V3::One => '1',
            V3::X => 'X',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V3; 3] = [V3::Zero, V3::One, V3::X];

    #[test]
    fn and_truth_table() {
        assert_eq!(V3::Zero & V3::X, V3::Zero);
        assert_eq!(V3::X & V3::Zero, V3::Zero);
        assert_eq!(V3::One & V3::One, V3::One);
        assert_eq!(V3::One & V3::X, V3::X);
        assert_eq!(V3::X & V3::X, V3::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(V3::One | V3::X, V3::One);
        assert_eq!(V3::Zero | V3::Zero, V3::Zero);
        assert_eq!(V3::Zero | V3::X, V3::X);
    }

    #[test]
    fn xor_unknown_poisons() {
        assert_eq!(V3::One ^ V3::X, V3::X);
        assert_eq!(V3::One ^ V3::Zero, V3::One);
        assert_eq!(V3::One ^ V3::One, V3::Zero);
    }

    #[test]
    fn demorgan_holds_in_v3() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), (!a) | (!b));
                assert_eq!(!(a | b), (!a) & (!b));
            }
        }
    }

    #[test]
    fn v3_refines_bool() {
        // Known-valued V3 arithmetic must agree with bool arithmetic.
        for a in [false, true] {
            for b in [false, true] {
                let (va, vb) = (V3::from(a), V3::from(b));
                assert_eq!((va & vb).to_bool(), Some(a & b));
                assert_eq!((va | vb).to_bool(), Some(a | b));
                assert_eq!((va ^ vb).to_bool(), Some(a ^ b));
                assert_eq!((!va).to_bool(), Some(!a));
            }
        }
    }

    #[test]
    fn gate_eval_matches_bool_eval() {
        for kind in GateKind::COMBINATIONAL {
            let arity = kind.fixed_arity().unwrap_or(3);
            for bits in 0..(1u32 << arity) {
                let ins: Vec<bool> = (0..arity).map(|i| bits >> i & 1 == 1).collect();
                let v3s: Vec<V3> = ins.iter().map(|&b| V3::from(b)).collect();
                let got = V3::eval_gate(kind, v3s.iter().copied());
                assert_eq!(got.to_bool(), Some(kind.eval_bool(&ins)), "{kind} {ins:?}");
            }
        }
    }

    #[test]
    fn controlling_value_decides_despite_x() {
        assert_eq!(V3::eval_gate(GateKind::And, [V3::Zero, V3::X]), V3::Zero);
        assert_eq!(V3::eval_gate(GateKind::Nand, [V3::Zero, V3::X]), V3::One);
        assert_eq!(V3::eval_gate(GateKind::Or, [V3::One, V3::X]), V3::One);
        assert_eq!(V3::eval_gate(GateKind::Nor, [V3::One, V3::X]), V3::Zero);
        assert_eq!(V3::eval_gate(GateKind::Xor, [V3::One, V3::X]), V3::X);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}{}{}", V3::Zero, V3::One, V3::X), "01X");
    }
}
