//! Three-valued (0, 1, X) logic.

use std::fmt;

use crate::kernel::DualRail;

/// A three-valued logic value: 0, 1, or unknown (X).
///
/// The unknown value is pessimistic: any operation whose result depends
/// on an unknown operand yields X unless a controlling value decides it.
///
/// # Examples
///
/// ```
/// use fscan_sim::V3;
///
/// assert_eq!(V3::Zero & V3::X, V3::Zero);   // controlling 0 wins
/// assert_eq!(V3::One & V3::X, V3::X);
/// assert_eq!(!V3::X, V3::X);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl V3 {
    /// Converts a Boolean to a known value.
    pub fn from_bool(b: bool) -> V3 {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// Returns `Some(bool)` for known values, `None` for X.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// Whether the value is 0 or 1 (not X).
    pub fn is_known(self) -> bool {
        self != V3::X
    }
}

// The operators delegate to the dual-rail kernel (`V3` is its 1-lane
// instance), so the workspace has exactly one three-valued truth table.

impl std::ops::Not for V3 {
    type Output = V3;

    fn not(self) -> V3 {
        DualRail::from(self).not().into()
    }
}

impl std::ops::BitAnd for V3 {
    type Output = V3;

    fn bitand(self, rhs: V3) -> V3 {
        DualRail::from(self).and(rhs.into()).into()
    }
}

impl std::ops::BitOr for V3 {
    type Output = V3;

    fn bitor(self, rhs: V3) -> V3 {
        DualRail::from(self).or(rhs.into()).into()
    }
}

impl std::ops::BitXor for V3 {
    type Output = V3;

    fn bitxor(self, rhs: V3) -> V3 {
        DualRail::from(self).xor(rhs.into()).into()
    }
}

impl From<bool> for V3 {
    fn from(b: bool) -> V3 {
        V3::from_bool(b)
    }
}

impl fmt::Display for V3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            V3::Zero => '0',
            V3::One => '1',
            V3::X => 'X',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [V3; 3] = [V3::Zero, V3::One, V3::X];

    #[test]
    fn and_truth_table() {
        assert_eq!(V3::Zero & V3::X, V3::Zero);
        assert_eq!(V3::X & V3::Zero, V3::Zero);
        assert_eq!(V3::One & V3::One, V3::One);
        assert_eq!(V3::One & V3::X, V3::X);
        assert_eq!(V3::X & V3::X, V3::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(V3::One | V3::X, V3::One);
        assert_eq!(V3::Zero | V3::Zero, V3::Zero);
        assert_eq!(V3::Zero | V3::X, V3::X);
    }

    #[test]
    fn xor_unknown_poisons() {
        assert_eq!(V3::One ^ V3::X, V3::X);
        assert_eq!(V3::One ^ V3::Zero, V3::One);
        assert_eq!(V3::One ^ V3::One, V3::Zero);
    }

    #[test]
    fn demorgan_holds_in_v3() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), (!a) | (!b));
                assert_eq!(!(a | b), (!a) & (!b));
            }
        }
    }

    #[test]
    fn v3_refines_bool() {
        // Known-valued V3 arithmetic must agree with bool arithmetic.
        for a in [false, true] {
            for b in [false, true] {
                let (va, vb) = (V3::from(a), V3::from(b));
                assert_eq!((va & vb).to_bool(), Some(a & b));
                assert_eq!((va | vb).to_bool(), Some(a | b));
                assert_eq!((va ^ vb).to_bool(), Some(a ^ b));
                assert_eq!((!va).to_bool(), Some(!a));
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}{}{}", V3::Zero, V3::One, V3::X), "01X");
    }
}
