//! Runtime selection of the packed rail width.

use std::fmt;
use std::str::FromStr;

/// The packed lane width a pipeline stage runs at.
///
/// The packed stack ([`Pv<W>`](crate::Pv),
/// [`PackedImplicationEngine<W>`](crate::PackedImplicationEngine),
/// [`ParallelFaultSim<W>`](crate::ParallelFaultSim)) is generic over the
/// [`Rail`](crate::kernel::Rail) type at compile time; this enum is the
/// runtime switch configs carry, dispatched once per stage to the
/// monomorphized engines. Verdicts are identical at every width — wider
/// words only retire more faults per union-cone walk, which the
/// deterministic work counters (`gate_evals`, `kernel_gate_evals`,
/// `implication_words`, `scratch_reuses`) make visible.
///
/// # Examples
///
/// ```
/// use fscan_sim::LaneWidth;
///
/// assert_eq!(LaneWidth::default(), LaneWidth::W256);
/// assert_eq!(LaneWidth::W64.lanes(), 64);
/// assert_eq!(LaneWidth::W256.lanes(), 256);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// 64 faults per word (the `u64` rail).
    W64,
    /// 256 faults per word (the [`R256`](crate::kernel::R256) rail) —
    /// the default: four 64-bit words per rail amortize each union-cone
    /// walk over four times as many faults.
    #[default]
    W256,
}

impl LaneWidth {
    /// Number of lanes a word carries at this width.
    pub fn lanes(self) -> u32 {
        match self {
            LaneWidth::W64 => 64,
            LaneWidth::W256 => 256,
        }
    }

    /// The width whose words carry exactly `lanes` lanes, if one is
    /// compiled in — the inverse of [`lanes`](Self::lanes), shared by
    /// every config surface that accepts a numeric width (the
    /// `reproduce --lanes` flag, the serving JSON config).
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan_sim::LaneWidth;
    ///
    /// assert_eq!(LaneWidth::from_lanes(64), Some(LaneWidth::W64));
    /// assert_eq!(LaneWidth::from_lanes(256), Some(LaneWidth::W256));
    /// assert_eq!(LaneWidth::from_lanes(128), None);
    /// ```
    pub fn from_lanes(lanes: u32) -> Option<LaneWidth> {
        match lanes {
            64 => Some(LaneWidth::W64),
            256 => Some(LaneWidth::W256),
            _ => None,
        }
    }
}

/// A lane-width string that names no compiled-in rail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLaneWidthError(String);

impl fmt::Display for ParseLaneWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad lane width '{}' (supported: 64, 256)", self.0)
    }
}

impl std::error::Error for ParseLaneWidthError {}

impl FromStr for LaneWidth {
    type Err = ParseLaneWidthError;

    /// Parses a numeric lane count (`"64"` or `"256"`).
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan_sim::LaneWidth;
    ///
    /// assert_eq!("64".parse::<LaneWidth>().unwrap(), LaneWidth::W64);
    /// assert_eq!("256".parse::<LaneWidth>().unwrap(), LaneWidth::W256);
    /// assert!("128".parse::<LaneWidth>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<LaneWidth, ParseLaneWidthError> {
        s.parse::<u32>()
            .ok()
            .and_then(LaneWidth::from_lanes)
            .ok_or_else(|| ParseLaneWidthError(s.to_string()))
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lanes", self.lanes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_unknown_widths() {
        for bad in ["0", "63", "512", "sixty-four", ""] {
            let err = bad.parse::<LaneWidth>().unwrap_err();
            assert!(err.to_string().contains(bad), "{err}");
        }
    }

    #[test]
    fn parse_round_trips_every_width() {
        for w in [LaneWidth::W64, LaneWidth::W256] {
            assert_eq!(w.lanes().to_string().parse::<LaneWidth>().unwrap(), w);
            assert_eq!(LaneWidth::from_lanes(w.lanes()), Some(w));
        }
    }
}
