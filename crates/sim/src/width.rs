//! Runtime selection of the packed rail width.

use std::fmt;

/// The packed lane width a pipeline stage runs at.
///
/// The packed stack ([`Pv<W>`](crate::Pv),
/// [`PackedImplicationEngine<W>`](crate::PackedImplicationEngine),
/// [`ParallelFaultSim<W>`](crate::ParallelFaultSim)) is generic over the
/// [`Rail`](crate::kernel::Rail) type at compile time; this enum is the
/// runtime switch configs carry, dispatched once per stage to the
/// monomorphized engines. Verdicts are identical at every width — wider
/// words only retire more faults per union-cone walk, which the
/// deterministic work counters (`gate_evals`, `kernel_gate_evals`,
/// `implication_words`, `scratch_reuses`) make visible.
///
/// # Examples
///
/// ```
/// use fscan_sim::LaneWidth;
///
/// assert_eq!(LaneWidth::default(), LaneWidth::W256);
/// assert_eq!(LaneWidth::W64.lanes(), 64);
/// assert_eq!(LaneWidth::W256.lanes(), 256);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// 64 faults per word (the `u64` rail).
    W64,
    /// 256 faults per word (the [`R256`](crate::kernel::R256) rail) —
    /// the default: four 64-bit words per rail amortize each union-cone
    /// walk over four times as many faults.
    #[default]
    W256,
}

impl LaneWidth {
    /// Number of lanes a word carries at this width.
    pub fn lanes(self) -> u32 {
        match self {
            LaneWidth::W64 => 64,
            LaneWidth::W256 => 256,
        }
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lanes", self.lanes())
    }
}
