//! Benchmark harness reproducing the evaluation of *Functional Scan
//! Chain Testing* (DATE 1998): Tables 1–3 and Figure 5.
//!
//! The paper evaluates on the 12 largest ISCAS'89 benchmarks
//! (SIS-optimized, mapped to a NAND/NOR library). Those netlists are not
//! redistributable, so this harness substitutes seeded synthetic
//! circuits with the same per-circuit gate/flip-flop/input counts and an
//! ISCAS-like gate mix (see `DESIGN.md`, substitution table). A `scale`
//! factor shrinks every circuit proportionally so the full suite runs in
//! minutes on a laptop; `--scale 1.0` reproduces paper-sized circuits.
//!
//! # Examples
//!
//! ```
//! use fscan_bench::{build_design, PAPER_SUITE};
//!
//! let design = build_design(&PAPER_SUITE[0], 0.25);
//! assert!(design.chains().len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bench_json;
pub mod stress;
pub mod suite;
pub mod tables;

pub use baseline::{
    check_exact, check_improvement, check_max_factor, check_min_total, check_regression,
    counter_totals, history_record, parse_gate_evals, parse_history, parse_stage_counters,
    parse_total_counters, parse_total_mem, stage_counter_totals, HistoryPoint,
};
pub use bench_json::bench_json;
pub use stress::{run_stress, sample_faults, StressConfig, StressReport};
pub use suite::{build_circuit, build_design, scaled_config, SuiteCircuit, PAPER_SUITE};
pub use tables::{
    figure5, history_table, run_pipeline, run_pipeline_with, table1, table2, table3, Figure5Point,
    Table1Row, Table2Row, Table3Row,
};
