//! The stress tier: scale rails exercised at 10⁵–10⁶ gates.
//!
//! The paper suite (even at `--scale 1.0`) tops out around 22k gates
//! per circuit. This module drives the generator one to two orders of
//! magnitude further — the regime the streaming `.bench` reader and the
//! per-stage memory accounting exist for — while keeping the run
//! tractable on one CPU by *sampling* the fault universe: the circuit,
//! its compiled topology, the scan chains and every per-node arena are
//! full-size (memory scales with the circuit), but ATPG effort scales
//! with the sampled fault count.
//!
//! The deterministic memory quantities (`arena_bytes`, the cone
//! histogram) are exact and thread-invariant, so a committed stress
//! snapshot gates them the same way `BENCH_baseline.json` gates work
//! counters. The allocator-observed `peak_bytes` is machine- and
//! thread-sensitive; [`check_max_factor`](crate::check_max_factor)
//! bounds it loosely instead of pinning it.

use fscan::{PipelineConfig, PipelineReport, PipelineSession};
use fscan_fault::{all_faults, collapse, Fault};
use fscan_netlist::{generate, GeneratorConfig};
use fscan_scan::{insert_functional_scan, TpiConfig};
use fscan_sim::LaneWidth;
use std::sync::Arc;

/// Configuration of one stress run.
#[derive(Clone, Debug, PartialEq)]
pub struct StressConfig {
    /// Combinational gate count (the scale rail under test).
    pub gates: usize,
    /// Flip-flop count; 0 derives gates/50 (clamped to ≥ 16), roughly
    /// the ISCAS'89 suite's gate-to-flop ratio.
    pub dffs: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Scan chains.
    pub chains: usize,
    /// Generator seed.
    pub seed: u64,
    /// Faults actually pushed through the pipeline, sampled evenly
    /// across the collapsed universe (0 = all of them — only sensible
    /// for small `gates`). Sampling bounds ATPG cost; the memory rails
    /// still see the full-size circuit.
    pub fault_sample: usize,
    /// Worker threads (0 = hardware count).
    pub threads: usize,
    /// Packed rail width.
    pub lanes: LaneWidth,
}

impl Default for StressConfig {
    fn default() -> StressConfig {
        StressConfig {
            gates: 100_000,
            dffs: 0,
            inputs: 64,
            chains: 8,
            seed: 0x57e55,
            fault_sample: 2048,
            threads: 0,
            lanes: LaneWidth::default(),
        }
    }
}

impl StressConfig {
    /// The circuit name a run at this configuration reports
    /// (`stress100k`, `stress1m`, …).
    pub fn name(&self) -> String {
        if self.gates.is_multiple_of(1_000_000) && self.gates > 0 {
            format!("stress{}m", self.gates / 1_000_000)
        } else if self.gates.is_multiple_of(1_000) && self.gates > 0 {
            format!("stress{}k", self.gates / 1_000)
        } else {
            format!("stress{}", self.gates)
        }
    }

    fn generator(&self) -> GeneratorConfig {
        let dffs = if self.dffs == 0 {
            (self.gates / 50).max(16)
        } else {
            self.dffs
        };
        GeneratorConfig::new(self.name(), self.seed)
            .inputs(self.inputs.max(8))
            .gates(self.gates)
            .dffs(dffs)
    }
}

/// What one stress run produced: the full pipeline report plus the
/// sizing facts the gates need.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// The five-stage pipeline report (memory accounting populated on
    /// every stage).
    pub report: PipelineReport,
    /// Nodes in the scan design's compiled topology (inputs + gates +
    /// flip-flops after TPI).
    pub nodes: usize,
    /// Collapsed fault universe of the full circuit.
    pub faults_total: usize,
    /// Faults actually run (= `faults_total` when `fault_sample` was 0
    /// or larger than the universe).
    pub faults_run: usize,
}

/// Samples `n` faults evenly across `faults` (all of them when `n` is
/// 0 or ≥ the universe). Strided, not prefix, so every region of the
/// circuit stays represented.
pub fn sample_faults(faults: &[Fault], n: usize) -> Vec<Fault> {
    if n == 0 || n >= faults.len() {
        return faults.to_vec();
    }
    (0..n)
        .map(|i| faults[i * faults.len() / n])
        .collect()
}

/// Generates the stress circuit, inserts functional scan, and runs the
/// full five-stage pipeline over the (sampled) fault universe.
///
/// # Panics
///
/// Panics if scan insertion fails, which cannot happen for generated
/// circuits.
///
/// # Examples
///
/// ```
/// use fscan_bench::stress::{run_stress, StressConfig};
///
/// // A miniature tier — the committed test uses ~2k gates; CI runs 1e5.
/// let cfg = StressConfig {
///     gates: 400,
///     fault_sample: 64,
///     threads: 1,
///     ..StressConfig::default()
/// };
/// let out = run_stress(&cfg);
/// assert_eq!(out.faults_run, 64);
/// assert!(out.report.total_mem().arena_bytes > 0);
/// ```
pub fn run_stress(cfg: &StressConfig) -> StressReport {
    let circuit = generate(&cfg.generator());
    let tpi = TpiConfig {
        num_chains: cfg.chains,
        ..TpiConfig::default()
    };
    let design = insert_functional_scan(&circuit, &tpi).expect("scan insertion on generated circuit");
    let nodes = design.topology().num_nodes();
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    let faults_total = faults.len();
    let sampled = sample_faults(&faults, cfg.fault_sample);
    let faults_run = sampled.len();
    let pipeline = PipelineConfig::builder()
        .threads(cfg.threads)
        .lane_width(cfg.lanes)
        .build()
        .expect("default budgets are valid");
    let report =
        PipelineSession::shared_with_faults(Arc::new(design), pipeline, sampled).run();
    StressReport {
        report,
        nodes,
        faults_total,
        faults_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_sim::kernel::{Rail, R256};
    use fscan_sim::SimScratch;

    /// A reduced tier that still exercises the full five-stage flow:
    /// memory accounting must be populated on every stage and the
    /// deterministic quantities must match their closed forms.
    #[test]
    fn reduced_stress_tier_populates_mem_on_every_stage() {
        let cfg = StressConfig {
            gates: 2_000,
            fault_sample: 256,
            threads: 2,
            ..StressConfig::default()
        };
        let out = run_stress(&cfg);
        assert_eq!(out.report.name, "stress2k");
        assert!(out.faults_total > out.faults_run);
        assert_eq!(out.faults_run, 256);
        for (name, m) in out.report.stages() {
            assert!(
                m.mem.arena_bytes > 0,
                "stage {name} reports no arena footprint"
            );
        }
        // arena_bytes is the closed-form SimScratch footprint: the wide
        // stages report the 256-lane arena, the sequential stage the
        // 64-lane one.
        let wide = SimScratch::<R256>::footprint_bytes(out.nodes);
        let narrow = SimScratch::<u64>::footprint_bytes(out.nodes);
        assert_eq!(out.report.classification.metrics.mem.arena_bytes, wide);
        assert_eq!(out.report.seq.metrics.mem.arena_bytes, narrow);
        assert!(wide > narrow, "{} lanes must dominate 64", R256::LANES);
        // One cone per classified fault, nothing more.
        assert_eq!(
            out.report.classification.metrics.mem.cone_hist.total_cones(),
            out.faults_run as u64
        );
        assert_eq!(
            out.report.total_mem().cone_hist.total_cones(),
            out.faults_run as u64
        );
    }

    #[test]
    fn sampling_is_strided_and_total_preserving() {
        let faults: Vec<Fault> = (0..100)
            .map(|i| Fault::stem(fscan_netlist::NodeId::from_index(i), i % 2 == 0))
            .collect();
        assert_eq!(sample_faults(&faults, 0).len(), 100);
        assert_eq!(sample_faults(&faults, 500).len(), 100);
        let ten = sample_faults(&faults, 10);
        assert_eq!(ten.len(), 10);
        // Strided: first sample from the head, last from the tail.
        assert_eq!(ten[0], faults[0]);
        assert_eq!(ten[9], faults[90]);
    }

    #[test]
    fn names_follow_magnitude() {
        let cfg = |gates| StressConfig {
            gates,
            ..StressConfig::default()
        };
        assert_eq!(cfg(100_000).name(), "stress100k");
        assert_eq!(cfg(1_000_000).name(), "stress1m");
        assert_eq!(cfg(2_000).name(), "stress2k");
        assert_eq!(cfg(1234).name(), "stress1234");
    }
}
