//! Work-counter regression checking against a committed baseline.
//!
//! `BENCH_baseline.json` (a [`bench_json`](crate::bench_json) snapshot
//! committed to the repository) records the per-circuit
//! `total_counters` block of a known-good build. [`check_regression`]
//! compares a fresh snapshot against it and flags every circuit whose
//! total grew beyond a tolerance — the CI guard that keeps the
//! event-driven simulator's incremental-work win from silently eroding.
//! [`check_exact`] guards structural counters (`topology_builds`) that
//! must not move at all: a pipeline run compiles its circuit exactly
//! once, and any drift means an engine started rebuilding privately.

use fscan::json::Value;

/// Per-circuit `total_counters` contents: `(circuit name, [(counter,
/// value)])` in emission order.
pub type CircuitCounters = Vec<(String, Vec<(String, u64)>)>;

/// Extracts every `(counter, value)` pair of each circuit's
/// `total_counters` block from a [`bench_json`](crate::bench_json)
/// snapshot.
///
/// Only the `total_counters` block is consulted; the per-stage counters
/// (which contain the same keys) are skipped. Snapshots are parsed with
/// the canonical [`fscan::json`] parser (order-preserving, so the
/// extracted pairs keep emission order), replacing the line-oriented
/// scraper this module started with.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::parse_total_counters;
///
/// let json = r#"{
///   "circuits": [
///     {
///       "name": "s5378",
///       "stages": [
///         {
///           "counters": {
///             "gate_evals": 11
///           }
///         }
///       ],
///       "total_counters": {
///         "gate_evals": 42,
///         "topology_builds": 1
///       }
///     }
///   ]
/// }"#;
/// let parsed = parse_total_counters(json).unwrap();
/// assert_eq!(parsed[0].0, "s5378");
/// assert_eq!(
///     parsed[0].1,
///     vec![("gate_evals".to_string(), 42), ("topology_builds".to_string(), 1)]
/// );
/// ```
pub fn parse_total_counters(json: &str) -> Result<CircuitCounters, String> {
    let mut out: CircuitCounters = Vec::new();
    for (name, circuit) in circuits_of(json)? {
        let totals = circuit
            .get("total_counters")
            .ok_or_else(|| format!("circuit {name} has no total_counters"))?;
        out.push((name, counter_pairs(totals)?));
    }
    if out.is_empty() {
        return Err("no circuits with total_counters found".into());
    }
    Ok(out)
}

/// Parses a snapshot and yields each circuit as `(name, object)`.
fn circuits_of(json: &str) -> Result<Vec<(String, Value)>, String> {
    let doc = fscan::json::parse(json).map_err(|e| e.to_string())?;
    let circuits = doc
        .get("circuits")
        .and_then(Value::as_array)
        .ok_or_else(|| "no circuits with total_counters found".to_string())?;
    circuits
        .iter()
        .map(|c| {
            let name = c
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| "circuit without a name".to_string())?;
            Ok((name.to_string(), c.clone()))
        })
        .collect()
}

/// Flattens a counters object into `(key, value)` pairs in emission
/// order.
fn counter_pairs(counters: &Value) -> Result<Vec<(String, u64)>, String> {
    counters
        .as_object()
        .ok_or_else(|| "counters block is not an object".to_string())?
        .iter()
        .map(|(key, v)| {
            v.as_u64()
                .map(|v| (key.clone(), v))
                .ok_or_else(|| format!("malformed counter {key}"))
        })
        .collect()
}

/// Extracts each circuit's `total_mem` block as scalar `(quantity,
/// value)` pairs. The `cone_hist` bucket array is folded into a
/// synthetic `cone_total` entry (the number of cones recorded), so mem
/// gates can use the same `(name, value)` machinery as the counter
/// gates.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::parse_total_mem;
///
/// let json = r#"{
///   "circuits": [
///     {
///       "name": "stress100k",
///       "total_mem": {
///         "peak_bytes": 0,
///         "arena_bytes": 4096,
///         "cone_hist": [1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]
///       }
///     }
///   ]
/// }"#;
/// let parsed = parse_total_mem(json).unwrap();
/// assert_eq!(parsed[0].0, "stress100k");
/// assert!(parsed[0].1.contains(&("arena_bytes".to_string(), 4096)));
/// assert!(parsed[0].1.contains(&("cone_total".to_string(), 3)));
/// ```
pub fn parse_total_mem(json: &str) -> Result<CircuitCounters, String> {
    let mut out: CircuitCounters = Vec::new();
    for (name, circuit) in circuits_of(json)? {
        let mem = circuit
            .get("total_mem")
            .ok_or_else(|| format!("circuit {name} has no total_mem"))?;
        out.push((name, mem_pairs(mem)?));
    }
    if out.is_empty() {
        return Err("no circuits with total_mem found".into());
    }
    Ok(out)
}

/// Flattens a mem object into scalar `(quantity, value)` pairs,
/// folding the `cone_hist` array into a `cone_total` entry.
fn mem_pairs(mem: &Value) -> Result<Vec<(String, u64)>, String> {
    let fields = mem
        .as_object()
        .ok_or_else(|| "mem block is not an object".to_string())?;
    let mut out = Vec::new();
    for (key, v) in fields {
        if key == "cone_hist" {
            let buckets = v
                .as_array()
                .ok_or_else(|| "cone_hist is not an array".to_string())?;
            let mut total = 0u64;
            for b in buckets {
                total += b
                    .as_u64()
                    .ok_or_else(|| "malformed cone_hist bucket".to_string())?;
            }
            out.push(("cone_total".to_string(), total));
        } else {
            out.push((
                key.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("malformed mem quantity {key}"))?,
            ));
        }
    }
    Ok(out)
}

/// Requires every circuit's `key` to stay at or below `limit × base`
/// for the matching baseline entry — the gate for allocator-observed
/// peaks, which are nondeterministic but must not balloon. Baseline
/// entries of 0 (no tracking allocator in the baseline run) are
/// skipped: there is nothing meaningful to compare against.
pub fn check_max_factor(
    baseline: &[(String, u64)],
    current: &[(String, u64)],
    key: &str,
    factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        if *base == 0 {
            continue;
        }
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let limit = *base as f64 * factor;
        if *cur as f64 > limit {
            failures.push(format!(
                "{name}: {key} {cur} exceeds {factor}x the baseline {base}"
            ));
        }
    }
    failures
}

/// Per-circuit, per-stage counter contents: `(circuit name, [(stage
/// name, [(counter, value)])])` in emission order.
pub type StageCounters = Vec<(String, Vec<(String, Vec<(String, u64)>)>)>;

/// Extracts every stage's `(counter, value)` pairs of each circuit from
/// a [`bench_json`](crate::bench_json) snapshot — the per-stage
/// companion of [`parse_total_counters`], needed by gates that bound a
/// *single* stage (e.g. the comb-stage `gate_evals` reduction check).
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::parse_stage_counters;
///
/// let json = r#"{
///   "circuits": [
///     {
///       "name": "s5378",
///       "stages": [
///         {
///           "stage": "comb",
///           "counters": {
///             "gate_evals": 11
///           }
///         }
///       ],
///       "total_counters": {
///         "gate_evals": 42
///       }
///     }
///   ]
/// }"#;
/// let parsed = parse_stage_counters(json).unwrap();
/// assert_eq!(parsed[0].0, "s5378");
/// assert_eq!(parsed[0].1[0].0, "comb");
/// assert_eq!(parsed[0].1[0].1, vec![("gate_evals".to_string(), 11)]);
/// ```
pub fn parse_stage_counters(json: &str) -> Result<StageCounters, String> {
    let mut out: StageCounters = Vec::new();
    for (name, circuit) in circuits_of(json)? {
        let mut stages = Vec::new();
        for stage in circuit
            .get("stages")
            .and_then(Value::as_array)
            .unwrap_or(&[])
        {
            let label = stage
                .get("stage")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("circuit {name} has a stage without a label"))?;
            let counters = stage
                .get("counters")
                .ok_or_else(|| format!("stage {label} of {name} has no counters"))?;
            stages.push((label.to_string(), counter_pairs(counters)?));
        }
        out.push((name, stages));
    }
    if out.is_empty() || out.iter().all(|(_, stages)| stages.is_empty()) {
        return Err("no circuits with per-stage counters found".into());
    }
    Ok(out)
}

/// Projects one stage's counter out of parsed [`StageCounters`]:
/// `(circuit name, value)` for every circuit that reports `key` under
/// `stage`.
pub fn stage_counter_totals(
    circuits: &StageCounters,
    stage: &str,
    key: &str,
) -> Vec<(String, u64)> {
    circuits
        .iter()
        .filter_map(|(name, stages)| {
            stages
                .iter()
                .find(|(s, _)| s == stage)
                .and_then(|(_, counters)| counters.iter().find(|(k, _)| k == key))
                .map(|(_, v)| (name.clone(), *v))
        })
        .collect()
}

/// Projects one counter out of parsed [`CircuitCounters`]: `(circuit
/// name, value)` for every circuit whose `total_counters` block carries
/// `key`.
pub fn counter_totals(circuits: &CircuitCounters, key: &str) -> Vec<(String, u64)> {
    circuits
        .iter()
        .filter_map(|(name, counters)| {
            counters
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| (name.clone(), *v))
        })
        .collect()
}

/// Extracts `(circuit name, total gate_evals)` pairs from a
/// [`bench_json`](crate::bench_json)-formatted snapshot.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::parse_gate_evals;
///
/// let json = r#"{
///   "circuits": [
///     {
///       "name": "s5378",
///       "total_counters": {
///         "gate_evals": 42
///       }
///     }
///   ]
/// }"#;
/// assert_eq!(parse_gate_evals(json).unwrap(), vec![("s5378".to_string(), 42)]);
/// ```
pub fn parse_gate_evals(json: &str) -> Result<Vec<(String, u64)>, String> {
    let totals = counter_totals(&parse_total_counters(json)?, "gate_evals");
    if totals.is_empty() {
        return Err("no circuits with a total gate_evals counter found".into());
    }
    Ok(totals)
}

/// Compares a fresh snapshot against a baseline: every circuit present
/// in both must keep its total `gate_evals` within
/// `baseline × (1 + tolerance_pct / 100)`.
///
/// Returns one human-readable line per regressing circuit (empty =
/// pass). Circuits present only on one side are ignored, so a baseline
/// covering one circuit still guards partial runs.
pub fn check_regression(
    baseline: &[(String, u64)],
    current: &[(String, u64)],
    tolerance_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let limit = *base as f64 * (1.0 + tolerance_pct / 100.0);
        if *cur as f64 > limit {
            failures.push(format!(
                "{name}: gate_evals {cur} exceeds baseline {base} by {:+.1}% (tolerance {tolerance_pct}%)",
                100.0 * (*cur as f64 / (*base).max(1) as f64 - 1.0)
            ));
        }
    }
    failures
}

/// Requires the sum of `key` across every circuit in the fresh snapshot
/// to reach at least `min`. Used to gate on global fault dropping
/// actually happening: a comb phase whose `faults_dropped` total
/// collapses to zero has silently fallen back to one-PODEM-run-per-fault
/// even if its total work still looks healthy.
pub fn check_min_total(current: &[(String, u64)], key: &str, min: u64) -> Vec<String> {
    let total: u64 = current.iter().map(|(_, v)| *v).sum();
    if total < min {
        vec![format!(
            "total {key} {total} is below the required minimum {min}"
        )]
    } else {
        Vec::new()
    }
}

/// Requires every circuit present in both snapshots to have improved by
/// at least `factor`: `baseline ≥ factor × current` for `key`. Used to
/// hold the comb-stage `gate_evals` reduction (event-driven PODEM
/// resimulation plus global fault dropping) at ≥ 2× against the
/// committed pre-optimization baseline.
pub fn check_improvement(
    baseline: &[(String, u64)],
    current: &[(String, u64)],
    key: &str,
    factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if (*base as f64) < factor * *cur as f64 {
            failures.push(format!(
                "{name}: {key} {cur} is only {:.2}x below reference {base} (need >= {factor}x)",
                *base as f64 / (*cur).max(1) as f64
            ));
        }
    }
    failures
}

/// Requires a structural counter to match the baseline exactly on every
/// circuit present in both snapshots. Used for `topology_builds`: each
/// pipeline run compiles its circuit once, so any change means an
/// engine regressed into private rebuilds (or stopped being counted).
pub fn check_exact(
    baseline: &[(String, u64)],
    current: &[(String, u64)],
    key: &str,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if cur != base {
            failures.push(format!("{name}: {key} {cur} differs from baseline {base}"));
        }
    }
    failures
}

/// One record of `BENCH_history.jsonl`, parsed back out of the line
/// [`history_record`] emitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoryPoint {
    /// Git revision the record was taken at.
    pub rev: String,
    /// Packed rail width of the run.
    pub lanes: u64,
    /// Per-circuit counter pairs, in record order.
    pub circuits: CircuitCounters,
}

impl HistoryPoint {
    /// Sums `key` across every circuit of the record (0 when no circuit
    /// carries it — old records simply predate newer counters).
    pub fn total(&self, key: &str) -> u64 {
        self.circuits
            .iter()
            .filter_map(|(_, counters)| {
                counters.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
            })
            .sum()
    }
}

/// Parses a `BENCH_history.jsonl` file — one [`history_record`] line
/// per passing `check-baseline --history` run, blank lines ignored —
/// back into its points, oldest first. This is the read side of the
/// trajectory: `reproduce history` renders the result as a table.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::{history_record, parse_history};
///
/// let circuits = vec![("s9234".to_string(), vec![("gate_evals".to_string(), 7u64)])];
/// let file = format!("{}\n", history_record("abc123", 256, &circuits));
/// let points = parse_history(&file).unwrap();
/// assert_eq!(points[0].rev, "abc123");
/// assert_eq!(points[0].total("gate_evals"), 7);
/// ```
pub fn parse_history(jsonl: &str) -> Result<Vec<HistoryPoint>, String> {
    let mut out = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |msg: &str| format!("history line {}: {msg}", i + 1);
        let doc = fscan::json::parse(line).map_err(|e| at(&e.to_string()))?;
        let rev = doc
            .get("rev")
            .and_then(Value::as_str)
            .ok_or_else(|| at("no rev"))?
            .to_string();
        let lanes = doc
            .get("lanes")
            .and_then(Value::as_u64)
            .ok_or_else(|| at("no lanes"))?;
        let mut circuits = Vec::new();
        for (name, counters) in doc
            .get("circuits")
            .and_then(Value::as_object)
            .ok_or_else(|| at("no circuits object"))?
        {
            circuits.push((name.clone(), counter_pairs(counters).map_err(|e| at(&e))?));
        }
        out.push(HistoryPoint {
            rev,
            lanes,
            circuits,
        });
    }
    if out.is_empty() {
        return Err("history file has no records".into());
    }
    Ok(out)
}

/// Renders one `BENCH_history.jsonl` record: a single line of JSON
/// carrying the git revision, the rail width, and every circuit's
/// `total_counters` block from a fresh snapshot.
///
/// `check-baseline --history PATH` appends one such line per passing
/// run, so the committed history file accumulates a per-PR trace of the
/// deterministic work counters — greppable, diff-friendly, and (unlike
/// wall-clock) comparable across machines.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::history_record;
///
/// let circuits = vec![(
///     "s9234".to_string(),
///     vec![("gate_evals".to_string(), 42u64)],
/// )];
/// let line = history_record("abc123", 256, &circuits);
/// assert!(line.starts_with("{\"rev\":\"abc123\",\"lanes\":256,"));
/// assert!(line.contains("\"s9234\":{\"gate_evals\":42}"));
/// assert!(!line.contains('\n'));
/// ```
pub fn history_record(rev: &str, lanes: u64, circuits: &CircuitCounters) -> String {
    Value::object([
        ("rev", Value::Str(rev.to_string())),
        ("lanes", Value::UInt(lanes)),
        (
            "circuits",
            Value::Object(
                circuits
                    .iter()
                    .map(|(name, counters)| {
                        (
                            name.clone(),
                            Value::Object(
                                counters
                                    .iter()
                                    .map(|(key, v)| (key.clone(), Value::UInt(*v)))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
    .render_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_json;
    use crate::suite::PAPER_SUITE;
    use crate::tables::run_pipeline;

    fn pairs(v: &[(&str, u64)]) -> Vec<(String, u64)> {
        v.iter().map(|(n, c)| (n.to_string(), *c)).collect()
    }

    #[test]
    fn parses_real_emitter_output() {
        let report = run_pipeline(&PAPER_SUITE[0], 0.05);
        let totals = report.total_counters();
        let json = bench_json(&[report], 0.05, 1, 256);
        let parsed = parse_gate_evals(&json).unwrap();
        assert_eq!(parsed, vec![("s1196".to_string(), totals.gate_evals)]);
        // Every emitted counter — including the new structural ones —
        // round-trips through the parser.
        let all = parse_total_counters(&json).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.len(), totals.fields().len());
        assert_eq!(
            counter_totals(&all, "topology_builds"),
            vec![("s1196".to_string(), 1)]
        );
        assert_eq!(
            counter_totals(&all, "scratch_reuses"),
            vec![("s1196".to_string(), totals.scratch_reuses)]
        );
    }

    #[test]
    fn flags_only_regressions_beyond_tolerance() {
        let base = pairs(&[("a", 1000), ("b", 1000), ("c", 1000)]);
        let cur = pairs(&[("a", 1049), ("b", 1051), ("d", 9999)]);
        let failures = check_regression(&base, &cur, 5.0);
        // `a` is within 5%, `b` is over, `c`/`d` are unmatched.
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("b:"), "{failures:?}");
    }

    #[test]
    fn improvements_always_pass() {
        let base = pairs(&[("a", 1000)]);
        let cur = pairs(&[("a", 200)]);
        assert!(check_regression(&base, &cur, 0.0).is_empty());
    }

    #[test]
    fn exact_check_flags_any_drift() {
        let base = pairs(&[("a", 1), ("b", 1)]);
        assert!(check_exact(&base, &pairs(&[("a", 1), ("b", 1)]), "topology_builds").is_empty());
        let failures = check_exact(&base, &pairs(&[("a", 2), ("b", 1)]), "topology_builds");
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("a:"), "{failures:?}");
        // One-sided circuits are ignored, like the tolerance check.
        assert!(check_exact(&base, &pairs(&[("z", 7)]), "topology_builds").is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_gate_evals("{}").is_err());
        assert!(parse_gate_evals("\"total_counters\": {\n\"gate_evals\": 3\n").is_err());
        assert!(parse_stage_counters("{}").is_err());
    }

    #[test]
    fn stage_counters_round_trip_through_the_emitter() {
        let report = run_pipeline(&PAPER_SUITE[0], 0.05);
        let comb_evals = report.comb.metrics.counters.gate_evals;
        let json = bench_json(&[report], 0.05, 1, 256);
        let parsed = parse_stage_counters(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        let stages: Vec<&str> = parsed[0].1.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            stages,
            vec!["classify", "alternating", "comb", "compact", "seq"]
        );
        assert_eq!(
            stage_counter_totals(&parsed, "comb", "gate_evals"),
            vec![("s1196".to_string(), comb_evals)]
        );
        // Per-stage parsing must not leak the total_counters block in as
        // a phantom stage.
        for (_, counters) in &parsed[0].1 {
            assert_eq!(counters.len(), fscan_sim::WorkCounters::ZERO.fields().len());
        }
    }

    #[test]
    fn total_mem_round_trips_through_the_emitter() {
        let report = run_pipeline(&PAPER_SUITE[0], 0.05);
        let total_faults = report.total_faults as u64;
        let arena = report.total_mem().arena_bytes;
        let json = bench_json(&[report], 0.05, 1, 256);
        let parsed = parse_total_mem(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            counter_totals(&parsed, "arena_bytes"),
            vec![("s1196".to_string(), arena)]
        );
        assert!(arena > 0, "pipeline must report a nonzero arena footprint");
        // The classify stage records one cone per fault.
        assert_eq!(
            counter_totals(&parsed, "cone_total"),
            vec![("s1196".to_string(), total_faults)]
        );
        // Old snapshots without mem blocks fail loudly, not silently.
        assert!(parse_total_mem("{\"circuits\": [{\"name\": \"x\"}]}").is_err());
    }

    #[test]
    fn max_factor_skips_zero_baselines() {
        let base = pairs(&[("a", 1000), ("b", 0), ("c", 1000)]);
        let cur = pairs(&[("a", 1999), ("b", 5000), ("c", 2001)]);
        let failures = check_max_factor(&base, &cur, "peak_bytes", 2.0);
        // `a` is under 2x, `b` has no baseline signal, `c` is over.
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("c:"), "{failures:?}");
    }

    #[test]
    fn min_total_gates_on_the_sum() {
        let cur = pairs(&[("a", 30), ("b", 12)]);
        assert!(check_min_total(&cur, "faults_dropped", 42).is_empty());
        let failures = check_min_total(&cur, "faults_dropped", 43);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("faults_dropped"), "{failures:?}");
    }

    #[test]
    fn history_record_round_trips_a_real_snapshot() {
        let report = run_pipeline(&PAPER_SUITE[0], 0.05);
        let json = bench_json(&[report], 0.05, 1, 256);
        let circuits = parse_total_counters(&json).unwrap();
        let line = history_record("deadbeef", 256, &circuits);
        // One line, every total counter present, parseable back out by
        // a plain substring check (the consumers are grep and jq).
        assert_eq!(line.lines().count(), 1);
        for (key, value) in &circuits[0].1 {
            assert!(
                line.contains(&format!("\"{key}\":{value}")),
                "{key} missing from {line}"
            );
        }
        assert!(line.contains("\"rev\":\"deadbeef\""));
        assert!(line.contains("\"lanes\":256"));
    }

    #[test]
    fn history_parses_back_to_its_points() {
        let older = history_record(
            "aaaa11112222",
            64,
            &pairs2(&[("s9234", &[("gate_evals", 100), ("faults_dropped", 3)])]),
        );
        let newer = history_record(
            "bbbb33334444",
            256,
            &pairs2(&[
                ("s9234", &[("gate_evals", 80), ("faults_dropped", 5)]),
                ("s5378", &[("gate_evals", 40), ("faults_dropped", 2)]),
            ]),
        );
        let file = format!("{older}\n{newer}\n\n");
        let points = parse_history(&file).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].rev, "aaaa11112222");
        assert_eq!(points[0].lanes, 64);
        assert_eq!(points[0].total("gate_evals"), 100);
        assert_eq!(points[1].total("gate_evals"), 120);
        assert_eq!(points[1].total("faults_dropped"), 7);
        // Keys a record predates sum to zero instead of erroring.
        assert_eq!(points[0].total("lane_cycles"), 0);
        assert!(parse_history("").is_err());
        assert!(parse_history("{\"lanes\":1}").is_err());
    }

    fn pairs2(v: &[(&str, &[(&str, u64)])]) -> CircuitCounters {
        v.iter()
            .map(|(name, counters)| {
                (
                    name.to_string(),
                    counters.iter().map(|(k, c)| (k.to_string(), *c)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn improvement_requires_the_factor_per_circuit() {
        let base = pairs(&[("a", 1000), ("b", 1000), ("c", 1000)]);
        let cur = pairs(&[("a", 500), ("b", 501), ("d", 9999)]);
        let failures = check_improvement(&base, &cur, "gate_evals", 2.0);
        // `a` hits exactly 2x, `b` falls short, `c`/`d` are unmatched.
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("b:"), "{failures:?}");
    }
}
