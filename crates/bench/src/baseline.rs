//! Gate-evaluation regression checking against a committed baseline.
//!
//! `BENCH_baseline.json` (a [`bench_json`](crate::bench_json) snapshot
//! committed to the repository) records the per-circuit total
//! `gate_evals` of a known-good build. [`check_regression`] compares a
//! fresh snapshot against it and flags every circuit whose total grew
//! beyond a tolerance — the CI guard that keeps the event-driven
//! simulator's incremental-work win from silently eroding.

/// Extracts `(circuit name, total gate_evals)` pairs from a
/// [`bench_json`](crate::bench_json)-formatted snapshot.
///
/// Only the `total_counters` block of each circuit is consulted; the
/// per-stage counters (which also contain `gate_evals` keys) are
/// skipped. The parser is deliberately line-oriented — the emitter
/// writes one key per line and this keeps the checker free of any JSON
/// dependency.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::parse_gate_evals;
///
/// let json = r#"{
///   "circuits": [
///     {
///       "name": "s5378",
///       "stages": [
///         {
///           "counters": {
///             "gate_evals": 11
///           }
///         }
///       ],
///       "total_counters": {
///         "gate_evals": 42
///       }
///     }
///   ]
/// }"#;
/// assert_eq!(parse_gate_evals(json).unwrap(), vec![("s5378".to_string(), 42)]);
/// ```
pub fn parse_gate_evals(json: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    let mut in_totals = false;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            let n = rest
                .strip_suffix("\",")
                .or_else(|| rest.strip_suffix('"'))
                .ok_or_else(|| format!("malformed name line: {line}"))?;
            name = Some(n.to_string());
            in_totals = false;
        } else if line.starts_with("\"total_counters\"") {
            in_totals = true;
        } else if in_totals {
            if let Some(rest) = line.strip_prefix("\"gate_evals\": ") {
                let v: u64 = rest
                    .trim_end_matches(',')
                    .parse()
                    .map_err(|_| format!("malformed gate_evals line: {line}"))?;
                let n = name
                    .clone()
                    .ok_or_else(|| "total_counters before any circuit name".to_string())?;
                out.push((n, v));
                in_totals = false;
            }
        }
    }
    if out.is_empty() {
        return Err("no circuits with total_counters found".into());
    }
    Ok(out)
}

/// Compares a fresh snapshot against a baseline: every circuit present
/// in both must keep its total `gate_evals` within
/// `baseline × (1 + tolerance_pct / 100)`.
///
/// Returns one human-readable line per regressing circuit (empty =
/// pass). Circuits present only on one side are ignored, so a baseline
/// covering one circuit still guards partial runs.
pub fn check_regression(
    baseline: &[(String, u64)],
    current: &[(String, u64)],
    tolerance_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        let Some((_, cur)) = current.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let limit = *base as f64 * (1.0 + tolerance_pct / 100.0);
        if *cur as f64 > limit {
            failures.push(format!(
                "{name}: gate_evals {cur} exceeds baseline {base} by {:+.1}% (tolerance {tolerance_pct}%)",
                100.0 * (*cur as f64 / (*base).max(1) as f64 - 1.0)
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_json;
    use crate::suite::PAPER_SUITE;
    use crate::tables::run_pipeline;

    fn pairs(v: &[(&str, u64)]) -> Vec<(String, u64)> {
        v.iter().map(|(n, c)| (n.to_string(), *c)).collect()
    }

    #[test]
    fn parses_real_emitter_output() {
        let report = run_pipeline(&PAPER_SUITE[0], 0.05);
        let total = report.total_counters().gate_evals;
        let json = bench_json(&[report], 0.05, 1);
        let parsed = parse_gate_evals(&json).unwrap();
        assert_eq!(parsed, vec![("s1196".to_string(), total)]);
    }

    #[test]
    fn flags_only_regressions_beyond_tolerance() {
        let base = pairs(&[("a", 1000), ("b", 1000), ("c", 1000)]);
        let cur = pairs(&[("a", 1049), ("b", 1051), ("d", 9999)]);
        let failures = check_regression(&base, &cur, 5.0);
        // `a` is within 5%, `b` is over, `c`/`d` are unmatched.
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("b:"), "{failures:?}");
    }

    #[test]
    fn improvements_always_pass() {
        let base = pairs(&[("a", 1000)]);
        let cur = pairs(&[("a", 200)]);
        assert!(check_regression(&base, &cur, 0.0).is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_gate_evals("{}").is_err());
        assert!(parse_gate_evals("\"total_counters\": {\n\"gate_evals\": 3\n").is_err());
    }
}
