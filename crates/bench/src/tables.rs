//! Regeneration of the paper's Tables 1–3 and Figure 5.

use std::fmt;
use std::time::Duration;

use fscan::{PipelineConfig, PipelineReport, PipelineSession};
use fscan_fault::{all_faults, collapse};
use fscan_netlist::CircuitStats;

use crate::suite::{build_design, SuiteCircuit};

/// One row of Table 1 (the test suite).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Mapped gate count.
    pub gates: usize,
    /// Flip-flop count.
    pub ffs: usize,
    /// Collapsed fault count.
    pub faults: usize,
    /// Scan chain count.
    pub chains: usize,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>7} {:>6} {:>8} {:>7}",
            self.name, self.gates, self.ffs, self.faults, self.chains
        )
    }
}

/// Generates one Table 1 row: structural statistics of a suite circuit
/// after functional scan insertion.
pub fn table1(circuit: &SuiteCircuit, scale: f64) -> Table1Row {
    let design = build_design(circuit, scale);
    let stats = CircuitStats::new(design.circuit());
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    Table1Row {
        name: circuit.name.to_string(),
        gates: stats.gates,
        ffs: stats.dffs,
        faults: faults.len(),
        chains: design.chains().len(),
    }
}

/// One row of Table 2 (easy/hard classification).
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub name: String,
    /// Total collapsed faults.
    pub total: usize,
    /// Category-1 (`f_easy`) count.
    pub easy: usize,
    /// Category-2 (`f_hard`) count.
    pub hard: usize,
    /// Classification CPU time.
    pub cpu: Duration,
}

impl Table2Row {
    /// `f_easy` as a percentage of all faults.
    pub fn easy_pct(&self) -> f64 {
        100.0 * self.easy as f64 / self.total.max(1) as f64
    }

    /// `f_hard` as a percentage of all faults.
    pub fn hard_pct(&self) -> f64 {
        100.0 * self.hard as f64 / self.total.max(1) as f64
    }
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>7} ({:>4.1}%) {:>6} ({:>4.1}%) {:>8.2}s",
            self.name,
            self.easy,
            self.easy_pct(),
            self.hard,
            self.hard_pct(),
            self.cpu.as_secs_f64()
        )
    }
}

/// One row of Table 3 (detecting the faults in `f_hard`).
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Circuit name.
    pub name: String,
    /// Step-2 detected / undetectable / undetected and CPU.
    pub comb_detected: usize,
    /// Step-2 proven-undetectable count.
    pub comb_undetectable: usize,
    /// Step-2 undetected count (input to step 3).
    pub comb_undetected: usize,
    /// Step-2 CPU time.
    pub comb_cpu: Duration,
    /// Enhanced-C/O circuits: initial groups.
    pub circuits_initial: usize,
    /// Enhanced-C/O circuits: final per-fault pass.
    pub circuits_final: usize,
    /// Step-3 detected count.
    pub seq_detected: usize,
    /// Step-3 proven-undetectable count.
    pub seq_undetectable: usize,
    /// Step-3 undetected count (the paper's headline column).
    pub seq_undetected: usize,
    /// Step-3 CPU time.
    pub seq_cpu: Duration,
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:>6} {:>6} {:>6} {:>8.2}s {:>9} {:>5} {:>5} {:>5} {:>8.2}s",
            self.name,
            self.comb_detected,
            self.comb_undetectable,
            self.comb_undetected,
            self.comb_cpu.as_secs_f64(),
            format!("{},{}", self.circuits_initial, self.circuits_final),
            self.seq_detected,
            self.seq_undetectable,
            self.seq_undetected,
            self.seq_cpu.as_secs_f64()
        )
    }
}

/// One point of the Figure 5 series (#simulated windows vs #detected).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Figure5Point {
    /// Test windows simulated so far.
    pub vectors: usize,
    /// Cumulative detected faults.
    pub detected: usize,
}

/// Runs the full pipeline once and extracts Table 2, Table 3 and the
/// Figure 5 series for one suite circuit.
pub fn run_pipeline(circuit: &SuiteCircuit, scale: f64) -> PipelineReport {
    run_pipeline_with(circuit, scale, PipelineConfig::default())
}

/// [`run_pipeline`] under an explicit configuration (thread count, ATPG
/// budgets), running an owned [`PipelineSession`] over the freshly
/// built design (the design is consumed into the session's `Arc`, so no
/// clone is paid).
pub fn run_pipeline_with(
    circuit: &SuiteCircuit,
    scale: f64,
    config: PipelineConfig,
) -> PipelineReport {
    let design = std::sync::Arc::new(build_design(circuit, scale));
    PipelineSession::shared(design, config).run()
}

/// Table 2 row from a pipeline report.
pub fn table2(report: &PipelineReport) -> Table2Row {
    Table2Row {
        name: report.name.clone(),
        total: report.total_faults,
        easy: report.classification.easy,
        hard: report.classification.hard,
        cpu: report.classification.metrics.cpu + report.alternating.metrics.cpu,
    }
}

/// Table 3 row from a pipeline report.
pub fn table3(report: &PipelineReport) -> Table3Row {
    Table3Row {
        name: report.name.clone(),
        comb_detected: report.comb.detected,
        comb_undetectable: report.comb.undetectable,
        comb_undetected: report.comb.undetected,
        comb_cpu: report.comb.metrics.cpu,
        circuits_initial: report.seq.circuits_initial,
        circuits_final: report.seq.circuits_final,
        seq_detected: report.seq.detected,
        seq_undetectable: report.seq.undetectable,
        seq_undetected: report.seq.undetected,
        seq_cpu: report.seq.metrics.cpu,
    }
}

/// The counters the trajectory table shows, as `(counter key, column
/// header)`. A deliberate subset of [`fscan_sim::WorkCounters`]: the
/// headline work totals whose per-PR movement tells the optimization
/// story, not all sixteen fields.
const HISTORY_COLUMNS: [(&str, &str); 5] = [
    ("gate_evals", "gate_evals"),
    ("lane_cycles", "lane_cycles"),
    ("implication_words", "impl_words"),
    ("faults_dropped", "dropped"),
    ("vectors_compacted", "compacted"),
];

/// Renders the per-PR trajectory recorded in `BENCH_history.jsonl` as a
/// fixed-width table: one row per record (oldest first), headline
/// counters summed across that record's circuits. This is the
/// first-class view of the history file — `reproduce history PATH`
/// prints exactly this.
///
/// # Examples
///
/// ```
/// use fscan_bench::baseline::{history_record, parse_history};
/// use fscan_bench::history_table;
///
/// let circuits = vec![("s9234".to_string(), vec![("gate_evals".to_string(), 42u64)])];
/// let points = parse_history(&history_record("abc123", 256, &circuits)).unwrap();
/// let table = history_table(&points);
/// assert!(table.contains("abc123"));
/// assert!(table.contains("42"));
/// ```
pub fn history_table(points: &[crate::baseline::HistoryPoint]) -> String {
    let mut out = format!("{:<14} {:>5} {:>4}", "rev", "lanes", "ckts");
    for (_, header) in HISTORY_COLUMNS {
        out.push_str(&format!(" {header:>12}"));
    }
    out.push('\n');
    for p in points {
        out.push_str(&format!("{:<14} {:>5} {:>4}", p.rev, p.lanes, p.circuits.len()));
        for (key, _) in HISTORY_COLUMNS {
            out.push_str(&format!(" {:>12}", p.total(key)));
        }
        out.push('\n');
    }
    out
}

/// Figure 5 series from a pipeline report.
pub fn figure5(report: &PipelineReport) -> Vec<Figure5Point> {
    report
        .comb
        .detection_curve
        .iter()
        .map(|&(vectors, detected)| Figure5Point { vectors, detected })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::PAPER_SUITE;

    #[test]
    fn table1_row_small_scale() {
        let row = table1(&PAPER_SUITE[0], 0.15);
        assert_eq!(row.name, "s1196");
        assert!(row.gates >= 40);
        assert!(row.faults > row.gates);
        assert_eq!(row.chains, 1);
        assert!(row.to_string().contains("s1196"));
    }

    #[test]
    fn pipeline_rows_are_consistent() {
        let report = run_pipeline(&PAPER_SUITE[2], 0.15); // s1423 shrunk
        let t2 = table2(&report);
        let t3 = table3(&report);
        assert_eq!(t2.total, report.total_faults);
        assert!(t2.easy + t2.hard <= t2.total);
        assert!(t3.seq_undetected <= t3.comb_undetected + report.alternating.missed_easy);
        let fig = figure5(&report);
        assert_eq!(fig.len(), report.comb.detection_curve.len());
    }

    #[test]
    fn history_table_renders_mixed_era_records_and_tails() {
        use crate::baseline::{history_record, parse_history};

        let circuits = |counters: &[(&str, u64)]| {
            vec![(
                "s9234".to_string(),
                counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect::<Vec<_>>(),
            )]
        };
        // Three eras of the committed trace: the original gate_evals-only
        // records, the fault-dropping era, and a modern record carrying
        // the ECO reuse counters. One file holds all of them.
        let era1 = history_record("aaaaaaaaaaaa", 64, &circuits(&[("gate_evals", 100)]));
        let era2 = history_record(
            "bbbbbbbbbbbb",
            256,
            &circuits(&[("gate_evals", 80), ("faults_dropped", 5)]),
        );
        let era3 = history_record(
            "cccccccccccc",
            256,
            &circuits(&[
                ("gate_evals", 20),
                ("faults_dropped", 6),
                ("verdicts_reused", 400),
                ("cones_invalidated", 7),
                ("trace_cycles_reused", 9000),
            ]),
        );
        let file = format!("{era1}\n{era2}\n{era3}\n");
        let points = parse_history(&file).unwrap();
        assert_eq!(points.len(), 3);
        // Counters a record predates read as zero, never as an error.
        assert_eq!(points[0].total("verdicts_reused"), 0);
        assert_eq!(points[0].total("faults_dropped"), 0);
        assert_eq!(points[2].total("verdicts_reused"), 400);
        assert_eq!(points[2].total("trace_cycles_reused"), 9000);
        let table = history_table(&points);
        assert_eq!(table.lines().count(), 4, "header + one row per record");
        for rev in ["aaaaaaaaaaaa", "bbbbbbbbbbbb", "cccccccccccc"] {
            assert!(table.contains(rev), "{rev} missing from:\n{table}");
        }
        // `reproduce history --limit N` shows the newest N records: the
        // same renderer over the tail slice.
        let tail = history_table(&points[points.len() - 2..]);
        assert_eq!(tail.lines().count(), 3);
        assert!(!tail.contains("aaaaaaaaaaaa"));
        assert!(tail.contains("cccccccccccc"));
    }
}
