//! The paper's test suite, rebuilt synthetically (Table 1 substitute).

use fscan_netlist::{generate, Circuit, GeneratorConfig};
use fscan_scan::{insert_functional_scan, ScanDesign, TpiConfig};

/// One suite circuit: the paper's per-circuit parameters (gate counts of
/// the ISCAS'89 originals, flip-flop counts, primary inputs, and the
/// chain counts the paper used for the larger circuits).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SuiteCircuit {
    /// Benchmark name (the ISCAS'89 circuit it substitutes).
    pub name: &'static str,
    /// Combinational gate count at scale 1.0.
    pub gates: usize,
    /// Flip-flop count at scale 1.0.
    pub dffs: usize,
    /// Primary input count (not scaled below 8).
    pub inputs: usize,
    /// Scan chain count (paper: multiple chains for the larger
    /// circuits, keeping the longest chain reasonable).
    pub chains: usize,
    /// Generator seed (fixed for reproducibility).
    pub seed: u64,
}

/// The 12 largest ISCAS'89 benchmarks the paper evaluates on, with
/// their canonical gate/flip-flop/input counts.
pub const PAPER_SUITE: [SuiteCircuit; 12] = [
    SuiteCircuit { name: "s1196", gates: 529, dffs: 18, inputs: 14, chains: 1, seed: 0x1196 },
    SuiteCircuit { name: "s1238", gates: 508, dffs: 18, inputs: 14, chains: 1, seed: 0x1238 },
    SuiteCircuit { name: "s1423", gates: 657, dffs: 74, inputs: 17, chains: 1, seed: 0x1423 },
    SuiteCircuit { name: "s1488", gates: 653, dffs: 6, inputs: 8, chains: 1, seed: 0x1488 },
    SuiteCircuit { name: "s1494", gates: 647, dffs: 6, inputs: 8, chains: 1, seed: 0x1494 },
    SuiteCircuit { name: "s5378", gates: 2779, dffs: 179, inputs: 35, chains: 2, seed: 0x5378 },
    SuiteCircuit { name: "s9234", gates: 5597, dffs: 211, inputs: 36, chains: 2, seed: 0x9234 },
    SuiteCircuit { name: "s13207", gates: 7951, dffs: 638, inputs: 62, chains: 4, seed: 0x13207 },
    SuiteCircuit { name: "s15850", gates: 9772, dffs: 534, inputs: 77, chains: 4, seed: 0x15850 },
    SuiteCircuit { name: "s35932", gates: 16065, dffs: 1728, inputs: 35, chains: 8, seed: 0x35932 },
    SuiteCircuit { name: "s38417", gates: 22179, dffs: 1636, inputs: 28, chains: 8, seed: 0x38417 },
    SuiteCircuit { name: "s38584", gates: 19253, dffs: 1426, inputs: 38, chains: 8, seed: 0x38584 },
];

/// The generator configuration for a suite circuit at the given scale.
///
/// Gates and flip-flops scale linearly (floors keep tiny scales
/// meaningful); inputs and chain counts are not scaled.
pub fn scaled_config(circuit: &SuiteCircuit, scale: f64) -> GeneratorConfig {
    let gates = ((circuit.gates as f64 * scale) as usize).max(40);
    let dffs = ((circuit.dffs as f64 * scale) as usize).max(circuit.chains.max(4));
    GeneratorConfig::new(circuit.name, circuit.seed)
        .inputs(circuit.inputs.max(8))
        .gates(gates)
        .dffs(dffs)
}

/// Generates the synthetic substitute for a suite circuit.
pub fn build_circuit(circuit: &SuiteCircuit, scale: f64) -> Circuit {
    generate(&scaled_config(circuit, scale))
}

/// Generates the circuit and inserts functional scan (TPI) with the
/// suite's chain count.
///
/// # Panics
///
/// Panics if scan insertion fails, which cannot happen for generated
/// circuits (they always contain flip-flops).
pub fn build_design(circuit: &SuiteCircuit, scale: f64) -> ScanDesign {
    let c = build_circuit(circuit, scale);
    let cfg = TpiConfig {
        num_chains: circuit.chains,
        ..TpiConfig::default()
    };
    insert_functional_scan(&c, &cfg).expect("scan insertion on generated circuit")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_circuits() {
        assert_eq!(PAPER_SUITE.len(), 12);
        let total_gates: usize = PAPER_SUITE.iter().map(|c| c.gates).sum();
        // The 12 largest ISCAS'89 circuits total ~87k gates.
        assert!(total_gates > 80_000);
    }

    #[test]
    fn scaling_respects_floors() {
        let cfg = scaled_config(&PAPER_SUITE[3], 0.01); // s1488, 6 FFs
        let c = generate(&cfg);
        assert!(c.num_gates() >= 40);
        assert!(c.dffs().len() >= 4);
    }

    #[test]
    fn designs_build_and_verify_at_small_scale() {
        for circuit in &PAPER_SUITE[..5] {
            let design = build_design(circuit, 0.1);
            design.verify().unwrap();
            assert_eq!(design.chains().len(), circuit.chains);
        }
    }
}
