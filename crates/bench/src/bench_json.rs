//! `BENCH_pipeline.json` emission: per-circuit, per-stage deterministic
//! work counters plus wall-clock, serialized without any external JSON
//! dependency.
//!
//! The format is stable and diff-friendly: two-space indentation, one
//! key per line, and every wall-clock figure on a line whose key
//! contains `wall_s`. Stripping those lines (e.g. `grep -v wall_s`)
//! leaves only deterministic content, so outputs from runs with
//! different thread counts must compare byte-identical — CI checks
//! exactly that.

use fscan::PipelineReport;

/// Renders the benchmark report for a set of pipeline runs.
///
/// `lanes` records the packed-kernel rail width the run used (64 or
/// 256) so a committed snapshot is self-describing; the line sits in
/// the header next to `threads` and, like it, never varies within one
/// run, so the thread-invariance diff is unaffected.
///
/// # Examples
///
/// ```
/// use fscan_bench::{bench_json, run_pipeline, PAPER_SUITE};
///
/// let report = run_pipeline(&PAPER_SUITE[0], 0.05);
/// let json = bench_json(&[report], 0.05, 1, 256);
/// assert!(json.contains("\"gate_evals\""));
/// assert!(json.contains("\"lanes\": 256"));
/// assert!(json.lines().filter(|l| l.contains("wall_s")).count() >= 6);
/// ```
pub fn bench_json(reports: &[PipelineReport], scale: f64, threads: usize, lanes: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scale\": {},\n", float(scale)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"lanes\": {lanes},\n"));
    out.push_str("  \"circuits\": [\n");
    for (ci, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", escape(&r.name)));
        out.push_str(&format!("      \"total_faults\": {},\n", r.total_faults));
        out.push_str(&format!(
            "      \"affected\": {},\n",
            r.classification.affected()
        ));
        out.push_str(&format!("      \"undetected\": {},\n", r.undetected()));
        let stages = r.stages();
        let wall: f64 = stages.iter().map(|(_, m)| m.cpu.as_secs_f64()).sum();
        out.push_str(&format!("      \"wall_s\": {},\n", float(wall)));
        out.push_str("      \"stages\": [\n");
        for (si, (stage, m)) in stages.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!("          \"stage\": \"{stage}\",\n"));
            out.push_str(&format!(
                "          \"wall_s\": {},\n",
                float(m.cpu.as_secs_f64())
            ));
            out.push_str(&format!("          \"items\": {},\n", m.shards.items()));
            out.push_str("          \"counters\": {\n");
            push_counters(&mut out, "            ", &m.counters);
            out.push_str("          }\n");
            out.push_str(if si + 1 < stages.len() {
                "        },\n"
            } else {
                "        }\n"
            });
        }
        out.push_str("      ],\n");
        out.push_str("      \"total_counters\": {\n");
        push_counters(&mut out, "        ", &r.total_counters());
        out.push_str("      }\n");
        out.push_str(if ci + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn push_counters(out: &mut String, indent: &str, work: &fscan_sim::WorkCounters) {
    let fields = work.fields();
    for (i, (name, value)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        out.push_str(&format!("{indent}\"{name}\": {value}{comma}\n"));
    }
}

/// Minimal JSON number formatting: always includes a decimal point so
/// the value parses as a float, never uses exponent notation for the
/// magnitudes involved here.
fn float(v: f64) -> String {
    let s = format!("{v:.6}");
    debug_assert!(s.parse::<f64>().is_ok());
    s
}

/// Minimal JSON string escaping (circuit names are plain ASCII, but be
/// safe).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::PAPER_SUITE;
    use crate::tables::run_pipeline_with;
    use fscan::PipelineConfig;

    fn small_report(threads: usize) -> PipelineReport {
        let config = PipelineConfig::builder().threads(threads).build().unwrap();
        run_pipeline_with(&PAPER_SUITE[0], 0.05, config)
    }

    #[test]
    fn emits_every_counter_for_every_stage() {
        let json = bench_json(&[small_report(1)], 0.05, 1, 256);
        for (name, _) in fscan_sim::WorkCounters::ZERO.fields() {
            // 5 stages + total_counters per circuit.
            assert_eq!(
                json.matches(&format!("\"{name}\":")).count(),
                6,
                "counter {name} missing from some section:\n{json}"
            );
        }
        for stage in ["classify", "alternating", "comb", "compact", "seq"] {
            assert!(json.contains(&format!("\"stage\": \"{stage}\"")));
        }
    }

    #[test]
    fn wall_clock_is_line_separable() {
        // The CI determinism check strips wall-clock lines and then
        // requires byte-identical output across thread counts; each
        // wall_s must therefore sit alone on its line.
        let json = bench_json(&[small_report(1)], 0.05, 1, 256);
        let wall_lines = json.lines().filter(|l| l.contains("wall_s")).count();
        // One per stage (5) plus one per circuit.
        assert_eq!(wall_lines, 6);
        for line in json.lines().filter(|l| l.contains("wall_s")) {
            assert!(line.trim_start().starts_with("\"wall_s\":"), "{line}");
        }
    }

    #[test]
    fn stripped_output_is_thread_invariant() {
        let strip = |json: &str| {
            json.lines()
                .filter(|l| !l.contains("wall_s") && !l.contains("\"threads\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = bench_json(&[small_report(1)], 0.05, 1, 256);
        let four = bench_json(&[small_report(4)], 0.05, 4, 256);
        assert_eq!(strip(&one), strip(&four));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
