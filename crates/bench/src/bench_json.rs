//! `BENCH_pipeline.json` emission: per-circuit, per-stage deterministic
//! work counters plus wall-clock, built as one [`fscan::json::Value`]
//! tree and rendered by the canonical pretty printer.
//!
//! The format is stable and diff-friendly: two-space indentation, one
//! key per line, and every wall-clock figure on a line whose key
//! contains `wall_s`. Stripping those lines (e.g. `grep -v wall_s`)
//! leaves only deterministic content, so outputs from runs with
//! different thread counts must compare byte-identical — CI checks
//! exactly that. The printer's contract is shared with every other JSON
//! surface of the project (committed snapshots re-render to themselves
//! after a parse round trip; see `fscan::json`).

use fscan::json::{counters_to_value, mem_to_value, Value};
use fscan::PipelineReport;

/// Renders the benchmark report for a set of pipeline runs.
///
/// `lanes` records the packed-kernel rail width the run used (64 or
/// 256) so a committed snapshot is self-describing; the line sits in
/// the header next to `threads` and, like it, never varies within one
/// run, so the thread-invariance diff is unaffected.
///
/// # Examples
///
/// ```
/// use fscan_bench::{bench_json, run_pipeline, PAPER_SUITE};
///
/// let report = run_pipeline(&PAPER_SUITE[0], 0.05);
/// let json = bench_json(&[report], 0.05, 1, 256);
/// assert!(json.contains("\"gate_evals\""));
/// assert!(json.contains("\"lanes\": 256"));
/// assert!(json.lines().filter(|l| l.contains("wall_s")).count() >= 6);
/// ```
pub fn bench_json(reports: &[PipelineReport], scale: f64, threads: usize, lanes: usize) -> String {
    Value::object([
        ("scale", Value::Float(scale)),
        ("threads", Value::UInt(threads as u64)),
        ("lanes", Value::UInt(lanes as u64)),
        (
            "circuits",
            Value::Array(reports.iter().map(circuit_value).collect()),
        ),
    ])
    .render_pretty()
}

fn circuit_value(r: &PipelineReport) -> Value {
    let stages = r.stages();
    let wall: f64 = stages.iter().map(|(_, m)| m.cpu.as_secs_f64()).sum();
    Value::object([
        ("name", Value::Str(r.name.clone())),
        ("total_faults", Value::UInt(r.total_faults as u64)),
        ("affected", Value::UInt(r.classification.affected() as u64)),
        ("undetected", Value::UInt(r.undetected() as u64)),
        ("wall_s", Value::Float(wall)),
        (
            "stages",
            Value::Array(
                stages
                    .iter()
                    .map(|(stage, m)| {
                        Value::object([
                            ("stage", Value::Str((*stage).to_string())),
                            ("wall_s", Value::Float(m.cpu.as_secs_f64())),
                            ("items", Value::UInt(m.shards.items() as u64)),
                            ("counters", counters_to_value(&m.counters)),
                            ("mem", mem_to_value(&m.mem)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_counters", counters_to_value(&r.total_counters())),
        ("total_mem", mem_to_value(&r.total_mem())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::PAPER_SUITE;
    use crate::tables::run_pipeline_with;
    use fscan::json::parse;
    use fscan::PipelineConfig;

    fn small_report(threads: usize) -> fscan::PipelineReport {
        let config = PipelineConfig::builder().threads(threads).build().unwrap();
        run_pipeline_with(&PAPER_SUITE[0], 0.05, config)
    }

    #[test]
    fn emits_every_counter_for_every_stage() {
        let json = bench_json(&[small_report(1)], 0.05, 1, 256);
        for (name, _) in fscan_sim::WorkCounters::ZERO.fields() {
            // 5 stages + total_counters per circuit.
            assert_eq!(
                json.matches(&format!("\"{name}\":")).count(),
                6,
                "counter {name} missing from some section:\n{json}"
            );
        }
        for stage in ["classify", "alternating", "comb", "compact", "seq"] {
            assert!(json.contains(&format!("\"stage\": \"{stage}\"")));
        }
        // The memory block rides along at the same granularity, with
        // the allocator-dependent keys each on their own line (the CI
        // strip filter removes them like wall_s).
        for key in ["peak_bytes", "reallocs", "arena_bytes", "cone_hist"] {
            assert_eq!(
                json.matches(&format!("\"{key}\":")).count(),
                6,
                "mem key {key} missing from some section:\n{json}"
            );
        }
        for line in json.lines().filter(|l| l.contains("peak_bytes")) {
            assert!(line.trim_start().starts_with("\"peak_bytes\":"), "{line}");
        }
    }

    #[test]
    fn wall_clock_is_line_separable() {
        // The CI determinism check strips wall-clock lines and then
        // requires byte-identical output across thread counts; each
        // wall_s must therefore sit alone on its line.
        let json = bench_json(&[small_report(1)], 0.05, 1, 256);
        let wall_lines = json.lines().filter(|l| l.contains("wall_s")).count();
        // One per stage (5) plus one per circuit.
        assert_eq!(wall_lines, 6);
        for line in json.lines().filter(|l| l.contains("wall_s")) {
            assert!(line.trim_start().starts_with("\"wall_s\":"), "{line}");
        }
    }

    #[test]
    fn stripped_output_is_thread_invariant() {
        let strip = |json: &str| {
            json.lines()
                .filter(|l| {
                    !l.contains("wall_s")
                        && !l.contains("\"threads\"")
                        && !l.contains("peak_bytes")
                        && !l.contains("reallocs")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let one = bench_json(&[small_report(1)], 0.05, 1, 256);
        let four = bench_json(&[small_report(4)], 0.05, 4, 256);
        assert_eq!(strip(&one), strip(&four));
    }

    #[test]
    fn output_parses_and_rerenders_byte_identically() {
        // The emitter and the canonical parser/printer agree exactly —
        // the same identity CI asserts for the committed baseline file.
        let json = bench_json(&[small_report(1)], 0.05, 1, 256);
        let reparsed = parse(&json).unwrap();
        assert_eq!(reparsed.render_pretty(), json);
        assert_eq!(
            reparsed.get("scale").and_then(|v| v.as_f64()),
            Some(0.05)
        );
    }
}
