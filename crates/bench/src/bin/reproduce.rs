//! Regenerates every table and figure of the DATE'98 paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [table1|table2|table3|figure5|timing|all] [--scale F] [--only NAME] [--threads N] [--lanes 64|256] [--json [PATH]]
//! reproduce stress [--gates N] [--fault-sample N] [--chains N] [--seed S] [--threads N] [--lanes 64|256] [--json [PATH]]
//! reproduce eco [--scale F] [--only NAME] [--threads N] [--lanes 64|256] [--json [PATH]]
//! reproduce history [PATH] [--limit N]
//! reproduce check-baseline BASELINE.json CURRENT.json [--tolerance PCT]
//! ```
//!
//! `--scale` shrinks every suite circuit proportionally (default 0.125,
//! which runs the whole suite in minutes; 1.0 builds paper-sized
//! circuits). `--only` restricts the run to one circuit. `--threads`
//! sets the worker count for the fault-parallel stages (default 0 =
//! one per hardware thread); reports are identical for every value.
//! `--lanes` selects the packed rail width (default 256, the pipeline
//! default; 64 reproduces the single-word kernel) — verdicts are
//! identical at both widths, only the work counters move. `timing`
//! prints the per-stage wall-clock and worker-distribution table.
//! `--json` additionally writes `BENCH_pipeline.json` (or `PATH`):
//! per-circuit, per-stage deterministic work counters plus wall-clock.
//! Every counter is bit-identical across thread counts, so stripping
//! the `wall_s` lines yields thread-invariant output.
//!
//! `stress` runs the scale-rail tier: one synthetic circuit at 10⁵–10⁶
//! gates (default 100k) through the full five-stage pipeline, with the
//! fault universe sampled (`--fault-sample`, default 2048) so ATPG cost
//! stays bounded while every arena is full-size. The per-stage memory
//! accounting — allocator-observed peaks (this binary installs the
//! tracking allocator), deterministic arena footprints and the cone
//! histogram — is printed and, with `--json`, written as a regular
//! `bench_json` snapshot (default `BENCH_stress.json`) that
//! `check-baseline` can gate on.
//!
//! `eco` runs the committed incremental-ECO scenario: a cold base run
//! of one suite circuit, a spare-cell island appended as a
//! [`fscan_netlist::NetlistDelta`], and an incremental rerun that
//! carries every prior verdict forward. It prints the reuse split
//! (`verdicts_reused` / `cones_invalidated`) and the rerun's
//! `gate_evals` as a percentage of the cold run's; `--json` snapshots
//! the rerun for the `check-baseline` ECO gates.
//!
//! `history` renders `BENCH_history.jsonl` (or `PATH`) as the per-PR
//! trajectory table: one row per appended record, headline counters
//! summed across that record's circuits; `--limit N` keeps only the
//! newest `N` rows.
//!
//! `check-baseline` compares the per-circuit total `gate_evals` of a
//! fresh snapshot against a committed baseline and fails if any circuit
//! regressed beyond the tolerance (default 5%); the structural
//! `topology_builds` counter must additionally match the baseline
//! exactly (one compilation per pipeline run). Optional gates guard the
//! fault-parallel fast paths: `--min-faults-dropped N` requires the
//! fresh snapshot's summed `faults_dropped` to reach `N` (global fault
//! dropping actually firing); `--comb-reference REF.json
//! [--min-comb-speedup R]` requires every circuit's *comb-stage*
//! `gate_evals` to sit at least `R`× (default 2×) below the committed
//! pre-optimization reference snapshot; `--wide-reference REF.json
//! [--min-classify-speedup R]` requires the *classify-stage*
//! `gate_evals` to sit at least `R`× (default 1.5×) below the committed
//! 64-lane reference snapshot and its `implication_words` at least 2×
//! below — the wide-rail win in work items, not wall-clock;
//! `--min-verdicts-reused N` requires the snapshot's summed
//! `verdicts_reused` to reach `N` (an ECO snapshot that stopped
//! carrying verdicts forward fails even if it stayed cheap);
//! `--eco-reference REF.json [--min-eco-speedup R]` requires every
//! circuit's *total* `gate_evals` to sit at least `R`× (default 4×,
//! i.e. ≤ 25% of cold) below the committed cold-run reference.
//! `--history PATH` appends a one-line JSON record (git revision, rail width,
//! every circuit's total counters) to `PATH` after a passing check,
//! building the committed per-PR counter trace `BENCH_history.jsonl`.
//! When both snapshots carry `total_mem` blocks, the memory gates ride
//! along automatically: `arena_bytes` and the cone totals must match
//! exactly (they are deterministic), and the allocator-observed
//! `peak_bytes` must stay within `--max-peak-factor` (default 2×) of
//! the baseline; snapshots from before the memory accounting simply
//! skip these gates.

use std::env;
use std::process::ExitCode;

use fscan::{LaneWidth, PipelineConfig, PipelineReport};
use fscan_bench::tables::{run_pipeline_with, table2, table3};
use fscan_bench::{bench_json, figure5, run_stress, table1, StressConfig, PAPER_SUITE};

/// Count every allocation of the run so the `peak_bytes` / `reallocs`
/// columns of the per-stage memory accounting carry real figures. The
/// library crates stay allocator-agnostic (and `forbid(unsafe_code)`);
/// installing the tracker is the binary's decision.
#[global_allocator]
static ALLOC: fscan_alloctrack::TrackingAlloc = fscan_alloctrack::TrackingAlloc;

struct Options {
    what: String,
    scale: f64,
    only: Option<String>,
    threads: usize,
    lanes: LaneWidth,
    json: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut what = "all".to_string();
    let mut scale = 0.125;
    let mut only = None;
    let mut threads = 0usize;
    let mut lanes = LaneWidth::default();
    let mut json = None;
    let mut args = env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "table1" | "table2" | "table3" | "figure5" | "timing" | "all" => what = arg,
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err("scale must be in (0, 1]".into());
                }
            }
            "--only" => only = Some(args.next().ok_or("--only needs a circuit name")?),
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--lanes" => {
                let v = args.next().ok_or("--lanes needs a value (64 or 256)")?;
                lanes = v.parse::<LaneWidth>().map_err(|e| e.to_string())?;
            }
            "--json" => {
                // Optional path operand; defaults to BENCH_pipeline.json.
                json = Some(match args.peek() {
                    Some(next) if !next.starts_with("--") && !is_what(next) => {
                        args.next().unwrap()
                    }
                    _ => "BENCH_pipeline.json".to_string(),
                });
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Options {
        what,
        scale,
        only,
        threads,
        lanes,
        json,
    })
}

fn is_what(s: &str) -> bool {
    matches!(
        s,
        "table1" | "table2" | "table3" | "figure5" | "timing" | "all"
    )
}

fn selected(only: &Option<String>) -> Vec<&'static fscan_bench::SuiteCircuit> {
    PAPER_SUITE
        .iter()
        .filter(|c| only.as_deref().is_none_or(|n| n == c.name))
        .collect()
}

fn print_table1(opts: &Options) {
    println!("Table 1: Test suite (synthetic substitutes at scale {}).", opts.scale);
    println!("{:<10} {:>7} {:>6} {:>8} {:>7}", "name", "#gates", "#FFs", "#faults", "#chains");
    let mut gates = 0;
    let mut ffs = 0;
    let mut faults = 0;
    let mut chains = 0;
    for c in selected(&opts.only) {
        let row = table1(c, opts.scale);
        println!("{row}");
        gates += row.gates;
        ffs += row.ffs;
        faults += row.faults;
        chains += row.chains;
    }
    println!("{:<10} {gates:>7} {ffs:>6} {faults:>8} {chains:>7}", "total");
}

fn pipeline_reports(opts: &Options) -> Vec<PipelineReport> {
    let config = PipelineConfig::builder()
        .threads(opts.threads)
        .lane_width(opts.lanes)
        .build()
        .expect("default budgets are valid");
    selected(&opts.only)
        .into_iter()
        .map(|c| {
            eprintln!(
                "running pipeline on {} (scale {}, threads {}, {})...",
                c.name,
                opts.scale,
                if opts.threads == 0 {
                    "auto".to_string()
                } else {
                    opts.threads.to_string()
                },
                opts.lanes
            );
            run_pipeline_with(c, opts.scale, config.clone())
        })
        .collect()
}

fn print_timing(reports: &[PipelineReport]) {
    println!("\nTiming: per-stage wall-clock and worker fault counts.");
    println!(
        "{:<10} {:<12} {:>9} {:>8} {:>8}  per-worker",
        "name", "stage", "wall", "threads", "items"
    );
    for r in reports {
        let mut total = 0.0;
        for (stage, m) in r.stages() {
            total += m.cpu.as_secs_f64();
            let counts = m
                .shards
                .per_worker
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "{:<10} {:<12} {:>8.2}s {:>8} {:>8}  [{}]",
                r.name,
                stage,
                m.cpu.as_secs_f64(),
                m.shards.threads,
                m.shards.items(),
                counts
            );
        }
        println!("{:<10} {:<12} {total:>8.2}s", r.name, "total");
    }
}

fn print_table2(reports: &[PipelineReport]) {
    println!("\nTable 2: Finding easy and hard faults.");
    println!(
        "{:<10} {:>15} {:>14} {:>9}",
        "name", "#easy (%)", "#hard (%)", "CPU"
    );
    let mut easy = 0;
    let mut hard = 0;
    let mut total = 0;
    let mut cpu = 0.0;
    for r in reports {
        let row = table2(r);
        println!("{row}");
        easy += row.easy;
        hard += row.hard;
        total += row.total;
        cpu += row.cpu.as_secs_f64();
    }
    println!(
        "{:<10} {:>7} ({:>4.1}%) {:>6} ({:>4.1}%) {:>8.2}s",
        "total",
        easy,
        100.0 * easy as f64 / total.max(1) as f64,
        hard,
        100.0 * hard as f64 / total.max(1) as f64,
        cpu
    );
    println!(
        "affected = {:.1}% of all faults; hard = {:.1}% (paper: 24.8% and 3.2%)",
        100.0 * (easy + hard) as f64 / total.max(1) as f64,
        100.0 * hard as f64 / total.max(1) as f64
    );
}

fn print_table3(reports: &[PipelineReport]) {
    println!("\nTable 3: Detecting the faults in f_hard.");
    println!(
        "{:<10} | comb: #det #undetectable #undet CPU | seq: #circ #det #undetectable #undet CPU",
        "name"
    );
    let mut tot = Table3Totals::default();
    for r in reports {
        let row = table3(r);
        println!("{row}");
        tot.add(&row);
    }
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>8.2}s {:>9} {:>5} {:>5} {:>5} {:>8.2}s",
        "total",
        tot.comb_det,
        tot.comb_undetectable,
        tot.comb_undetected,
        tot.comb_cpu,
        format!("{},{}", tot.circ_initial, tot.circ_final),
        tot.seq_det,
        tot.seq_undetectable,
        tot.seq_undetected,
        tot.seq_cpu
    );
    let total_faults: usize = reports.iter().map(|r| r.total_faults).sum();
    let affected: usize = reports.iter().map(|r| r.classification.affected()).sum();
    println!(
        "after step 2: undetected = {:.3}% of all faults, {:.3}% of chain-affecting (paper: 0.159% / 0.642%)",
        100.0 * tot.comb_undetected as f64 / total_faults.max(1) as f64,
        100.0 * tot.comb_undetected as f64 / affected.max(1) as f64
    );
    println!(
        "after step 3: undetected = {:.3}% of all faults, {:.3}% of chain-affecting (paper: 0.006% / 0.022%)",
        100.0 * tot.seq_undetected as f64 / total_faults.max(1) as f64,
        100.0 * tot.seq_undetected as f64 / affected.max(1) as f64
    );
}

#[derive(Default)]
struct Table3Totals {
    comb_det: usize,
    comb_undetectable: usize,
    comb_undetected: usize,
    comb_cpu: f64,
    circ_initial: usize,
    circ_final: usize,
    seq_det: usize,
    seq_undetectable: usize,
    seq_undetected: usize,
    seq_cpu: f64,
}

impl Table3Totals {
    fn add(&mut self, row: &fscan_bench::Table3Row) {
        self.comb_det += row.comb_detected;
        self.comb_undetectable += row.comb_undetectable;
        self.comb_undetected += row.comb_undetected;
        self.comb_cpu += row.comb_cpu.as_secs_f64();
        self.circ_initial += row.circuits_initial;
        self.circ_final += row.circuits_final;
        self.seq_det += row.seq_detected;
        self.seq_undetectable += row.seq_undetectable;
        self.seq_undetected += row.seq_undetected;
        self.seq_cpu += row.seq_cpu.as_secs_f64();
    }
}

fn print_figure5(reports: &[PipelineReport]) {
    // The paper plots the largest circuit (s38584); plot the report with
    // the longest detection curve.
    let Some(report) = reports
        .iter()
        .max_by_key(|r| r.comb.detection_curve.len())
    else {
        return;
    };
    let series = figure5(report);
    println!(
        "\nFigure 5: detected faults vs simulated test vectors ({}).",
        report.name
    );
    println!("{:>8} {:>9}", "#vectors", "#detected");
    let step = (series.len() / 20).max(1);
    for (i, p) in series.iter().enumerate() {
        if i % step == 0 || i + 1 == series.len() {
            println!("{:>8} {:>9}", p.vectors, p.detected);
        }
    }
    if let (Some(quarter), Some(last)) = (series.get(series.len() / 4), series.last()) {
        if last.detected > 0 {
            println!(
                "first 25% of vectors detect {:.0}% of step-2 detections (paper: large majority)",
                100.0 * quarter.detected as f64 / last.detected as f64
            );
        }
    }
}

/// `stress [--gates N] [--fault-sample N] [--chains N] [--seed S]
/// [--threads N] [--lanes 64|256] [--json [PATH]]`: the scale-rail
/// tier — one large synthetic circuit through the full pipeline with
/// per-stage memory accounting printed, optionally snapshotted in
/// `bench_json` format for the baseline gates.
fn stress(args: &[String]) -> ExitCode {
    let usage = "usage: reproduce stress [--gates N] [--fault-sample N] [--chains N] [--seed S] [--threads N] [--lanes 64|256] [--json [PATH]]";
    let mut cfg = StressConfig::default();
    let mut json: Option<String> = None;
    let mut it = args.iter().peekable();
    let parse = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        v.and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs an integer value"))
    };
    while let Some(arg) = it.next() {
        let r = match arg.as_str() {
            "--gates" => parse(arg, it.next()).map(|v| cfg.gates = v),
            "--fault-sample" => parse(arg, it.next()).map(|v| cfg.fault_sample = v),
            "--chains" => parse(arg, it.next()).map(|v| cfg.chains = v),
            "--threads" => parse(arg, it.next()).map(|v| cfg.threads = v),
            "--seed" => parse("--seed", it.next()).map(|v| cfg.seed = v as u64),
            "--lanes" => it
                .next()
                .ok_or_else(|| "--lanes needs a value (64 or 256)".to_string())
                .and_then(|v| v.parse::<LaneWidth>().map_err(|e| e.to_string()))
                .map(|v| cfg.lanes = v),
            "--json" => {
                json = Some(match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                    _ => "BENCH_stress.json".to_string(),
                });
                Ok(())
            }
            other => Err(format!("unknown argument '{other}'\n{usage}")),
        };
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "stress tier {}: {} gates, {} chains, sampling {} faults ({})...",
        cfg.name(),
        cfg.gates,
        cfg.chains,
        cfg.fault_sample,
        cfg.lanes
    );
    let started = std::time::Instant::now();
    let out = run_stress(&cfg);
    let wall = started.elapsed().as_secs_f64();
    println!(
        "{}: {} topology nodes, {} collapsed faults ({} run), undetected {}, wall {wall:.1}s",
        out.report.name,
        out.nodes,
        out.faults_total,
        out.faults_run,
        out.report.undetected()
    );
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>10}",
        "stage", "peak_bytes", "arena_bytes", "reallocs", "cones"
    );
    for (stage, m) in out.report.stages() {
        println!(
            "{:<12} {:>14} {:>14} {:>10} {:>10}",
            stage,
            m.mem.peak_bytes,
            m.mem.arena_bytes,
            m.mem.reallocs,
            m.mem.cone_hist.total_cones()
        );
    }
    let total = out.report.total_mem();
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>10}",
        "total",
        total.peak_bytes,
        total.arena_bytes,
        total.reallocs,
        total.cone_hist.total_cones()
    );
    if let Some(path) = &json {
        let snapshot = bench_json(
            &[out.report],
            1.0,
            cfg.threads,
            cfg.lanes.lanes() as usize,
        );
        if let Err(e) = std::fs::write(path, &snapshot) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// `eco [--scale F] [--only NAME] [--threads N] [--lanes 64|256]
/// [--json [PATH]]`: the committed incremental-ECO scenario — a
/// spare-cell island (a constant feeding a NOT gate, driving nothing)
/// appended to the suite circuit, rerun against the cold base run's
/// carry. The island's cone touches no prior fault, so every prior
/// verdict carries forward and the rerun's `gate_evals` collapse to the
/// new faults alone. With `--json` the rerun's counters are snapshotted
/// (default `BENCH_eco.json`) so `check-baseline` can gate
/// `--min-verdicts-reused` and `--eco-reference` on the committed copy.
fn eco(args: &[String]) -> ExitCode {
    let usage = "usage: reproduce eco [--scale F] [--only NAME] [--threads N] [--lanes 64|256] [--json [PATH]]";
    let mut scale = 0.05f64;
    let mut only = "s9234".to_string();
    let mut threads = 1usize;
    let mut lanes = LaneWidth::default();
    let mut json: Option<String> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let r = match arg.as_str() {
            "--scale" => it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|v| *v > 0.0 && *v <= 1.0)
                .ok_or_else(|| "--scale needs a value in (0, 1]".to_string())
                .map(|v| scale = v),
            "--only" => it
                .next()
                .ok_or_else(|| "--only needs a circuit name".to_string())
                .map(|v| only = v.clone()),
            "--threads" => it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| "--threads needs an integer value".to_string())
                .map(|v| threads = v),
            "--lanes" => it
                .next()
                .ok_or_else(|| "--lanes needs a value (64 or 256)".to_string())
                .and_then(|v| v.parse::<LaneWidth>().map_err(|e| e.to_string()))
                .map(|v| lanes = v),
            "--json" => {
                json = Some(match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                    _ => "BENCH_eco.json".to_string(),
                });
                Ok(())
            }
            other => Err(format!("unknown argument '{other}'\n{usage}")),
        };
        if let Err(e) = r {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(circuit) = PAPER_SUITE.iter().find(|c| c.name == only) else {
        eprintln!("error: no suite circuit named '{only}'");
        return ExitCode::FAILURE;
    };
    let config = PipelineConfig::builder()
        .threads(threads)
        .lane_width(lanes)
        .build()
        .expect("default budgets are valid");
    eprintln!(
        "eco scenario on {only} (scale {scale}, threads {}, {lanes}): cold base run...",
        if threads == 0 { "auto".to_string() } else { threads.to_string() }
    );
    let design = std::sync::Arc::new(fscan_bench::build_design(circuit, scale));
    let session = fscan::PipelineSession::shared(std::sync::Arc::clone(&design), config);
    let base = session.clone().run();
    let delta = fscan_netlist::NetlistDelta {
        base_nodes: design.circuit().num_nodes(),
        added: vec![
            fscan_netlist::DeltaNode {
                name: "eco_spare_c".into(),
                kind: fscan_netlist::GateKind::Const0,
                fanin: vec![],
            },
            fscan_netlist::DeltaNode {
                name: "eco_spare_g".into(),
                kind: fscan_netlist::GateKind::Not,
                fanin: vec![fscan_netlist::DeltaRef::Added(0)],
            },
        ],
        redriven: vec![],
        removed: vec![],
        outputs: vec![],
    };
    eprintln!("applying spare-cell delta and rerunning incrementally...");
    let rerun = match session.rerun(&base, &delta) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: rerun failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cold = base.total_counters();
    let inc = rerun.total_counters();
    println!(
        "{only}: verdicts_reused {} cones_invalidated {} trace_cycles_reused {}",
        inc.verdicts_reused, inc.cones_invalidated, inc.trace_cycles_reused
    );
    println!(
        "{only}: eco gate_evals {} vs cold {} ({:.1}% of cold)",
        inc.gate_evals,
        cold.gate_evals,
        100.0 * inc.gate_evals as f64 / cold.gate_evals.max(1) as f64
    );
    if let Some(path) = &json {
        let snapshot = bench_json(&[rerun], scale, threads, lanes.lanes() as usize);
        if let Err(e) = std::fs::write(path, &snapshot) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// `history [PATH] [--limit N]`: renders the per-PR counter trajectory
/// recorded in `BENCH_history.jsonl`; `--limit` keeps only the newest
/// `N` records.
fn history_view(args: &[String]) -> ExitCode {
    let mut path: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--limit" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --limit needs an integer value");
                    return ExitCode::FAILURE;
                };
                limit = Some(v);
            }
            other => path = Some(other.to_string()),
        }
    }
    let path = path.as_deref().unwrap_or("BENCH_history.jsonl");
    let table = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))
        .and_then(|text| fscan_bench::parse_history(&text))
        .map(|points| {
            let tail = limit
                .map(|n| &points[points.len().saturating_sub(n)..])
                .unwrap_or(&points);
            fscan_bench::history_table(tail)
        });
    match table {
        Ok(table) => {
            print!("{table}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `check-baseline BASELINE CURRENT [--tolerance PCT]
/// [--min-faults-dropped N] [--comb-reference REF.json]
/// [--min-comb-speedup R] [--wide-reference REF.json]
/// [--min-classify-speedup R] [--min-verdicts-reused N]
/// [--eco-reference REF.json] [--min-eco-speedup R] [--history PATH]`:
/// compares the per-circuit total `gate_evals` of two `bench_json`
/// snapshots, plus the optional fault-dropping, comb-stage,
/// wide-classification and incremental-ECO gates; on success,
/// `--history` appends a one-line counter record to the per-PR trace
/// file.
fn check_baseline(args: &[String]) -> ExitCode {
    let usage = "usage: reproduce check-baseline BASELINE.json CURRENT.json [--tolerance PCT] [--min-faults-dropped N] [--comb-reference REF.json] [--min-comb-speedup R] [--wide-reference REF.json] [--min-classify-speedup R] [--max-peak-factor R] [--min-verdicts-reused N] [--eco-reference REF.json] [--min-eco-speedup R] [--history PATH]";
    let mut files = Vec::new();
    let mut tolerance = 5.0f64;
    let mut max_peak_factor = 2.0f64;
    let mut min_faults_dropped: Option<u64> = None;
    let mut comb_reference: Option<String> = None;
    let mut min_comb_speedup = 2.0f64;
    let mut wide_reference: Option<String> = None;
    let mut min_classify_speedup = 1.5f64;
    let mut min_verdicts_reused: Option<u64> = None;
    let mut eco_reference: Option<String> = None;
    let mut min_eco_speedup = 4.0f64;
    let mut history: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --tolerance needs a numeric value");
                    return ExitCode::FAILURE;
                };
                tolerance = v;
            }
            "--min-faults-dropped" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-faults-dropped needs an integer value");
                    return ExitCode::FAILURE;
                };
                min_faults_dropped = Some(v);
            }
            "--comb-reference" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --comb-reference needs a snapshot path");
                    return ExitCode::FAILURE;
                };
                comb_reference = Some(v.clone());
            }
            "--min-comb-speedup" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-comb-speedup needs a numeric value");
                    return ExitCode::FAILURE;
                };
                min_comb_speedup = v;
            }
            "--wide-reference" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --wide-reference needs a snapshot path");
                    return ExitCode::FAILURE;
                };
                wide_reference = Some(v.clone());
            }
            "--min-classify-speedup" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-classify-speedup needs a numeric value");
                    return ExitCode::FAILURE;
                };
                min_classify_speedup = v;
            }
            "--max-peak-factor" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --max-peak-factor needs a numeric value");
                    return ExitCode::FAILURE;
                };
                max_peak_factor = v;
            }
            "--min-verdicts-reused" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-verdicts-reused needs an integer value");
                    return ExitCode::FAILURE;
                };
                min_verdicts_reused = Some(v);
            }
            "--eco-reference" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --eco-reference needs a snapshot path");
                    return ExitCode::FAILURE;
                };
                eco_reference = Some(v.clone());
            }
            "--min-eco-speedup" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --min-eco-speedup needs a numeric value");
                    return ExitCode::FAILURE;
                };
                min_eco_speedup = v;
            }
            "--history" => {
                let Some(v) = it.next() else {
                    eprintln!("error: --history needs a file path");
                    return ExitCode::FAILURE;
                };
                history = Some(v.clone());
            }
            _ => files.push(arg.clone()),
        }
    }
    let [base_path, cur_path] = files.as_slice() else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let read_counters = |path: &str| -> Result<fscan_bench::baseline::CircuitCounters, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        fscan_bench::parse_total_counters(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base_all, cur_all) = match (read_counters(base_path), read_counters(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = fscan_bench::counter_totals(&base_all, "gate_evals");
    let cur = fscan_bench::counter_totals(&cur_all, "gate_evals");
    for (name, evals) in &cur {
        match base.iter().find(|(n, _)| n == name) {
            Some((_, b)) => println!(
                "{name}: gate_evals {evals} vs baseline {b} ({:+.1}%)",
                100.0 * (*evals as f64 / (*b).max(1) as f64 - 1.0)
            ),
            None => println!("{name}: gate_evals {evals} (no baseline entry)"),
        }
    }
    let mut failures = fscan_bench::check_regression(&base, &cur, tolerance);
    // Structural counters must not move at all: one topology compilation
    // per pipeline run, whatever the thread count. (Baselines from
    // before the counter existed simply have no entries to compare.)
    failures.extend(fscan_bench::check_exact(
        &fscan_bench::counter_totals(&base_all, "topology_builds"),
        &fscan_bench::counter_totals(&cur_all, "topology_builds"),
        "topology_builds",
    ));
    // Memory gates ride along automatically when both snapshots carry
    // total_mem blocks (older snapshots predate the accounting and are
    // skipped). Arena footprints and cone totals are deterministic and
    // must match exactly; the allocator-observed peak is machine- and
    // thread-sensitive and only bounded loosely.
    let read_mem = |path: &str| -> Option<fscan_bench::baseline::CircuitCounters> {
        let text = std::fs::read_to_string(path).ok()?;
        fscan_bench::parse_total_mem(&text).ok()
    };
    if let (Some(base_mem), Some(cur_mem)) = (read_mem(base_path), read_mem(cur_path)) {
        for key in ["arena_bytes", "cone_total"] {
            failures.extend(fscan_bench::check_exact(
                &fscan_bench::counter_totals(&base_mem, key),
                &fscan_bench::counter_totals(&cur_mem, key),
                key,
            ));
        }
        failures.extend(fscan_bench::check_max_factor(
            &fscan_bench::counter_totals(&base_mem, "peak_bytes"),
            &fscan_bench::counter_totals(&cur_mem, "peak_bytes"),
            "peak_bytes",
            max_peak_factor,
        ));
        println!(
            "memory gates: arena_bytes/cone_total exact, peak_bytes <= {max_peak_factor}x baseline"
        );
    }
    // Verdict-reuse gate: an ECO snapshot must actually carry verdicts
    // forward, not merely recompute cheaply.
    if let Some(min) = min_verdicts_reused {
        let reused = fscan_bench::counter_totals(&cur_all, "verdicts_reused");
        let total: u64 = reused.iter().map(|(_, v)| *v).sum();
        println!("verdicts_reused total {total} (required >= {min})");
        failures.extend(fscan_bench::check_min_total(
            &reused,
            "verdicts_reused",
            min,
        ));
    }
    // ECO gate: the incremental rerun's *total* gate_evals must sit at
    // least `R`x below the committed cold-run reference of the same
    // circuit — the ISSUE's "eco work <= 25% of cold" bar at the
    // default 4x.
    if let Some(ref_path) = &eco_reference {
        match read_counters(ref_path) {
            Ok(reference) => {
                let ref_evals = fscan_bench::counter_totals(&reference, "gate_evals");
                for (name, value) in &cur {
                    if let Some((_, r)) = ref_evals.iter().find(|(n, _)| n == name) {
                        println!(
                            "{name}: eco gate_evals {value} vs cold reference {r} ({:.2}x)",
                            *r as f64 / (*value).max(1) as f64
                        );
                    }
                }
                failures.extend(fscan_bench::check_improvement(
                    &ref_evals,
                    &cur,
                    "eco gate_evals",
                    min_eco_speedup,
                ));
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Fault-dropping gate: the fresh run must actually retire targets
    // through globally simulated vectors, not just stay cheap.
    if let Some(min) = min_faults_dropped {
        let dropped = fscan_bench::counter_totals(&cur_all, "faults_dropped");
        let total: u64 = dropped.iter().map(|(_, v)| *v).sum();
        println!("faults_dropped total {total} (required >= {min})");
        failures.extend(fscan_bench::check_min_total(
            &dropped,
            "faults_dropped",
            min,
        ));
    }
    // Per-stage speedup gates compare the fresh snapshot against
    // *separate* committed reference files — the regular baseline is
    // regenerated and would trivially match itself.
    let read_stage = |path: &str, stage: &str, key: &str| -> Result<Vec<(String, u64)>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let stages = fscan_bench::parse_stage_counters(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok(fscan_bench::stage_counter_totals(&stages, stage, key))
    };
    let mut stage_gate = |ref_path: &str, stage: &str, key: &str, factor: f64| -> Result<(), String> {
        let reference = read_stage(ref_path, stage, key)?;
        let current = read_stage(cur_path, stage, key)?;
        for (name, value) in &current {
            if let Some((_, r)) = reference.iter().find(|(n, _)| n == name) {
                println!(
                    "{name}: {stage} {key} {value} vs reference {r} ({:.2}x)",
                    *r as f64 / (*value).max(1) as f64
                );
            }
        }
        failures.extend(fscan_bench::check_improvement(
            &reference,
            &current,
            &format!("{stage} {key}"),
            factor,
        ));
        Ok(())
    };
    // Comb-stage gate: event-driven PODEM resimulation plus global
    // fault dropping against the committed pre-ATPG reference.
    let comb_gate = comb_reference
        .iter()
        .try_for_each(|p| stage_gate(p, "comb", "gate_evals", min_comb_speedup));
    // Wide-classification gate: the 256-lane rail must keep amortizing
    // union-cone walks against the committed 64-lane reference. The
    // gate_evals floor is capped by cone overlap between merged words
    // (the no-overlap ideal is 4x); implication_words — words actually
    // pushed through the kernel — must improve at least 2x.
    let wide_gate = wide_reference.iter().try_for_each(|p| {
        stage_gate(p, "classify", "gate_evals", min_classify_speedup)?;
        stage_gate(p, "classify", "implication_words", 2.0)
    });
    if let Err(e) = comb_gate.and(wide_gate) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    if failures.is_empty() {
        println!("baseline check passed (tolerance {tolerance}%, topology_builds exact)");
        if let Some(path) = &history {
            return append_history(path, cur_path, &cur_all);
        }
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        ExitCode::FAILURE
    }
}

/// Appends one [`fscan_bench::history_record`] line for the current
/// snapshot to the per-PR counter trace (`BENCH_history.jsonl`). The
/// git revision comes from `git rev-parse`; outside a repository (or
/// without git on PATH) it degrades to `unknown` rather than failing
/// the gate. The rail width is read back from the snapshot's own
/// `"lanes"` header (snapshots from before the header existed record
/// the 64-lane width they were generated at).
fn append_history(
    path: &str,
    cur_path: &str,
    circuits: &fscan_bench::baseline::CircuitCounters,
) -> ExitCode {
    use std::io::Write;

    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let lanes = std::fs::read_to_string(cur_path)
        .ok()
        .and_then(|text| fscan::json::parse(&text).ok())
        .and_then(|doc| doc.get("lanes").and_then(|v| v.as_u64()))
        .unwrap_or(64);
    let line = fscan_bench::history_record(&rev, lanes, circuits);
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    match appended {
        Ok(()) => {
            println!("appended counter record for {rev} to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot append to {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("check-baseline") => return check_baseline(&argv[1..]),
        Some("stress") => return stress(&argv[1..]),
        Some("eco") => return eco(&argv[1..]),
        Some("history") => return history_view(&argv[1..]),
        _ => {}
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: reproduce [table1|table2|table3|figure5|timing|all] [--scale F] [--only NAME] [--threads N] [--lanes 64|256] [--json [PATH]]\n       reproduce stress [--gates N] [--fault-sample N] [--chains N] [--seed S] [--threads N] [--lanes 64|256] [--json [PATH]]\n       reproduce eco [--scale F] [--only NAME] [--threads N] [--lanes 64|256] [--json [PATH]]\n       reproduce history [PATH] [--limit N]\n       reproduce check-baseline BASELINE.json CURRENT.json [--tolerance PCT]"
            );
            return ExitCode::FAILURE;
        }
    };
    let reports = if opts.what != "table1" || opts.json.is_some() {
        pipeline_reports(&opts)
    } else {
        Vec::new()
    };
    match opts.what.as_str() {
        "table1" => print_table1(&opts),
        "table2" => print_table2(&reports),
        "table3" => print_table3(&reports),
        "figure5" => print_figure5(&reports),
        "timing" => print_timing(&reports),
        _ => {
            print_table1(&opts);
            print_table2(&reports);
            print_table3(&reports);
            print_figure5(&reports);
            print_timing(&reports);
        }
    }
    if let Some(path) = &opts.json {
        let json = bench_json(&reports, opts.scale, opts.threads, opts.lanes.lanes() as usize);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
