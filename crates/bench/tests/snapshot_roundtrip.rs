//! The committed benchmark snapshots are the ground truth the canonical
//! JSON printer must reproduce: `fscan::json::parse` followed by
//! `render_pretty` (or `render_compact` for history records) has to be
//! the identity on every file checked into the repository. This is the
//! acceptance gate for replacing the old ad-hoc emitters — if the
//! printer drifted by a single byte, `reproduce --json` would produce
//! spurious diffs against the committed baselines.

use std::fs;
use std::path::Path;

fn repo_file(name: &str) -> Option<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    fs::read_to_string(path).ok()
}

#[test]
fn committed_baselines_rerender_byte_identically() {
    let mut checked = 0;
    for name in [
        "BENCH_baseline.json",
        "BENCH_baseline_w64.json",
        "BENCH_baseline_pre_atpg.json",
    ] {
        let Some(text) = repo_file(name) else { continue };
        let doc = fscan::json::parse(&text)
            .unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        assert_eq!(doc.render_pretty(), text, "{name} is not a printer fixed point");
        checked += 1;
    }
    assert!(checked > 0, "no committed baseline found next to the workspace");
}

#[test]
fn committed_history_records_rerender_byte_identically() {
    let Some(text) = repo_file("BENCH_history.jsonl") else {
        return;
    };
    for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let doc = fscan::json::parse(line)
            .unwrap_or_else(|e| panic!("history line {i} does not parse: {e}"));
        assert_eq!(
            doc.render_compact(),
            line,
            "history line {i} is not a compact-printer fixed point"
        );
    }
}

#[test]
fn committed_baseline_counters_match_the_library_parsers() {
    // The public counter parsers (used by `check-baseline`) and the raw
    // document agree on every total.
    let Some(text) = repo_file("BENCH_baseline.json") else {
        return;
    };
    let totals = fscan_bench::parse_total_counters(&text).expect("baseline parses");
    assert!(!totals.is_empty());
    let doc = fscan::json::parse(&text).unwrap();
    let circuits = doc.get("circuits").and_then(|v| v.as_array()).unwrap();
    assert_eq!(circuits.len(), totals.len());
    for ((name, counters), circuit) in totals.iter().zip(circuits) {
        assert_eq!(circuit.get("name").and_then(|v| v.as_str()), Some(name.as_str()));
        let evals = circuit
            .get("total_counters")
            .and_then(|v| v.get("gate_evals"))
            .and_then(|v| v.as_u64())
            .unwrap();
        let parsed = counters.iter().find(|(k, _)| k == "gate_evals").unwrap().1;
        assert_eq!(evals, parsed, "gate_evals mismatch for {name}");
    }
}
