//! Criterion benchmarks for the substrate engines: simulation, fault
//! simulation, implication, and the two ATPG engines. These are not
//! paper tables; they size the building blocks the paper's CPU columns
//! are made of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fscan_atpg::{Podem, PodemConfig, SeqAtpg, SeqAtpgConfig};
use fscan_fault::{all_faults, collapse};
use fscan_netlist::{generate, GeneratorConfig};
use fscan_sim::{CombEvaluator, ImplicationEngine, ParallelFaultSim, SeqSim, V3};

fn bench_comb_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("comb_sim");
    for gates in [500usize, 2000] {
        let circuit = generate(&GeneratorConfig::new("b", 1).gates(gates).dffs(32));
        let eval = CombEvaluator::new(&circuit);
        let mut values = vec![V3::X; circuit.num_nodes()];
        for (i, &pi) in circuit.inputs().iter().enumerate() {
            values[pi.index()] = V3::from(i % 2 == 0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(gates), &gates, |b, _| {
            b.iter(|| eval.eval(&circuit, &mut values));
        });
    }
    group.finish();
}

fn bench_fault_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_sim_64_faults_32_cycles");
    let circuit = generate(&GeneratorConfig::new("b", 2).inputs(12).gates(800).dffs(24));
    let faults: Vec<_> = collapse(&circuit, &all_faults(&circuit))
        .into_iter()
        .take(64)
        .collect();
    let vectors: Vec<Vec<V3>> = (0..32)
        .map(|t| {
            (0..circuit.inputs().len())
                .map(|k| V3::from((t + k) % 3 == 0))
                .collect()
        })
        .collect();
    let init = vec![V3::X; circuit.dffs().len()];
    group.bench_function("serial", |b| {
        let sim = SeqSim::new(&circuit);
        b.iter(|| sim.fault_sim(&vectors, &init, &faults));
    });
    group.bench_function("parallel", |b| {
        let sim = ParallelFaultSim::new(&circuit);
        b.iter(|| sim.fault_sim(&vectors, &init, &faults));
    });
    group.finish();
}

fn bench_implication(c: &mut Criterion) {
    let circuit = generate(&GeneratorConfig::new("b", 3).gates(2000).dffs(64));
    let eval = CombEvaluator::new(&circuit);
    let mut good = vec![V3::X; circuit.num_nodes()];
    for (i, &pi) in circuit.inputs().iter().enumerate() {
        good[pi.index()] = V3::from(i % 2 == 0);
    }
    eval.eval(&circuit, &mut good);
    let faults = collapse(&circuit, &all_faults(&circuit));
    c.bench_function("implication_cone_per_fault", |b| {
        let mut engine = ImplicationEngine::new(&circuit, &eval);
        let mut idx = 0usize;
        b.iter(|| {
            let f = faults[idx % faults.len()];
            idx += 1;
            engine.run(&circuit, &good, f)
        });
    });
}

fn bench_podem(c: &mut Criterion) {
    let circuit = generate(&GeneratorConfig::new("b", 4).inputs(16).gates(1000).dffs(16));
    let faults = collapse(&circuit, &all_faults(&circuit));
    let controllable: Vec<_> = circuit
        .inputs()
        .iter()
        .chain(circuit.dffs().iter())
        .copied()
        .collect();
    let mut observable: Vec<_> = circuit.outputs().to_vec();
    observable.extend(circuit.dffs().iter().map(|&ff| circuit.node(ff).fanin()[0]));
    c.bench_function("podem_per_fault_fullscan_view", |b| {
        let podem = Podem::new(&circuit, controllable.clone(), vec![], observable.clone());
        let cfg = PodemConfig::default();
        let mut idx = 0usize;
        b.iter(|| {
            let f = faults[idx % faults.len()];
            idx += 1;
            podem.run(&[f], &cfg)
        });
    });
}

fn bench_seq_atpg(c: &mut Criterion) {
    let circuit = generate(&GeneratorConfig::new("b", 5).inputs(10).gates(300).dffs(10));
    let faults = collapse(&circuit, &all_faults(&circuit));
    c.bench_function("seq_atpg_4_frames", |b| {
        let atpg = SeqAtpg::new(&circuit).observable_ffs((0..10).collect());
        let cfg = SeqAtpgConfig {
            max_frames: 4,
            backtrack_limit: 2_000,
            step_limit: 10_000,
        };
        let mut idx = 0usize;
        b.iter(|| {
            let f = faults[idx % faults.len()];
            idx += 1;
            atpg.run(f, &cfg)
        });
    });
}

criterion_group!(
    benches,
    bench_comb_sim,
    bench_fault_sim,
    bench_implication,
    bench_podem,
    bench_seq_atpg
);
criterion_main!(benches);
