//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * implication-based classification vs brute-force fault simulation of
//!   the alternating sequence (the paper's screening step exists to
//!   avoid exactly that brute force);
//! * grouped step-3 circuits vs one circuit per fault (paper §5: "to
//!   minimize the number of times that sequential ATPG has to be run");
//! * 64-way bit-parallel fault simulation vs the serial reference.

use criterion::{criterion_group, criterion_main, Criterion};

use fscan::{
    alternating_vectors, classify_faults, Category, ChainLocation, Classifier, CombPhase,
    CombPhaseConfig,
    DistParams, SeqPhase,
};
use fscan_atpg::SeqAtpgConfig;
use fscan_bench::{build_design, PAPER_SUITE};
use fscan_fault::{all_faults, collapse, Fault};
use fscan_sim::{ParallelFaultSim, SeqSim, V3};

const SCALE: f64 = 0.08;

fn design() -> fscan_scan::ScanDesign {
    let c = PAPER_SUITE.iter().find(|c| c.name == "s5378").unwrap();
    build_design(c, SCALE)
}

/// Classification (implication cones) vs exhaustively fault-simulating
/// the alternating sequence over the whole fault universe to find the
/// chain-affecting faults.
fn ablation_classification(c: &mut Criterion) {
    let design = design();
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    let mut group = c.benchmark_group("ablation_find_chain_faults");
    group.sample_size(10);
    group.bench_function("implication_classification", |b| {
        b.iter(|| {
            let mut cls = Classifier::new(&design);
            faults.iter().map(|&f| cls.classify(f)).count()
        });
    });
    group.bench_function("bruteforce_alternating_fault_sim", |b| {
        let vectors = alternating_vectors(&design);
        let init = vec![V3::X; design.circuit().dffs().len()];
        let sim = ParallelFaultSim::new(design.circuit());
        b.iter(|| sim.fault_sim(&vectors, &init, &faults));
    });
    group.finish();
}

/// Step-3 with the paper's grouping vs every fault getting its own
/// maximally-enhanced circuit (DIST parameters forcing singletons).
fn ablation_grouping(c: &mut Criterion) {
    let design = design();
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    let classified = classify_faults(&design, &faults);
    let hard: Vec<Fault> = classified
        .iter()
        .filter(|cf| cf.category == Category::Hard)
        .map(|cf| cf.fault)
        .collect();
    let comb = CombPhase::new(&design, CombPhaseConfig::default()).run(&hard);
    if comb.remaining.is_empty() {
        return;
    }
    let locs: Vec<Vec<ChainLocation>> = comb
        .remaining
        .iter()
        .map(|f| {
            classified
                .iter()
                .find(|cf| cf.fault == *f)
                .map(|cf| cf.locations.clone())
                .unwrap_or_default()
        })
        .collect();
    let frames = design.max_chain_len() + 4;
    let cfg = SeqAtpgConfig {
        max_frames: frames,
        ..SeqAtpgConfig::default()
    };
    let final_cfg = SeqAtpgConfig {
        max_frames: frames + 4,
        backtrack_limit: 50_000,
        step_limit: 60_000,
    };
    let mut group = c.benchmark_group("ablation_step3_grouping");
    group.sample_size(10);
    group.bench_function("paper_grouping", |b| {
        let phase = SeqPhase::new(
            &design,
            DistParams::scaled(design.max_chain_len()),
            cfg,
            final_cfg,
        );
        b.iter(|| phase.run(&comb.remaining, &locs));
    });
    group.bench_function("one_circuit_per_fault", |b| {
        // dist = 0 packs nothing; large = 0 routes every multi-location
        // fault to group 1 → singleton circuits throughout.
        let phase = SeqPhase::new(
            &design,
            DistParams {
                large: 0,
                med: 0,
                dist: 0,
            },
            cfg,
            final_cfg,
        );
        b.iter(|| phase.run(&comb.remaining, &locs));
    });
    group.finish();
}

/// Serial vs 64-way bit-parallel sequential fault simulation on the
/// alternating sequence.
fn ablation_parallel_fault_sim(c: &mut Criterion) {
    let design = design();
    let faults: Vec<Fault> = collapse(design.circuit(), &all_faults(design.circuit()))
        .into_iter()
        .take(256)
        .collect();
    let vectors = alternating_vectors(&design);
    let init = vec![V3::X; design.circuit().dffs().len()];
    let mut group = c.benchmark_group("ablation_fault_sim_bitparallel");
    group.sample_size(10);
    group.bench_function("parallel64", |b| {
        let sim = ParallelFaultSim::new(design.circuit());
        b.iter(|| sim.fault_sim(&vectors, &init, &faults));
    });
    group.bench_function("serial", |b| {
        let sim = SeqSim::new(design.circuit());
        b.iter(|| sim.fault_sim(&vectors, &init, &faults));
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_classification,
    ablation_grouping,
    ablation_parallel_fault_sim
);
criterion_main!(benches);
