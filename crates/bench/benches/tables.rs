//! Criterion benchmarks that time the pieces behind each paper table.
//!
//! * Table 1 — suite construction (generation + TPI scan insertion).
//! * Table 2 — fault classification + the alternating sequence.
//! * Table 3 left — combinational ATPG + sequential fault simulation.
//! * Table 3 right — grouped sequential ATPG.
//!
//! The absolute numbers regenerate with `cargo run -p fscan-bench --bin
//! reproduce`; these benches track the cost of each phase on a fixed
//! mid-size suite circuit so regressions are visible.

use criterion::{criterion_group, criterion_main, Criterion};

use fscan::{
    classify_faults, AlternatingPhase, Category, ChainLocation, Classifier, CombPhase,
    CombPhaseConfig, DistParams, SeqPhase,
};
use fscan_atpg::SeqAtpgConfig;
use fscan_bench::{build_design, PAPER_SUITE};
use fscan_fault::{all_faults, collapse, Fault};

const SCALE: f64 = 0.08;

fn s5378() -> &'static fscan_bench::SuiteCircuit {
    PAPER_SUITE.iter().find(|c| c.name == "s5378").unwrap()
}

fn bench_table1_build(c: &mut Criterion) {
    c.bench_function("table1_generate_and_insert_scan", |b| {
        b.iter(|| build_design(s5378(), SCALE));
    });
}

fn bench_table2_classification(c: &mut Criterion) {
    let design = build_design(s5378(), SCALE);
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    c.bench_function("table2_classify_all_faults", |b| {
        b.iter(|| {
            let mut cls = Classifier::new(&design);
            faults.iter().map(|&f| cls.classify(f)).count()
        });
    });
    let affected: Vec<Fault> = classify_faults(&design, &faults)
        .into_iter()
        .filter(|cf| cf.category != Category::Unaffected)
        .map(|cf| cf.fault)
        .collect();
    c.bench_function("table2_alternating_fault_sim", |b| {
        let phase = AlternatingPhase::new(&design);
        b.iter(|| phase.run(&affected));
    });
}

fn bench_table3_comb_phase(c: &mut Criterion) {
    let design = build_design(s5378(), SCALE);
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    let hard: Vec<Fault> = classify_faults(&design, &faults)
        .into_iter()
        .filter(|cf| cf.category == Category::Hard)
        .map(|cf| cf.fault)
        .collect();
    let mut group = c.benchmark_group("table3_comb_phase");
    group.sample_size(10);
    group.bench_function("comb_atpg_plus_seq_fault_sim", |b| {
        let phase = CombPhase::new(&design, CombPhaseConfig::default());
        b.iter(|| phase.run(&hard));
    });
    group.finish();
}

fn bench_table3_seq_phase(c: &mut Criterion) {
    let design = build_design(s5378(), SCALE);
    let faults = collapse(design.circuit(), &all_faults(design.circuit()));
    let classified = classify_faults(&design, &faults);
    let hard: Vec<Fault> = classified
        .iter()
        .filter(|cf| cf.category == Category::Hard)
        .map(|cf| cf.fault)
        .collect();
    let comb = CombPhase::new(&design, CombPhaseConfig::default()).run(&hard);
    let locs: Vec<Vec<ChainLocation>> = comb
        .remaining
        .iter()
        .map(|f| {
            classified
                .iter()
                .find(|cf| cf.fault == *f)
                .map(|cf| cf.locations.clone())
                .unwrap_or_default()
        })
        .collect();
    if comb.remaining.is_empty() {
        return;
    }
    let mut group = c.benchmark_group("table3_seq_phase");
    group.sample_size(10);
    group.bench_function("grouped_sequential_atpg", |b| {
        let frames = design.max_chain_len() + 4;
        let phase = SeqPhase::new(
            &design,
            DistParams::scaled(design.max_chain_len()),
            SeqAtpgConfig {
                max_frames: frames,
                ..SeqAtpgConfig::default()
            },
            SeqAtpgConfig {
                max_frames: frames + 4,
                backtrack_limit: 50_000,
                step_limit: 60_000,
            },
        );
        b.iter(|| phase.run(&comb.remaining, &locs));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1_build,
    bench_table2_classification,
    bench_table3_comb_phase,
    bench_table3_seq_phase
);
criterion_main!(benches);
