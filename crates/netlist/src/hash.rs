//! Stable content hashing for netlist payloads.
//!
//! The serving layer keys its compiled-design cache by the *content* of
//! an uploaded `.bench` netlist (plus the scan parameters that shape the
//! compiled design), so two uploads of the same file share one
//! [`CompiledTopology`](crate::CompiledTopology) no matter how they were
//! transported. `std::hash::DefaultHasher` is explicitly documented as
//! unstable across releases, so the key uses a fixed algorithm instead:
//! 64-bit FNV-1a, implemented here in a dozen lines. The hash is a cache
//! key, not a cryptographic digest — collisions are astronomically
//! unlikely at cache sizes (tens of entries) and cost only a stale
//! verdict for the colliding upload, never memory unsafety.

/// Incremental 64-bit FNV-1a hasher with a stable, documented algorithm
/// (unlike `DefaultHasher`, the output never changes across toolchains),
/// so it can key persistent or cross-process caches.
///
/// # Examples
///
/// ```
/// use fscan_netlist::Fnv1a64;
///
/// let mut h = Fnv1a64::new();
/// h.write(b"INPUT(a)\n");
/// h.write_u64(2); // e.g. a chain count that shapes the compiled design
/// let key = h.finish();
/// assert_ne!(key, Fnv1a64::new().finish());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fnv1a64(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv1a64 {
        Fnv1a64(FNV_OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` into the hash (little-endian), for mixing
    /// non-textual key components such as scan chain counts.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a64 {
    fn default() -> Fnv1a64 {
        Fnv1a64::new()
    }
}

/// One-shot FNV-1a over a byte slice — the common case of hashing an
/// uploaded netlist body.
///
/// # Examples
///
/// ```
/// use fscan_netlist::content_hash64;
///
/// let a = content_hash64(b"INPUT(a)\n");
/// assert_eq!(a, content_hash64(b"INPUT(a)\n"));
/// assert_ne!(a, content_hash64(b"INPUT(b)\n"));
/// ```
pub fn content_hash64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(content_hash64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), content_hash64(b"foobar"));
    }

    #[test]
    fn u64_components_change_the_key() {
        let mut one = Fnv1a64::new();
        one.write(b"netlist");
        one.write_u64(1);
        let mut two = Fnv1a64::new();
        two.write(b"netlist");
        two.write_u64(2);
        assert_ne!(one.finish(), two.finish());
    }
}
