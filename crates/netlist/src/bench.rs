//! ISCAS'89 `.bench` format reader and writer.
//!
//! The `.bench` dialect accepted here covers the ISCAS'85/'89 benchmark
//! distributions: `INPUT(x)` / `OUTPUT(x)` declarations and
//! `y = KIND(a, b, ...)` gate lines with kinds `AND OR NAND NOR NOT BUF
//! BUFF XOR XNOR DFF CONST0 CONST1`. `#` starts a comment.
//!
//! Parsing is streaming and line-oriented (see
//! [`BenchReader`](crate::BenchReader) /
//! [`NetlistBuilder`](crate::NetlistBuilder)); [`parse_bench`] is the
//! whole-text convenience wrapper.

use std::error::Error;
use std::fmt;

use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;
use crate::reader::BenchReader;

/// Error produced when parsing a `.bench` description fails.
///
/// Carries both the 1-based line number and the byte offset of the
/// offending line's first byte, so streaming consumers can point back
/// into large inputs without re-counting lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    line: usize,
    offset: u64,
    message: String,
}

impl ParseBenchError {
    pub(crate) fn at(line: usize, offset: u64, message: impl Into<String>) -> ParseBenchError {
        ParseBenchError {
            line,
            offset,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Byte offset of the offending line's first byte in the input.
    pub fn offset(&self) -> u64 {
        self.offset
    }
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBenchError {}

pub(crate) fn kind_from_keyword(kw: &str) -> Option<GateKind> {
    match kw.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "NAND" => Some(GateKind::Nand),
        "OR" => Some(GateKind::Or),
        "NOR" => Some(GateKind::Nor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUF" | "BUFF" => Some(GateKind::Buf),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        "DFF" => Some(GateKind::Dff),
        "CONST0" => Some(GateKind::Const0),
        "CONST1" => Some(GateKind::Const1),
        _ => None,
    }
}

/// Parses a circuit from ISCAS'89 `.bench` text.
///
/// Signals may be used before they are defined; the streaming builder
/// patches forward references as their definitions arrive. Nodes are
/// created in file order. The circuit is validated before being
/// returned.
///
/// This is a thin wrapper over [`BenchReader`](crate::BenchReader): one
/// `feed` of the whole text followed by `finish`. Feeding the same text
/// in arbitrary chunks produces a bit-identical circuit and identical
/// errors (see the differential oracle in `tests/props.rs`).
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate kinds,
/// undefined signals, duplicate definitions, or structural violations
/// (e.g. combinational cycles).
///
/// # Examples
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// s = DFF(y)
/// y = NAND(a, b, s)
/// ";
/// let c = fscan_netlist::parse_bench(src, "toy")?;
/// assert_eq!(c.inputs().len(), 2);
/// assert_eq!(c.dffs().len(), 1);
/// # Ok::<(), fscan_netlist::ParseBenchError>(())
/// ```
pub fn parse_bench(text: &str, name: &str) -> Result<Circuit, ParseBenchError> {
    let mut reader = BenchReader::new(name);
    reader.feed(text)?;
    reader.finish()
}

/// Serializes a circuit to ISCAS'89 `.bench` text.
///
/// Nodes without names are given synthetic `n<i>` names. The output can
/// be fed back to [`parse_bench`] to reconstruct an isomorphic circuit.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{parse_bench, write_bench, Circuit, GateKind};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// c.mark_output(g);
/// let text = write_bench(&c);
/// let back = parse_bench(&text, "t")?;
/// assert_eq!(back.num_gates(), 1);
/// # Ok::<(), fscan_netlist::ParseBenchError>(())
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let name_of = |id: NodeId| -> String {
        circuit
            .node(id)
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("n{}", id.index()))
    };
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", name_of(i));
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", name_of(o));
    }
    for (id, node) in circuit.iter() {
        let Some(kw) = node.kind().bench_keyword() else {
            continue; // primary input, already declared
        };
        let args: Vec<String> = node.fanin().iter().map(|&f| name_of(f)).collect();
        let _ = writeln!(out, "{} = {}({})", name_of(id), kw, args.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "
# small sequential circuit in the s27 spirit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
";

    #[test]
    fn parses_sequential_circuit() {
        let c = parse_bench(S27_LIKE, "s27").unwrap();
        assert_eq!(c.inputs().len(), 4);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.dffs().len(), 3);
        assert_eq!(c.num_gates(), 10);
        c.validate().unwrap();
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let c = parse_bench(S27_LIKE, "s27").unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench(&text, "s27").unwrap();
        assert_eq!(c.inputs().len(), c2.inputs().len());
        assert_eq!(c.outputs().len(), c2.outputs().len());
        assert_eq!(c.dffs().len(), c2.dffs().len());
        assert_eq!(c.num_gates(), c2.num_gates());
        // Outputs must drive same-named nodes.
        let out1 = c.node(c.outputs()[0]).name().unwrap();
        let out2 = c2.node(c2.outputs()[0]).name().unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn rejects_zero_fanin_gate() {
        // `AND()` must be a parse error, not a constant-1 node: the
        // three-valued kernel's fold identities give zero-fanin And = 1
        // and Or = 0, so letting one through would invent logic.
        for kind in ["AND", "OR", "NAND", "NOR", "XOR"] {
            let src = format!("INPUT(a)\ny = {kind}()\nOUTPUT(y)\n");
            let err = parse_bench(&src, "t").unwrap_err();
            assert!(err.to_string().contains("no inputs"), "{kind}: {err}");
            assert_eq!(err.line(), 2, "{kind}");
            assert_eq!(err.offset(), 9, "{kind}");
        }
    }

    #[test]
    fn rejects_fixed_arity_mismatch() {
        // A typed error with the offending line, not an `add_gate`
        // panic deep inside the builder.
        let err = parse_bench("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)\n", "t")
            .unwrap_err();
        assert!(err.to_string().contains("exactly 1"), "{err}");
        assert_eq!(err.line(), 3);
        assert_eq!(err.offset(), 18);
        let err = parse_bench("INPUT(a)\ny = BUF(a, a)\nOUTPUT(y)\n", "t").unwrap_err();
        assert!(err.to_string().contains("exactly 1"), "{err}");
    }

    #[test]
    fn rejects_unknown_kind() {
        let err = parse_bench("x = FROB(a)\nINPUT(a)\n", "t").unwrap_err();
        assert!(err.to_string().contains("unknown gate kind"));
        assert_eq!(err.line(), 1);
        assert_eq!(err.offset(), 0);
    }

    #[test]
    fn rejects_undefined_signal() {
        let err = parse_bench("INPUT(a)\nOUTPUT(z)\ny = AND(a, q)\n", "t").unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let err = parse_bench("INPUT(a)\na = NOT(a)\n", "t").unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse_bench("# hi\n\nINPUT(a) # trailing\nOUTPUT(a)\n", "t").unwrap();
        assert_eq!(c.inputs().len(), 1);
    }

    #[test]
    fn forward_references_ok() {
        let c = parse_bench("INPUT(a)\ny = AND(a, z)\nz = NOT(a)\nOUTPUT(y)\n", "t").unwrap();
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn nodes_are_created_in_file_order() {
        // The streaming builder creates nodes as their lines arrive
        // (the old parser reordered inputs/flip-flops first).
        let c = parse_bench("INPUT(a)\ny = NOT(a)\ns = DFF(y)\nOUTPUT(s)\n", "t").unwrap();
        let a = c.find_by_name("a").unwrap();
        let y = c.find_by_name("y").unwrap();
        let s = c.find_by_name("s").unwrap();
        assert!(a.index() < y.index());
        assert!(y.index() < s.index());
    }

    #[test]
    fn const_nodes() {
        let c = parse_bench("INPUT(a)\nk = CONST1()\ny = AND(a, k)\nOUTPUT(y)\n", "t").unwrap();
        assert_eq!(c.num_gates(), 1);
    }
}
