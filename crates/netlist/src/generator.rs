//! Seeded generation of ISCAS-like synthetic sequential circuits.
//!
//! The DATE'98 paper evaluates on the 12 largest ISCAS'89 benchmarks.
//! Those netlists are not redistributable here, so the benchmark harness
//! substitutes circuits produced by this generator, matched per circuit
//! to the paper's gate/flip-flop counts (see `DESIGN.md`). The generator
//! is deterministic for a given configuration, so every experiment is
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// Configuration of the synthetic circuit generator.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
///
/// let cfg = GeneratorConfig::new("demo", 42)
///     .inputs(8)
///     .gates(120)
///     .dffs(12);
/// let c = generate(&cfg);
/// assert_eq!(c.dffs().len(), 12);
/// c.validate().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    name: String,
    seed: u64,
    inputs: usize,
    gates: usize,
    dffs: usize,
    max_fanin: usize,
    locality: usize,
}

impl GeneratorConfig {
    /// Creates a configuration with the given circuit name and RNG seed.
    ///
    /// Defaults: 8 inputs, 100 gates, 8 flip-flops, max fanin 4,
    /// locality window 48.
    pub fn new(name: impl Into<String>, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            name: name.into(),
            seed,
            inputs: 8,
            gates: 100,
            dffs: 8,
            max_fanin: 4,
            locality: 48,
        }
    }

    /// Sets the number of primary inputs (min 1).
    pub fn inputs(mut self, n: usize) -> GeneratorConfig {
        self.inputs = n.max(1);
        self
    }

    /// Sets the number of combinational gates (min 4).
    pub fn gates(mut self, n: usize) -> GeneratorConfig {
        self.gates = n.max(4);
        self
    }

    /// Sets the number of flip-flops.
    pub fn dffs(mut self, n: usize) -> GeneratorConfig {
        self.dffs = n;
        self
    }

    /// Sets the maximum gate fanin (clamped to 2..=8).
    pub fn max_fanin(mut self, n: usize) -> GeneratorConfig {
        self.max_fanin = n.clamp(2, 8);
        self
    }

    /// Sets the locality window: how far back (in creation order) a
    /// gate prefers to pick its fanins. Small windows give deep,
    /// narrow circuits; large windows give shallow, wide ones.
    pub fn locality(mut self, n: usize) -> GeneratorConfig {
        self.locality = n.max(4);
        self
    }
}

/// ISCAS'89-style gate mix: mostly NAND/NOR/AND/OR with a sprinkle of
/// inverters and a few XORs (the SIS `nand-nor` mapping in the paper
/// yields a similar distribution).
fn pick_kind(rng: &mut StdRng) -> GateKind {
    match rng.gen_range(0..100u32) {
        0..=24 => GateKind::Nand,
        25..=49 => GateKind::Nor,
        50..=64 => GateKind::And,
        65..=79 => GateKind::Or,
        80..=91 => GateKind::Not,
        92..=95 => GateKind::Buf,
        96..=97 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Generates a random sequential circuit per the configuration.
///
/// Properties guaranteed by construction:
/// * no combinational cycles (fanins are always earlier nodes, with
///   flip-flop outputs usable everywhere);
/// * every flip-flop's D input is driven by combinational logic, so
///   FF-to-FF combinational paths exist for TPI to exploit;
/// * every gate either fans out to another gate/flip-flop or is promoted
///   to a primary output (no dangling logic, so no trivially
///   undetectable fault sites).
pub fn generate(config: &GeneratorConfig) -> Circuit {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed_5ca2_c4a1_u64);
    let mut c = Circuit::new(config.name.clone());

    let mut pool: Vec<NodeId> = Vec::new();
    for i in 0..config.inputs {
        pool.push(c.add_input(format!("pi{i}")));
    }
    let mut ffs = Vec::with_capacity(config.dffs);
    for i in 0..config.dffs {
        let ff = c.add_dff_placeholder(format!("ff{i}"));
        ffs.push(ff);
        pool.push(ff);
    }

    // Track which pool entries have been consumed as fanins, to bias
    // selection toward unused nodes and avoid dangling logic.
    let mut fanout_count: Vec<u32> = vec![0; pool.len() + config.gates];

    let mut gates = Vec::with_capacity(config.gates);
    for i in 0..config.gates {
        let kind = pick_kind(&mut rng);
        let arity = match kind.fixed_arity() {
            Some(n) => n,
            None => {
                // 2-input heavy with a tail, bounded by max_fanin.
                let r: f64 = rng.gen();
                let n = if r < 0.62 {
                    2
                } else if r < 0.88 {
                    3
                } else {
                    4
                };
                n.min(config.max_fanin)
            }
        };
        let mut fanin = Vec::with_capacity(arity);
        for _ in 0..arity {
            let src = pick_source(&mut rng, &pool, &fanout_count, config.locality);
            fanout_count[src.index()] += 1;
            fanin.push(pool[pos_of(&pool, src)]);
        }
        let g = c.add_gate(kind, fanin, format!("g{i}"));
        gates.push(g);
        pool.push(g);
    }

    // Wire each flip-flop's D pin to a late gate (bias toward the end so
    // state depends on deep logic), preferring unused gates.
    for &ff in &ffs {
        let g = if gates.is_empty() {
            pool[rng.gen_range(0..config.inputs)]
        } else {
            let lo = gates.len() * 3 / 4;
            let idx = rng.gen_range(lo..gates.len());
            gates[idx]
        };
        fanout_count[g.index()] += 1;
        c.set_dff_input(ff, g).expect("ff placeholder");
    }

    // Primary outputs: a handful of random gates plus every gate that
    // ended up with no reader (keeps all fault sites observable in
    // principle, like real benchmarks where PO counts are large).
    let n_outputs = (config.gates / 12).clamp(1, 64);
    for _ in 0..n_outputs {
        let g = gates[rng.gen_range(0..gates.len())];
        c.mark_output(g);
        fanout_count[g.index()] += 1;
    }
    for &g in &gates {
        if fanout_count[g.index()] == 0 {
            c.mark_output(g);
        }
    }

    debug_assert!(c.validate().is_ok());
    c
}

fn pos_of(pool: &[NodeId], id: NodeId) -> usize {
    // Pool is creation-ordered and dense: position == id index.
    debug_assert_eq!(pool[id.index()], id);
    id.index()
}

fn pick_source(rng: &mut StdRng, pool: &[NodeId], fanout: &[u32], locality: usize) -> NodeId {
    // 70%: pick within the locality window at the end of the pool;
    // 30%: pick anywhere (long wires / global signals). Within the
    // chosen range, give two tries preferring a node with no fanout yet.
    let n = pool.len();
    let range_lo = if rng.gen_bool(0.7) && n > locality {
        n - locality
    } else {
        0
    };
    let mut best = pool[rng.gen_range(range_lo..n)];
    if fanout[best.index()] > 0 {
        let cand = pool[rng.gen_range(range_lo..n)];
        if fanout[cand.index()] == 0 {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::FanoutTable;

    #[test]
    fn deterministic_for_seed() {
        let cfg = GeneratorConfig::new("d", 7).gates(200).dffs(16);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_nodes(), b.num_nodes());
        for (ia, ib) in a.iter().zip(b.iter()) {
            assert_eq!(ia.1.kind(), ib.1.kind());
            assert_eq!(ia.1.fanin(), ib.1.fanin());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::new("a", 1).gates(200));
        let b = generate(&GeneratorConfig::new("b", 2).gates(200));
        let same = a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.1.kind() == y.1.kind() && x.1.fanin() == y.1.fanin());
        assert!(!same);
    }

    #[test]
    fn respects_counts_and_validates() {
        for seed in 0..5 {
            let cfg = GeneratorConfig::new("t", seed).inputs(10).gates(300).dffs(25);
            let c = generate(&cfg);
            assert_eq!(c.inputs().len(), 10);
            assert_eq!(c.dffs().len(), 25);
            assert_eq!(c.num_gates(), 300);
            c.validate().unwrap();
        }
    }

    #[test]
    fn no_dangling_gates() {
        let c = generate(&GeneratorConfig::new("t", 3).gates(400).dffs(30));
        let fot = FanoutTable::new(&c);
        let outs: std::collections::HashSet<_> = c.outputs().iter().copied().collect();
        for (id, node) in c.iter() {
            if node.kind().is_gate() && fot.is_dangling(id) {
                assert!(outs.contains(&id), "gate {id} dangles without PO");
            }
        }
    }

    #[test]
    fn ffs_have_combinational_drivers() {
        let c = generate(&GeneratorConfig::new("t", 9).gates(200).dffs(12));
        for &ff in c.dffs() {
            let d = c.node(ff).fanin()[0];
            assert!(c.node(d).kind().is_gate(), "DFF driven by {:?}", c.node(d).kind());
        }
    }
}
