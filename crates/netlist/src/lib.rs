//! Gate-level sequential netlists for design-for-test research.
//!
//! This crate provides the structural substrate for the functional scan
//! chain testing reproduction: a compact gate-level circuit model with
//! D flip-flops, an ISCAS'89 `.bench` reader/writer, levelization,
//! structural validation, and a seeded generator of ISCAS-like synthetic
//! sequential circuits.
//!
//! Every net in a [`Circuit`] is identified by the [`NodeId`] of its
//! single driver (primary input, gate, or flip-flop); this is the classic
//! single-output-gate representation used by most ATPG literature.
//!
//! # Examples
//!
//! Build the tiny circuit of Figure 2 of the paper by hand:
//!
//! ```
//! use fscan_netlist::{Circuit, GateKind};
//!
//! let mut c = Circuit::new("fig2");
//! let pi = c.add_input("PI");
//! let ff1 = c.add_dff_placeholder("FF1");
//! let a = c.add_gate(GateKind::And, vec![pi, ff1], "A");
//! c.set_dff_input(ff1, a)?;
//! c.mark_output(a);
//! c.validate()?;
//! assert_eq!(c.num_gates(), 1);
//! # Ok::<(), fscan_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod circuit;
mod delta;
mod dot;
mod error;
mod gate;
mod generator;
mod hash;
mod level;
mod reader;
mod stats;
mod topo;

pub use bench::{parse_bench, write_bench, ParseBenchError};
pub use reader::{BenchReader, NetlistBuilder, SrcPos};
pub use hash::{content_hash64, Fnv1a64};
pub use circuit::{Circuit, Node, NodeId};
pub use delta::{DeltaNode, DeltaRef, NetlistDelta, Redrive};
pub use dot::to_dot;
pub use error::NetlistError;
pub use gate::GateKind;
pub use generator::{generate, GeneratorConfig};
pub use level::{FanoutTable, Levelization};
pub use stats::CircuitStats;
pub use topo::{CompiledTopology, DirtyInfo};
