//! Netlist deltas: id-stable edit scripts between two circuits.
//!
//! An ECO (engineering change order) touches a handful of gates in a
//! design that was already compiled, classified and tested. The
//! [`NetlistDelta`] here captures such an edit as a script over a
//! *base* circuit — nodes added, nodes re-driven (new kind and/or
//! fanin), nodes removed — in a form with two key properties:
//!
//! 1. **Id stability.** Applying the delta never renumbers a surviving
//!    base node: additions are appended past the base id range and
//!    removals leave a dead `Const0` tombstone in place. Every
//!    downstream artifact keyed by [`NodeId`] — compiled topologies,
//!    fault lists, classification verdicts, traces — stays directly
//!    comparable across the edit, which is what makes cone-scoped
//!    invalidation (and verdict reuse) sound.
//! 2. **Self-containedness.** The delta carries the added nodes' kinds
//!    and fanins and the re-driven nodes' new definitions, so
//!    [`CompiledTopology::patch`](crate::CompiledTopology::patch) can
//!    build the patched topology from the base topology plus the delta
//!    alone, without re-walking the full circuit.
//!
//! Deltas come from [`NetlistDelta::diff`] (structural diff of two
//! same-name-space circuits, e.g. two revisions of an uploaded
//! `.bench`) or are constructed directly as an edit script.

use std::collections::HashMap;

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// A fanin reference inside a delta: either an existing base node or
/// one of the delta's own added nodes (by index into
/// [`NetlistDelta::added`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DeltaRef {
    /// An existing node of the base circuit.
    Base(NodeId),
    /// The `i`-th node added by this delta (0-based).
    Added(u32),
}

impl DeltaRef {
    /// Resolves the reference to a concrete patched-circuit id, given
    /// the base node count (added nodes are appended in order).
    pub fn resolve(self, base_nodes: usize) -> NodeId {
        match self {
            DeltaRef::Base(id) => id,
            DeltaRef::Added(i) => NodeId::from_index(base_nodes + i as usize),
        }
    }
}

/// One node added by a delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaNode {
    /// The node's name (must not collide with a surviving base name).
    pub name: String,
    /// The node's kind. `Input` and `Dff` are allowed; an added `Dff`'s
    /// single fanin is its D pin.
    pub kind: GateKind,
    /// Fanin references, arity-checked against `kind` at apply time.
    pub fanin: Vec<DeltaRef>,
}

/// One node re-driven by a delta: same id, new definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Redrive {
    /// The base node being re-driven.
    pub node: NodeId,
    /// Its new kind (combinational gates only; inputs and flip-flops
    /// change by removal + addition).
    pub kind: GateKind,
    /// Its new fanin list.
    pub fanin: Vec<DeltaRef>,
}

/// An id-stable edit script between a base circuit and its successor.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind, NetlistDelta};
///
/// let mut base = Circuit::new("d");
/// let a = base.add_input("a");
/// let b = base.add_input("b");
/// let g = base.add_gate(GateKind::And, vec![a, b], "g");
/// base.mark_output(g);
///
/// let mut eco = base.clone();
/// eco.redrive(g, GateKind::Or, vec![a, b]);
///
/// let delta = NetlistDelta::diff(&base, &eco)?;
/// assert_eq!(delta.redriven.len(), 1);
/// let patched = delta.apply(&base)?;
/// assert_eq!(patched.node(g).kind(), GateKind::Or);
/// # Ok::<(), fscan_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetlistDelta {
    /// Node count of the base circuit the script was written against
    /// (validated at apply/patch time).
    pub base_nodes: usize,
    /// Nodes appended by the edit, in id order.
    pub added: Vec<DeltaNode>,
    /// Existing nodes whose definition changes.
    pub redriven: Vec<Redrive>,
    /// Existing nodes removed (tombstoned in place; they must be dead
    /// after the re-drives are applied).
    pub removed: Vec<NodeId>,
    /// Primary-output markers appended after the base circuit's marker
    /// list, in order (duplicates allowed, exactly like
    /// [`Circuit::mark_output`]). The format cannot remove or reorder
    /// the base markers — such edits change the vector layout and are
    /// rejected by [`NetlistDelta::diff`].
    pub outputs: Vec<DeltaRef>,
}

impl NetlistDelta {
    /// An empty delta against a base of `base_nodes` nodes — applying
    /// it is the identity.
    pub fn empty(base_nodes: usize) -> NetlistDelta {
        NetlistDelta {
            base_nodes,
            ..NetlistDelta::default()
        }
    }

    /// The delta that builds `circuit` from the empty design — every
    /// node is an addition. A full (cold) topology build is exactly a
    /// patch with this delta; see
    /// [`CompiledTopology::patch`](crate::CompiledTopology::patch).
    pub fn full(circuit: &Circuit) -> NetlistDelta {
        let added = circuit
            .iter()
            .map(|(id, node)| DeltaNode {
                name: node
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("n{}", id.index())),
                kind: node.kind(),
                fanin: node
                    .fanin()
                    .iter()
                    .map(|&f| DeltaRef::Added(f.index() as u32))
                    .collect(),
            })
            .collect();
        NetlistDelta {
            base_nodes: 0,
            added,
            redriven: Vec::new(),
            removed: Vec::new(),
            outputs: circuit
                .outputs()
                .iter()
                .map(|o| DeltaRef::Added(o.index() as u32))
                .collect(),
        }
    }

    /// `true` when the script performs no edit.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
            && self.redriven.is_empty()
            && self.removed.is_empty()
            && self.outputs.is_empty()
    }

    /// Structural diff of two circuits sharing a name space: nodes are
    /// matched **by name**, so `new` may be an independently parsed
    /// revision of the same netlist. Returns the edit script that turns
    /// `base` into a circuit functionally identical to `new` (modulo
    /// node numbering: surviving base nodes keep their base ids,
    /// additions are appended in `new`'s order).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::AmbiguousName`] if either circuit has
    /// duplicate or missing node names (the diff needs names as keys),
    /// and [`NetlistError::UnsupportedEdit`] if a node changes role
    /// between input/flip-flop/gate under the same name, if a survivor
    /// reads a tombstone, or if the base output markers are removed or
    /// reordered — edits this script format cannot express id-stably.
    /// Express those as a remove + add of a renamed node instead.
    ///
    /// Tombstones (`__removed_*` nodes left behind by an earlier
    /// [`apply`](Self::apply)) are invisible to the diff on both sides.
    pub fn diff(base: &Circuit, new: &Circuit) -> Result<NetlistDelta, NetlistError> {
        let base_names = named_ids(base)?;
        let new_names = named_ids(new)?;

        // Map every new-circuit node to its patched-circuit id: by name
        // for survivors, appended in new-id order for additions.
        let mut added: Vec<(NodeId, DeltaNode)> = Vec::new();
        let mut new_to_ref: HashMap<NodeId, DeltaRef> = HashMap::new();
        for (new_id, node) in new.iter() {
            let name = node.name().expect("checked by named_ids");
            if is_tombstone_name(name) {
                continue;
            }
            match base_names.get(name) {
                Some(&base_id) => {
                    new_to_ref.insert(new_id, DeltaRef::Base(base_id));
                }
                None => {
                    new_to_ref.insert(new_id, DeltaRef::Added(added.len() as u32));
                    added.push((
                        new_id,
                        DeltaNode {
                            name: name.to_string(),
                            kind: node.kind(),
                            fanin: Vec::new(),
                        },
                    ));
                }
            }
        }
        let resolve_new = |id: NodeId| -> Result<DeltaRef, NetlistError> {
            new_to_ref
                .get(&id)
                .copied()
                .ok_or_else(|| NetlistError::UnsupportedEdit {
                    node: id,
                    reason: "node reads a removed tombstone".to_string(),
                })
        };
        for (new_id, dn) in &mut added {
            dn.fanin = new
                .node(*new_id)
                .fanin()
                .iter()
                .map(|&f| resolve_new(f))
                .collect::<Result<_, _>>()?;
        }

        let mut redriven = Vec::new();
        let mut removed = Vec::new();
        for (base_id, node) in base.iter() {
            let name = node.name().expect("checked by named_ids");
            if is_tombstone_name(name) {
                continue;
            }
            let Some(&new_id) = new_names.get(name) else {
                removed.push(base_id);
                continue;
            };
            let new_node = new.node(new_id);
            let role = |k: GateKind| (k == GateKind::Input, k == GateKind::Dff);
            if role(node.kind()) != role(new_node.kind()) {
                return Err(NetlistError::UnsupportedEdit {
                    node: base_id,
                    reason: format!("`{name}` changes role between input/flip-flop/gate"),
                });
            }
            let new_fanin: Vec<DeltaRef> = new_node
                .fanin()
                .iter()
                .map(|&f| resolve_new(f))
                .collect::<Result<_, _>>()?;
            let old_fanin: Vec<DeltaRef> =
                node.fanin().iter().map(|&f| DeltaRef::Base(f)).collect();
            if node.kind() != new_node.kind() || old_fanin != new_fanin {
                // A flip-flop's only mutable aspect is its D pin; the
                // role check above already pinned the kind.
                redriven.push(Redrive {
                    node: base_id,
                    kind: new_node.kind(),
                    fanin: new_fanin,
                });
            }
        }

        // The base's output-marker list must survive as a prefix of the
        // new one (mapped through the name space); the tail is the
        // delta's appended markers. Anything else reshapes the response
        // vector layout and is inexpressible id-stably.
        let mut expected_prefix = Vec::with_capacity(base.outputs().len());
        for &po in base.outputs() {
            let name = base.node(po).name().expect("checked by named_ids");
            let Some(&new_id) = new_names.get(name) else {
                return Err(NetlistError::UnsupportedEdit {
                    node: po,
                    reason: format!("output marker `{name}` disappears"),
                });
            };
            expected_prefix.push(new_id);
        }
        if new.outputs().len() < expected_prefix.len()
            || new.outputs()[..expected_prefix.len()] != expected_prefix[..]
        {
            return Err(NetlistError::UnsupportedEdit {
                node: NodeId::from_index(0),
                reason: "base output markers removed or reordered".to_string(),
            });
        }
        let outputs: Vec<DeltaRef> = new.outputs()[expected_prefix.len()..]
            .iter()
            .map(|&o| resolve_new(o))
            .collect::<Result<_, _>>()?;

        Ok(NetlistDelta {
            base_nodes: base.num_nodes(),
            added: added.into_iter().map(|(_, dn)| dn).collect(),
            redriven,
            removed,
            outputs,
        })
    }

    /// Every patched-circuit node the edit touches directly: re-driven
    /// nodes, removed nodes (tombstones), and added nodes. Downstream
    /// invalidation grows this seed set into
    /// [`CompiledTopology::dirty_cones`](crate::CompiledTopology::dirty_cones).
    pub fn touched(&self) -> Vec<NodeId> {
        let mut t: Vec<NodeId> = self
            .redriven
            .iter()
            .map(|r| r.node)
            .chain(self.removed.iter().copied())
            .collect();
        t.extend((0..self.added.len()).map(|i| NodeId::from_index(self.base_nodes + i)));
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Applies the script to `base`, producing the patched circuit.
    /// Surviving base nodes keep their ids; added nodes get ids
    /// `base_nodes..`; removed nodes become dead tombstones.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DeltaBaseMismatch`] when `base` does not
    /// have `base_nodes` nodes, and [`NetlistError::UnsupportedEdit`]
    /// when a removed node is still read after the edit (removals must
    /// leave dead logic only) or an added `Dff` lacks its D pin. The
    /// patched circuit is re-validated before it is returned.
    pub fn apply(&self, base: &Circuit) -> Result<Circuit, NetlistError> {
        if base.num_nodes() != self.base_nodes {
            return Err(NetlistError::DeltaBaseMismatch {
                expected: self.base_nodes,
                found: base.num_nodes(),
            });
        }
        let mut out = base.clone();
        // Additions first so DeltaRef::Added resolves for re-drives.
        for (i, dn) in self.added.iter().enumerate() {
            let fanin: Vec<NodeId> = dn
                .fanin
                .iter()
                .map(|r| r.resolve(self.base_nodes))
                .collect();
            let id = match dn.kind {
                GateKind::Input => out.add_input(dn.name.clone()),
                GateKind::Const0 => out.add_const(false, dn.name.clone()),
                GateKind::Const1 => out.add_const(true, dn.name.clone()),
                GateKind::Dff => {
                    let id = out.add_dff_placeholder(dn.name.clone());
                    let &[d] = fanin.as_slice() else {
                        return Err(NetlistError::UnsupportedEdit {
                            node: id,
                            reason: format!("added flip-flop `{}` needs exactly one D pin", dn.name),
                        });
                    };
                    out.set_dff_input(id, d)?;
                    id
                }
                kind => out.add_gate(kind, fanin, dn.name.clone()),
            };
            debug_assert_eq!(id.index(), self.base_nodes + i);
        }
        for r in &self.redriven {
            let fanin: Vec<NodeId> = r
                .fanin
                .iter()
                .map(|f| f.resolve(self.base_nodes))
                .collect();
            if r.kind == GateKind::Dff {
                let &[d] = fanin.as_slice() else {
                    return Err(NetlistError::UnsupportedEdit {
                        node: r.node,
                        reason: "re-driven flip-flop needs exactly one D pin".to_string(),
                    });
                };
                out.set_dff_input(r.node, d)?;
            } else {
                out.redrive(r.node, r.kind, fanin);
            }
        }
        for &po in &self.outputs {
            out.mark_output(po.resolve(self.base_nodes));
        }
        // Removals must leave dead logic: after the re-drives, no
        // survivor (and no output marker) may still read a node about to
        // be tombstoned. Checked before tombstoning, since tombstoning
        // itself strips the node from the marker lists.
        if !self.removed.is_empty() {
            let removed: std::collections::HashSet<NodeId> =
                self.removed.iter().copied().collect();
            for (id, node) in out.iter() {
                if removed.contains(&id) {
                    continue;
                }
                if let Some(&dead) = node.fanin().iter().find(|f| removed.contains(f)) {
                    return Err(NetlistError::UnsupportedEdit {
                        node: id,
                        reason: format!("node still reads removed node {dead}"),
                    });
                }
            }
            if let Some(&dead) = out.outputs().iter().find(|o| removed.contains(o)) {
                return Err(NetlistError::UnsupportedEdit {
                    node: dead,
                    reason: "removed node is still a primary output".to_string(),
                });
            }
            for &dead in &self.removed {
                out.tombstone(dead);
            }
        }
        out.validate()?;
        Ok(out)
    }
}

/// Whether a node name marks a tombstone left by [`Circuit::tombstone`].
fn is_tombstone_name(name: &str) -> bool {
    name.starts_with("__removed_")
}

/// Name → id map, failing on anonymous or duplicate names.
fn named_ids(circuit: &Circuit) -> Result<HashMap<String, NodeId>, NetlistError> {
    let mut map = HashMap::with_capacity(circuit.num_nodes());
    for (id, node) in circuit.iter() {
        let Some(name) = node.name() else {
            return Err(NetlistError::AmbiguousName {
                node: id,
                name: "<unnamed>".to_string(),
            });
        };
        if map.insert(name.to_string(), id).is_some() {
            return Err(NetlistError::AmbiguousName {
                node: id,
                name: name.to_string(),
            });
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> (Circuit, [NodeId; 5]) {
        let mut c = Circuit::new("d");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g");
        let h = c.add_gate(GateKind::Not, vec![g], "h");
        let ff = c.add_dff(h, "ff");
        c.mark_output(h);
        c.mark_output(ff);
        (c, [a, b, g, h, ff])
    }

    #[test]
    fn empty_delta_is_identity() {
        let (c, _) = base();
        let d = NetlistDelta::empty(c.num_nodes());
        assert!(d.is_empty());
        let patched = d.apply(&c).unwrap();
        assert_eq!(format!("{c}"), format!("{patched}"));
    }

    #[test]
    fn diff_detects_redrive() {
        let (c, [a, b, g, ..]) = base();
        let mut eco = c.clone();
        eco.redrive(g, GateKind::Nor, vec![a, b]);
        let d = NetlistDelta::diff(&c, &eco).unwrap();
        assert_eq!(d.added.len(), 0);
        assert_eq!(d.removed.len(), 0);
        assert_eq!(d.redriven.len(), 1);
        assert_eq!(d.touched(), vec![g]);
        let patched = d.apply(&c).unwrap();
        assert_eq!(patched.node(g).kind(), GateKind::Nor);
    }

    #[test]
    fn diff_detects_addition_with_cross_refs() {
        let (c, [a, ..]) = base();
        let mut eco = c.clone();
        let x = eco.add_gate(GateKind::Not, vec![a], "x");
        let _y = eco.add_gate(GateKind::Buf, vec![x], "y");
        let d = NetlistDelta::diff(&c, &eco).unwrap();
        assert_eq!(d.added.len(), 2);
        assert_eq!(d.added[1].fanin, vec![DeltaRef::Added(0)]);
        let patched = d.apply(&c).unwrap();
        assert_eq!(patched.num_nodes(), c.num_nodes() + 2);
        assert_eq!(patched.find_by_name("y"), Some(NodeId::from_index(6)));
    }

    #[test]
    fn removal_requires_dead_node() {
        let (c, [.., g, _h, _ff]) = base();
        // g is still read by h: removing it must fail.
        let d = NetlistDelta {
            base_nodes: c.num_nodes(),
            removed: vec![g],
            ..NetlistDelta::default()
        };
        assert!(d.apply(&c).is_err());
    }

    #[test]
    fn remove_after_rewire_tombstones_in_place() {
        let (c, [a, _b, g, h, ff]) = base();
        let mut eco = c.clone();
        // Bypass g (h reads a directly), then drop g.
        eco.redrive(h, GateKind::Not, vec![a]);
        let d = NetlistDelta::diff(&c, &{
            let mut e = eco.clone();
            e.tombstone(g);
            e
        })
        .unwrap();
        assert_eq!(d.removed, vec![g]);
        let patched = d.apply(&c).unwrap();
        assert_eq!(patched.num_nodes(), c.num_nodes());
        assert_eq!(patched.node(g).kind(), GateKind::Const0);
        assert_eq!(patched.node(h).fanin(), &[a]);
        assert_eq!(patched.dffs(), &[ff]);
    }

    #[test]
    fn diff_rejects_role_change() {
        let (c, _) = base();
        let mut other = Circuit::new("d");
        other.add_input("a");
        other.add_input("b");
        // `g` is an input here instead of a gate.
        let g = other.add_input("g");
        let h = other.add_gate(GateKind::Not, vec![g], "h");
        other.add_dff(h, "ff");
        other.mark_output(h);
        assert!(NetlistDelta::diff(&c, &other).is_err());
    }

    #[test]
    fn full_delta_rebuilds_the_circuit() {
        let (c, _) = base();
        let d = NetlistDelta::full(&c);
        assert_eq!(d.base_nodes, 0);
        assert_eq!(d.added.len(), c.num_nodes());
        let rebuilt = d.apply(&Circuit::new("d")).unwrap();
        assert_eq!(format!("{c}"), format!("{rebuilt}"));
    }

    #[test]
    fn dff_d_pin_rewire_diffs_as_redrive() {
        let (c, [a, _b, _g, _h, ff]) = base();
        let mut eco = c.clone();
        eco.set_dff_input(ff, a).unwrap();
        let d = NetlistDelta::diff(&c, &eco).unwrap();
        assert_eq!(d.redriven.len(), 1);
        assert_eq!(d.redriven[0].kind, GateKind::Dff);
        let patched = d.apply(&c).unwrap();
        assert_eq!(patched.node(ff).fanin(), &[a]);
    }
}
