//! Levelization and fanout tables.

use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// A topological ordering of the combinational portion of a circuit.
///
/// Primary inputs, constants and flip-flop outputs sit at level 0; every
/// combinational gate is placed one level above its deepest fanin. The
/// [`Levelization::order`] visits nodes in non-decreasing level, which is
/// the evaluation order used by all simulators in this workspace.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind, Levelization};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
/// let g2 = c.add_gate(GateKind::And, vec![a, g1], "g2");
/// let lv = Levelization::new(&c);
/// assert_eq!(lv.level(a), 0);
/// assert_eq!(lv.level(g1), 1);
/// assert_eq!(lv.level(g2), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Levelization {
    order: Vec<NodeId>,
    level: Vec<u32>,
}

impl Levelization {
    /// Levelizes a circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has combinational cycles (call
    /// [`Circuit::validate`] first for a proper error).
    pub fn new(circuit: &Circuit) -> Levelization {
        let n = circuit.num_nodes();
        let mut level = vec![0u32; n];
        let mut indegree = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        // Combinational in-degree: DFF fanins are sequential edges and do
        // not count; DFF/Input/Const nodes have comb in-degree 0.
        for (id, node) in circuit.iter() {
            if node.kind().is_gate() {
                indegree[id.index()] = node.fanin().len() as u32;
            }
        }
        let mut queue: Vec<NodeId> = circuit
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        // Build a fanout map restricted to combinational sinks.
        let fot = FanoutTable::new(circuit);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &(sink, _pin) in fot.fanouts(id) {
                if !circuit.node(sink).kind().is_gate() {
                    continue;
                }
                let l = level[id.index()] + 1;
                if l > level[sink.index()] {
                    level[sink.index()] = l;
                }
                indegree[sink.index()] -= 1;
                if indegree[sink.index()] == 0 {
                    queue.push(sink);
                }
            }
        }
        assert_eq!(
            order.len(),
            n,
            "levelization failed: combinational cycle present"
        );
        Levelization { order, level }
    }

    /// Nodes in topological (non-decreasing level) order. Level-0 nodes
    /// (inputs, constants, flip-flops) come first.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The level of a node.
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum level in the circuit (combinational depth).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }
}

/// The fanout table of a circuit: for every node, the list of
/// `(sink_node, pin)` pairs that read its output.
///
/// Output markers are not included; flip-flop D pins are (as pin 0 of the
/// DFF node).
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, FanoutTable, GateKind};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// let fot = FanoutTable::new(&c);
/// assert_eq!(fot.fanouts(a), &[(g, 0)]);
/// assert!(fot.fanouts(g).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct FanoutTable {
    fanouts: Vec<Vec<(NodeId, usize)>>,
}

impl FanoutTable {
    /// Builds the fanout table of `circuit`.
    pub fn new(circuit: &Circuit) -> FanoutTable {
        let mut fanouts = vec![Vec::new(); circuit.num_nodes()];
        for (id, node) in circuit.iter() {
            // A placeholder DFF feeds back on itself; skip that edge so
            // traversals do not see a phantom reader.
            for (pin, &src) in node.fanin().iter().enumerate() {
                if src == id && node.kind() == GateKind::Dff {
                    continue;
                }
                fanouts[src.index()].push((id, pin));
            }
        }
        FanoutTable { fanouts }
    }

    /// The `(sink, pin)` readers of node `id`.
    pub fn fanouts(&self, id: NodeId) -> &[(NodeId, usize)] {
        &self.fanouts[id.index()]
    }

    /// Whether node `id` has any reader.
    pub fn is_dangling(&self, id: NodeId) -> bool {
        self.fanouts[id.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn levels_respect_topology() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::And, vec![a, b], "g1");
        let g2 = c.add_gate(GateKind::Or, vec![g1, b], "g2");
        let ff = c.add_dff(g2, "ff");
        let g3 = c.add_gate(GateKind::Not, vec![ff], "g3");
        c.mark_output(g3);
        let lv = Levelization::new(&c);
        assert_eq!(lv.level(a), 0);
        assert_eq!(lv.level(ff), 0);
        assert_eq!(lv.level(g1), 1);
        assert_eq!(lv.level(g2), 2);
        assert_eq!(lv.level(g3), 1);
        assert_eq!(lv.depth(), 2);
        // Order property: every gate appears after all its fanins.
        let pos: std::collections::HashMap<_, _> = lv
            .order()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for (id, node) in c.iter() {
            if node.kind().is_gate() {
                for &f in node.fanin() {
                    assert!(pos[&f] < pos[&id]);
                }
            }
        }
    }

    #[test]
    fn fanout_table_pins() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::And, vec![a, a], "g");
        let fot = FanoutTable::new(&c);
        assert_eq!(fot.fanouts(a), &[(g, 0), (g, 1)]);
        assert!(fot.is_dangling(g));
    }

    #[test]
    fn placeholder_dff_self_edge_skipped() {
        let mut c = Circuit::new("t");
        let ff = c.add_dff_placeholder("ff");
        let fot = FanoutTable::new(&c);
        assert!(fot.fanouts(ff).is_empty());
    }

    #[test]
    fn dff_d_pin_is_a_fanout() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let ff = c.add_dff(a, "ff");
        let fot = FanoutTable::new(&c);
        assert_eq!(fot.fanouts(a), &[(ff, 0)]);
    }
}
