//! Streaming, line-oriented `.bench` ingestion.
//!
//! [`parse_bench`](crate::parse_bench) historically collected every
//! declaration of the file into an intermediate `Vec<(line, name,
//! Decl)>` before building the [`Circuit`] — a second in-memory copy of
//! the whole netlist that a million-gate file cannot afford. This module
//! splits the parser into two streaming halves:
//!
//! * [`BenchReader`] — a chunk- or [`BufRead`]-fed tokenizer that tracks
//!   line numbers and byte offsets and never buffers more than the
//!   current (possibly chunk-split) line;
//! * [`NetlistBuilder`] — an incremental builder that creates nodes the
//!   moment their defining line arrives and patches forward references
//!   (signals used before they are defined) through a pending-reference
//!   table that only ever holds the *unresolved* names.
//!
//! `parse_bench(text, name)` is now a thin wrapper: one `feed` of the
//! whole text followed by `finish`. The typed
//! [`ParseBenchError`](crate::ParseBenchError) carries both the 1-based
//! line number and the byte offset of the offending line, and chunked
//! feeding reports errors at exactly the same positions as whole-text
//! parsing (pinned by the differential proptest oracle in
//! `tests/props.rs`).

use std::collections::HashMap;
use std::io::BufRead;

use crate::bench::{kind_from_keyword, ParseBenchError};
use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;
use crate::hash::Fnv1a64;

/// Source position of a `.bench` line: 1-based line number plus the byte
/// offset of the line's first byte in the overall input stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SrcPos {
    /// 1-based line number.
    pub line: usize,
    /// Byte offset of the line start within the full input.
    pub offset: u64,
}

impl SrcPos {
    fn err(self, message: impl Into<String>) -> ParseBenchError {
        ParseBenchError::at(self.line, self.offset, message)
    }
}

/// A deferred reference to a signal that has not been defined yet.
#[derive(Copy, Clone, Debug)]
enum FwdRef {
    /// Pin `pin` of combinational gate `node` reads the signal.
    Pin { node: NodeId, pin: usize, at: SrcPos },
    /// The D input of flip-flop `ff` reads the signal.
    DffD { ff: NodeId, at: SrcPos },
}

impl FwdRef {
    fn at(&self) -> SrcPos {
        match self {
            FwdRef::Pin { at, .. } | FwdRef::DffD { at, .. } => *at,
        }
    }
}

/// Incremental circuit builder fed one declaration at a time.
///
/// Nodes are created in file order the moment their defining line is
/// seen. A fanin naming a not-yet-defined signal is temporarily wired to
/// the reading gate itself and recorded in a forward-reference table;
/// the reference is patched as soon as the signal's definition arrives
/// (or reported as `undefined signal` at [`finish`](Self::finish), at
/// the first position that referenced it). Output markers are recorded
/// by name and resolved at `finish` so their order matches the file.
///
/// Memory high-water: the [`Circuit`] under construction, the name → id
/// map, the pending output names, and the currently-unresolved forward
/// references — never a second copy of the input text.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{NetlistBuilder, SrcPos, GateKind};
///
/// let mut b = NetlistBuilder::new("toy");
/// let p = |line| SrcPos { line, offset: 0 };
/// b.input("a", p(1))?;
/// b.gate("y", GateKind::Not, &["a"], p(2))?;
/// b.output("y", p(3));
/// let c = b.finish()?;
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), fscan_netlist::ParseBenchError>(())
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    circuit: Circuit,
    ids: HashMap<String, NodeId>,
    fwd: HashMap<String, Vec<FwdRef>>,
    outputs: Vec<(String, SrcPos)>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            circuit: Circuit::new(name),
            ids: HashMap::new(),
            fwd: HashMap::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of nodes created so far.
    pub fn num_nodes(&self) -> usize {
        self.circuit.num_nodes()
    }

    /// Number of currently-unresolved forward references.
    pub fn pending_refs(&self) -> usize {
        self.fwd.values().map(Vec::len).sum()
    }

    /// Registers a defined signal and patches every deferred reference
    /// to it.
    fn define(&mut self, sig: &str, id: NodeId, at: SrcPos) -> Result<(), ParseBenchError> {
        if self.ids.insert(sig.to_string(), id).is_some() {
            return Err(at.err(format!("signal '{sig}' defined twice")));
        }
        if let Some(refs) = self.fwd.remove(sig) {
            for r in refs {
                match r {
                    FwdRef::Pin { node, pin, at } => {
                        self.circuit
                            .replace_fanin(node, pin, id)
                            .map_err(|e| at.err(e.to_string()))?;
                    }
                    FwdRef::DffD { ff, at } => {
                        self.circuit
                            .set_dff_input(ff, id)
                            .map_err(|e| at.err(e.to_string()))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Declares a primary input (`INPUT(sig)`).
    pub fn input(&mut self, sig: &str, at: SrcPos) -> Result<(), ParseBenchError> {
        let id = self.circuit.add_input(sig);
        self.define(sig, id, at)
    }

    /// Declares a primary output marker (`OUTPUT(sig)`); resolved at
    /// [`finish`](Self::finish) in declaration order.
    pub fn output(&mut self, sig: &str, at: SrcPos) {
        self.outputs.push((sig.to_string(), at));
    }

    /// Declares a gate line `target = KIND(args...)`, covering
    /// combinational gates, flip-flops and constants.
    pub fn gate(
        &mut self,
        target: &str,
        kind: GateKind,
        args: &[&str],
        at: SrcPos,
    ) -> Result<(), ParseBenchError> {
        match kind {
            GateKind::Dff => {
                if args.len() != 1 {
                    return Err(at.err("DFF requires exactly one input"));
                }
                let ff = self.circuit.add_dff_placeholder(target);
                match self.ids.get(args[0]) {
                    Some(&d) => self
                        .circuit
                        .set_dff_input(ff, d)
                        .map_err(|e| at.err(e.to_string()))?,
                    None => self
                        .fwd
                        .entry(args[0].to_string())
                        .or_default()
                        .push(FwdRef::DffD { ff, at }),
                }
                self.define(target, ff, at)
            }
            GateKind::Const0 | GateKind::Const1 => {
                let id = self.circuit.add_const(kind == GateKind::Const1, target);
                self.define(target, id, at)
            }
            GateKind::Input => Err(at.err("INPUT is not a gate kind")),
            _ => {
                if args.is_empty() {
                    // A zero-fanin logic gate has no defined value: the
                    // kernel's fold identities would evaluate `AND()` to
                    // a constant 1 (`OR()` to 0), silently inventing
                    // logic.
                    return Err(at.err("gate with no inputs"));
                }
                if let Some(n) = kind.fixed_arity() {
                    if args.len() != n {
                        return Err(at.err(format!(
                            "{kind} requires exactly {n} input(s), got {}",
                            args.len()
                        )));
                    }
                }
                // The gate reads itself on any pin whose source is not
                // defined yet; the self edge is patched when the source
                // definition arrives (or reported at finish).
                let id = NodeId::from_index(self.circuit.num_nodes());
                let mut fanin = Vec::with_capacity(args.len());
                let mut deferred: Vec<(usize, &str)> = Vec::new();
                for (pin, &arg) in args.iter().enumerate() {
                    match self.ids.get(arg) {
                        Some(&src) => fanin.push(src),
                        None => {
                            fanin.push(id);
                            deferred.push((pin, arg));
                        }
                    }
                }
                let created = self.circuit.add_gate(kind, fanin, target);
                debug_assert_eq!(created, id);
                for (pin, arg) in deferred {
                    self.fwd
                        .entry(arg.to_string())
                        .or_default()
                        .push(FwdRef::Pin { node: id, pin, at });
                }
                self.define(target, id, at)
            }
        }
    }

    /// Resolves the remaining forward references and output markers,
    /// validates the structure and returns the finished circuit.
    ///
    /// # Errors
    ///
    /// An unresolved signal is reported as `undefined signal` at the
    /// earliest position that referenced it; an unresolved output as
    /// `undefined output` at its declaration; structural violations
    /// (combinational cycles, arity) at line 0.
    pub fn finish(mut self) -> Result<Circuit, ParseBenchError> {
        if !self.fwd.is_empty() {
            // Deterministic choice independent of hash-map order: the
            // reference with the smallest byte offset, ties (several
            // undefined signals on one line) broken by name.
            let (sig, at) = self
                .fwd
                .iter()
                .flat_map(|(sig, refs)| refs.iter().map(move |r| (sig, r.at())))
                .min_by_key(|&(sig, at)| (at.offset, at.line, sig))
                .map(|(sig, at)| (sig.clone(), at))
                .expect("non-empty fwd map");
            return Err(at.err(format!("undefined signal '{sig}'")));
        }
        for (sig, at) in &self.outputs {
            let id = *self
                .ids
                .get(sig)
                .ok_or_else(|| at.err(format!("undefined output '{sig}'")))?;
            self.circuit.mark_output(id);
        }
        self.circuit
            .validate()
            .map_err(|e| ParseBenchError::at(0, 0, e.to_string()))?;
        Ok(self.circuit)
    }
}

/// Streaming `.bench` reader: feed text in arbitrary chunks (lines may
/// split anywhere, even mid-token) or drain any [`BufRead`] source, then
/// [`finish`](Self::finish) into a [`Circuit`].
///
/// Only the current partial line is ever buffered; full lines inside a
/// chunk are parsed in place. Positions (line numbers and byte offsets)
/// are identical no matter how the input is chunked.
///
/// # Examples
///
/// ```
/// use fscan_netlist::BenchReader;
///
/// let mut r = BenchReader::new("toy");
/// r.feed("INPUT(a)\ny = NO")?;
/// r.feed("T(a)\nOUTPUT(y)\n")?;
/// let c = r.finish()?;
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), fscan_netlist::ParseBenchError>(())
/// ```
#[derive(Debug)]
pub struct BenchReader {
    builder: NetlistBuilder,
    /// The current line's bytes so far, when it straddles a chunk
    /// boundary. Capacity is retained across lines.
    carry: String,
    /// 1-based number of the line currently being accumulated.
    line: usize,
    /// Byte offset of the current line's first byte.
    line_start: u64,
    /// Total bytes fed so far.
    total: u64,
    /// Running FNV-1a hash of every byte fed so far.
    hasher: Fnv1a64,
}

impl BenchReader {
    /// Creates a reader building a circuit with the given name.
    pub fn new(name: impl Into<String>) -> BenchReader {
        BenchReader {
            builder: NetlistBuilder::new(name),
            carry: String::new(),
            line: 1,
            line_start: 0,
            total: 0,
            hasher: Fnv1a64::new(),
        }
    }

    /// The [`content_hash64`](crate::content_hash64) of every byte fed
    /// so far, computed incrementally while streaming — after the last
    /// chunk this equals `content_hash64` of the whole input, without a
    /// second pass over a buffered copy.
    pub fn content_hash64(&self) -> u64 {
        self.hasher.finish()
    }

    /// Feeds the next chunk of text. Chunks may split lines and tokens
    /// arbitrarily.
    pub fn feed(&mut self, chunk: &str) -> Result<(), ParseBenchError> {
        self.hasher.write(chunk.as_bytes());
        let mut rest = chunk;
        while let Some(nl) = rest.find('\n') {
            let head = &rest[..nl];
            self.total += (nl + 1) as u64;
            let at = SrcPos {
                line: self.line,
                offset: self.line_start,
            };
            if self.carry.is_empty() {
                parse_line(&mut self.builder, head, at)?;
            } else {
                self.carry.push_str(head);
                let owned = std::mem::take(&mut self.carry);
                parse_line(&mut self.builder, &owned, at)?;
                self.carry = owned;
                self.carry.clear();
            }
            self.line += 1;
            self.line_start = self.total;
            rest = &rest[nl + 1..];
        }
        self.total += rest.len() as u64;
        self.carry.push_str(rest);
        Ok(())
    }

    /// Drains a [`BufRead`] source through [`feed`](Self::feed). The
    /// read buffer is reused across lines, so the source is never held
    /// in memory as a whole.
    pub fn read_from<R: BufRead>(&mut self, mut source: R) -> Result<(), ParseBenchError> {
        let mut buf = String::new();
        loop {
            buf.clear();
            let n = source.read_line(&mut buf).map_err(|e| {
                ParseBenchError::at(self.line, self.total, format!("io error: {e}"))
            })?;
            if n == 0 {
                return Ok(());
            }
            self.feed(&buf)?;
        }
    }

    /// Parses any final unterminated line, resolves forward references
    /// and returns the finished circuit.
    pub fn finish(mut self) -> Result<Circuit, ParseBenchError> {
        if !self.carry.is_empty() {
            let at = SrcPos {
                line: self.line,
                offset: self.line_start,
            };
            let owned = std::mem::take(&mut self.carry);
            parse_line(&mut self.builder, &owned, at)?;
        }
        self.builder.finish()
    }
}

/// Parses one `.bench` line into builder calls.
fn parse_line(
    builder: &mut NetlistBuilder,
    raw: &str,
    at: SrcPos,
) -> Result<(), ParseBenchError> {
    let line = match raw.find('#') {
        Some(i) => &raw[..i],
        None => raw,
    }
    .trim();
    if line.is_empty() {
        return Ok(());
    }
    if starts_with_ignore_case(line, "INPUT") {
        let sig = paren_arg(line, at)?;
        builder.input(sig, at)
    } else if starts_with_ignore_case(line, "OUTPUT") {
        let sig = paren_arg(line, at)?;
        builder.output(sig, at);
        Ok(())
    } else if let Some(eq) = line.find('=') {
        let target = line[..eq].trim();
        let rhs = line[eq + 1..].trim();
        let open = rhs
            .find('(')
            .ok_or_else(|| at.err("expected '(' in gate line"))?;
        let close = rhs
            .rfind(')')
            .ok_or_else(|| at.err("expected ')' in gate line"))?;
        let kw = rhs[..open].trim();
        let kind = kind_from_keyword(kw)
            .ok_or_else(|| at.err(format!("unknown gate kind '{kw}'")))?;
        let args: Vec<&str> = rhs[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        builder.gate(target, kind, &args, at)
    } else {
        Err(at.err("unrecognized line"))
    }
}

fn starts_with_ignore_case(line: &str, prefix: &str) -> bool {
    line.len() >= prefix.len() && line[..prefix.len()].eq_ignore_ascii_case(prefix)
}

fn paren_arg(line: &str, at: SrcPos) -> Result<&str, ParseBenchError> {
    let open = line.find('(').ok_or_else(|| at.err("expected '('"))?;
    let close = line.rfind(')').ok_or_else(|| at.err("expected ')'"))?;
    if close < open {
        return Err(at.err("expected ')'"));
    }
    let sig = line[open + 1..close].trim();
    if sig.is_empty() {
        return Err(at.err("empty signal name"));
    }
    Ok(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::parse_bench;

    const S27_LIKE: &str = "
# small sequential circuit in the s27 spirit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
";

    fn assert_same_circuit(a: &Circuit, b: &Circuit) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.dffs(), b.dffs());
        for (ia, ib) in a.iter().zip(b.iter()) {
            assert_eq!(ia.1, ib.1, "node {}", ia.0);
        }
    }

    #[test]
    fn chunked_feed_matches_whole_text_at_every_split() {
        let whole = parse_bench(S27_LIKE, "s27").unwrap();
        for split in 0..S27_LIKE.len() {
            let mut r = BenchReader::new("s27");
            r.feed(&S27_LIKE[..split]).unwrap();
            r.feed(&S27_LIKE[split..]).unwrap();
            let c = r.finish().unwrap();
            assert_same_circuit(&whole, &c);
        }
    }

    #[test]
    fn byte_sized_chunks_match_whole_text() {
        let whole = parse_bench(S27_LIKE, "s27").unwrap();
        let mut r = BenchReader::new("s27");
        for i in 0..S27_LIKE.len() {
            r.feed(&S27_LIKE[i..i + 1]).unwrap();
        }
        assert_same_circuit(&whole, &r.finish().unwrap());
    }

    #[test]
    fn bufread_source_matches_whole_text() {
        let whole = parse_bench(S27_LIKE, "s27").unwrap();
        let mut r = BenchReader::new("s27");
        r.read_from(S27_LIKE.as_bytes()).unwrap();
        assert_same_circuit(&whole, &r.finish().unwrap());
    }

    #[test]
    fn streaming_hash_matches_one_shot_at_every_split() {
        let whole = crate::hash::content_hash64(S27_LIKE.as_bytes());
        for split in [0, 1, 7, S27_LIKE.len() / 2, S27_LIKE.len()] {
            let mut r = BenchReader::new("s27");
            r.feed(&S27_LIKE[..split]).unwrap();
            r.feed(&S27_LIKE[split..]).unwrap();
            assert_eq!(r.content_hash64(), whole, "split at {split}");
        }
    }

    #[test]
    fn missing_final_newline_still_parses() {
        let src = "INPUT(a)\ny = NOT(a)\nOUTPUT(y)"; // no trailing \n
        let mut r = BenchReader::new("t");
        r.feed(src).unwrap();
        let c = r.finish().unwrap();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn error_offsets_are_chunking_invariant() {
        // Line 3 starts at byte 18; the unknown kind must be reported
        // there no matter how the text is split.
        let src = "INPUT(a)\nINPUT(b)\ny = FROB(a, b)\n";
        let whole_err = {
            let mut r = BenchReader::new("t");
            r.feed(src).unwrap_err()
        };
        assert_eq!(whole_err.line(), 3);
        assert_eq!(whole_err.offset(), 18);
        for split in 0..src.len() {
            let mut r = BenchReader::new("t");
            let err = r
                .feed(&src[..split])
                .and_then(|()| r.feed(&src[split..]))
                .unwrap_err();
            assert_eq!(err, whole_err, "split at {split}");
        }
    }

    #[test]
    fn undefined_signal_reported_at_first_reference() {
        // `q` is referenced at line 2 (offset 9) and line 3; the error
        // must name the earliest reference deterministically.
        let src = "INPUT(a)\nx = AND(a, q)\ny = OR(q, a)\nOUTPUT(x)\n";
        let mut r = BenchReader::new("t");
        r.feed(src).unwrap();
        let err = r.finish().unwrap_err();
        assert!(err.to_string().contains("undefined signal 'q'"), "{err}");
        assert_eq!(err.line(), 2);
        assert_eq!(err.offset(), 9);
    }

    #[test]
    fn builder_tracks_pending_refs() {
        let mut b = NetlistBuilder::new("t");
        let p = |line| SrcPos { line, offset: 0 };
        b.input("a", p(1)).unwrap();
        b.gate("y", GateKind::And, &["a", "z"], p(2)).unwrap();
        assert_eq!(b.pending_refs(), 1);
        b.gate("z", GateKind::Not, &["a"], p(3)).unwrap();
        assert_eq!(b.pending_refs(), 0);
        b.output("y", p(4));
        let c = b.finish().unwrap();
        assert_eq!(c.num_gates(), 2);
        // The forward reference was patched to the real source.
        let y = c.find_by_name("y").unwrap();
        let z = c.find_by_name("z").unwrap();
        assert_eq!(c.node(y).fanin()[1], z);
    }

    #[test]
    fn forward_dff_input_is_patched() {
        let src = "INPUT(a)\ns = DFF(y)\ny = NAND(a, s)\nOUTPUT(y)\n";
        let mut r = BenchReader::new("t");
        r.feed(src).unwrap();
        let c = r.finish().unwrap();
        let s = c.find_by_name("s").unwrap();
        let y = c.find_by_name("y").unwrap();
        assert_eq!(c.node(s).fanin(), &[y]);
        c.validate().unwrap();
    }

    #[test]
    fn duplicate_definition_reported_at_second_site() {
        let src = "INPUT(a)\na = NOT(a)\n";
        let mut r = BenchReader::new("t");
        let err = r.feed(src).unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
        assert_eq!(err.line(), 2);
        assert_eq!(err.offset(), 9);
    }
}
