//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

use crate::circuit::NodeId;
use crate::gate::GateKind;

/// Errors reported by circuit construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// `set_dff_input` was called on a node that is not a flip-flop.
    NotAFlipFlop(NodeId),
    /// A pin index was out of range for the node's fanin list.
    PinOutOfRange {
        /// The node whose pin was addressed.
        node: NodeId,
        /// The offending pin index.
        pin: usize,
    },
    /// A node has the wrong number of fanins for its kind.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Its kind.
        kind: GateKind,
        /// The number of fanins found.
        got: usize,
    },
    /// A fanin id points outside the node table.
    DanglingFanin {
        /// The referencing node.
        node: NodeId,
        /// The out-of-range fanin.
        fanin: NodeId,
    },
    /// A cycle exists through combinational gates only.
    CombinationalCycle(NodeId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::NotAFlipFlop(id) => write!(f, "node {id} is not a flip-flop"),
            NetlistError::PinOutOfRange { node, pin } => {
                write!(f, "pin {pin} out of range on node {node}")
            }
            NetlistError::ArityMismatch { node, kind, got } => {
                write!(f, "node {node} of kind {kind} has invalid fanin count {got}")
            }
            NetlistError::DanglingFanin { node, fanin } => {
                write!(f, "node {node} references nonexistent fanin {fanin}")
            }
            NetlistError::CombinationalCycle(id) => {
                write!(f, "combinational cycle through node {id}")
            }
        }
    }
}

impl Error for NetlistError {}
