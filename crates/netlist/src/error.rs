//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

use crate::circuit::NodeId;
use crate::gate::GateKind;

/// Errors reported by circuit construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// `set_dff_input` was called on a node that is not a flip-flop.
    NotAFlipFlop(NodeId),
    /// A pin index was out of range for the node's fanin list.
    PinOutOfRange {
        /// The node whose pin was addressed.
        node: NodeId,
        /// The offending pin index.
        pin: usize,
    },
    /// A node has the wrong number of fanins for its kind.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Its kind.
        kind: GateKind,
        /// The number of fanins found.
        got: usize,
    },
    /// A fanin id points outside the node table.
    DanglingFanin {
        /// The referencing node.
        node: NodeId,
        /// The out-of-range fanin.
        fanin: NodeId,
    },
    /// A cycle exists through combinational gates only.
    CombinationalCycle(NodeId),
    /// A circuit diff needs node names as keys but a name is missing or
    /// used twice.
    AmbiguousName {
        /// The offending node.
        node: NodeId,
        /// The duplicate name (or `<unnamed>`).
        name: String,
    },
    /// A delta expresses an edit the id-stable script format cannot
    /// represent (role change, live removal, malformed flip-flop).
    UnsupportedEdit {
        /// The offending node.
        node: NodeId,
        /// Human-readable explanation.
        reason: String,
    },
    /// A delta was applied to a circuit with a different node count than
    /// the base it was written against.
    DeltaBaseMismatch {
        /// Node count the delta expects.
        expected: usize,
        /// Node count of the circuit it was applied to.
        found: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::NotAFlipFlop(id) => write!(f, "node {id} is not a flip-flop"),
            NetlistError::PinOutOfRange { node, pin } => {
                write!(f, "pin {pin} out of range on node {node}")
            }
            NetlistError::ArityMismatch { node, kind, got } => {
                write!(f, "node {node} of kind {kind} has invalid fanin count {got}")
            }
            NetlistError::DanglingFanin { node, fanin } => {
                write!(f, "node {node} references nonexistent fanin {fanin}")
            }
            NetlistError::CombinationalCycle(id) => {
                write!(f, "combinational cycle through node {id}")
            }
            NetlistError::AmbiguousName { node, name } => {
                write!(f, "node {node} has missing or duplicate name `{name}`")
            }
            NetlistError::UnsupportedEdit { node, reason } => {
                write!(f, "unsupported edit at node {node}: {reason}")
            }
            NetlistError::DeltaBaseMismatch { expected, found } => {
                write!(
                    f,
                    "delta was written against a {expected}-node base but applied to {found} nodes"
                )
            }
        }
    }
}

impl Error for NetlistError {}
