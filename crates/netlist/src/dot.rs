//! Graphviz DOT export for visual inspection of circuits.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Renders a circuit as a Graphviz `digraph`.
///
/// Inputs are drawn as triangles, flip-flops as boxes, gates as
/// ellipses labelled with their kind; primary outputs get a double
/// circle marker node. Useful for debugging scan-path construction on
/// small circuits (`dot -Tsvg`).
///
/// # Examples
///
/// ```
/// use fscan_netlist::{to_dot, Circuit, GateKind};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g = c.add_gate(GateKind::Not, vec![a], "g");
/// c.mark_output(g);
/// let dot = to_dot(&c);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("NOT"));
/// ```
pub fn to_dot(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", circuit.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (id, node) in circuit.iter() {
        let name = node.name().unwrap_or("");
        let label = if name.is_empty() {
            format!("{id}")
        } else {
            format!("{name}\\n{id}")
        };
        let shape = match node.kind() {
            GateKind::Input => "triangle",
            GateKind::Dff => "box",
            GateKind::Const0 | GateKind::Const1 => "diamond",
            _ => "ellipse",
        };
        let kind_label = match node.kind() {
            GateKind::Input => label.clone(),
            k => format!("{k}\\n{label}"),
        };
        let _ = writeln!(out, "  {id} [shape={shape}, label=\"{kind_label}\"];");
    }
    for (id, node) in circuit.iter() {
        for (pin, &src) in node.fanin().iter().enumerate() {
            if src == id && node.kind() == GateKind::Dff {
                continue; // unconnected placeholder
            }
            let _ = writeln!(out, "  {src} -> {id} [label=\"{pin}\"];");
        }
    }
    for (k, &o) in circuit.outputs().iter().enumerate() {
        let _ = writeln!(out, "  po{k} [shape=doublecircle, label=\"PO{k}\"];");
        let _ = writeln!(out, "  {o} -> po{k};");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_nodes_and_edges() {
        let mut c = Circuit::new("dot");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::Nand, vec![a, b], "g");
        let ff = c.add_dff(g, "ff");
        c.mark_output(ff);
        let dot = to_dot(&c);
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.contains("NAND"));
        assert!(dot.contains("shape=box"));      // the flip-flop
        assert!(dot.contains("shape=triangle")); // inputs
        assert!(dot.contains("doublecircle"));   // the PO marker
        // Edges: a->g, b->g, g->ff, ff->po0.
        assert_eq!(dot.matches(" -> ").count(), 4);
    }

    #[test]
    fn placeholder_dff_self_loop_omitted() {
        let mut c = Circuit::new("dot");
        let _ff = c.add_dff_placeholder("ff");
        let dot = to_dot(&c);
        assert_eq!(dot.matches(" -> ").count(), 0);
    }
}
