//! The compiled circuit plan: CSR adjacency, levelized order and index
//! tables, built once and shared by every engine.
//!
//! Historically each engine (`CombEvaluator`, `ImplicationEngine`,
//! `ParallelFaultSim`, PODEM, the unroller…) rederived levels and fanout
//! lists from [`Circuit`] on construction. [`CompiledTopology`] performs
//! that derivation exactly once and packs the result into flat,
//! cache-friendly arrays:
//!
//! * fanin and fanout adjacency in CSR form (one `u32` offset array plus
//!   flat edge arrays instead of `Vec<Vec<…>>`);
//! * the Kahn levelization (full topological order, per-node levels,
//!   combinational depth) — identical, entry for entry, to
//!   [`Levelization`](crate::Levelization), which now serves as the
//!   naive reference oracle;
//! * the evaluation order (gates and constants only) with per-node
//!   positions, shared by every levelized and event-driven simulator;
//! * gate kinds in a flat SoA array and the PI/PO/DFF index tables.
//!
//! The struct is immutable after construction; engines hold it behind an
//! [`Arc`] so one compilation serves all pipeline stages and every
//! worker thread. The process-wide build counter
//! ([`CompiledTopology::builds`]) lets tests assert the compile-once
//! property.
//!
//! Invariants (checked by the proptest oracle in `tests/props.rs`):
//!
//! * `fanin(id)` equals `Circuit::node(id).fanin()` byte for byte
//!   (including a placeholder flip-flop's self edge);
//! * `fanouts(id)` equals `FanoutTable::fanouts(id)` (the placeholder
//!   self edge is *skipped*, exactly as there);
//! * `order()`/`level(id)`/`depth()` equal the [`Levelization`] results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// Process-wide count of topology compilations (see
/// [`CompiledTopology::builds`]).
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// An immutable, flat compilation of a [`Circuit`]: CSR fanin/fanout
/// adjacency, the levelized order, per-node levels, gate kinds in SoA
/// layout and the PI/PO/DFF index tables.
///
/// Built once per design (see [`fscan_scan::ScanDesign::topology`] in
/// the scan crate) and shared by reference across every engine and
/// worker thread.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, CompiledTopology, GateKind};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
/// let g2 = c.add_gate(GateKind::And, vec![a, g1], "g2");
/// let topo = CompiledTopology::compile(&c);
/// assert_eq!(topo.level(g2), 2);
/// assert_eq!(topo.fanout_sinks(a), &[g1, g2]);
/// assert_eq!(topo.fanin(g2), &[a, g1]);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledTopology {
    num_nodes: usize,
    kinds: Vec<GateKind>,
    fanin_offsets: Vec<u32>,
    fanin_edges: Vec<NodeId>,
    fanout_offsets: Vec<u32>,
    fanout_sinks: Vec<NodeId>,
    fanout_pins: Vec<u32>,
    order: Vec<NodeId>,
    level: Vec<u32>,
    depth: u32,
    eval_order: Vec<NodeId>,
    eval_pos: Vec<u32>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    output_reads: Vec<u32>,
}

impl CompiledTopology {
    /// Compiles `circuit` into its flat plan. This is the only place in
    /// the workspace that levelizes or builds fanout adjacency for
    /// production engines; each call increments the process-wide
    /// [`builds`](Self::builds) counter.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has combinational cycles (call
    /// [`Circuit::validate`] first for a proper error).
    pub fn compile(circuit: &Circuit) -> CompiledTopology {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = circuit.num_nodes();

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_offsets = Vec::with_capacity(n + 1);
        let mut fanin_edges = Vec::new();
        fanin_offsets.push(0u32);
        for (_, node) in circuit.iter() {
            kinds.push(node.kind());
            fanin_edges.extend_from_slice(node.fanin());
            fanin_offsets.push(fanin_edges.len() as u32);
        }

        // Fanout CSR: counting pass, then fill. Iterating nodes in id
        // order and pins in pin order reproduces FanoutTable's per-source
        // ordering exactly. A placeholder DFF feeds back on itself; skip
        // that edge so traversals do not see a phantom reader.
        let mut fanout_offsets = vec![0u32; n + 1];
        for (id, node) in circuit.iter() {
            for &src in node.fanin() {
                if src == id && node.kind() == GateKind::Dff {
                    continue;
                }
                fanout_offsets[src.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_offsets[i + 1] += fanout_offsets[i];
        }
        let num_edges = fanout_offsets[n] as usize;
        let mut fanout_sinks = vec![NodeId::from_index(0); num_edges];
        let mut fanout_pins = vec![0u32; num_edges];
        let mut next = fanout_offsets.clone();
        for (id, node) in circuit.iter() {
            for (pin, &src) in node.fanin().iter().enumerate() {
                if src == id && node.kind() == GateKind::Dff {
                    continue;
                }
                let slot = next[src.index()] as usize;
                next[src.index()] += 1;
                fanout_sinks[slot] = id;
                fanout_pins[slot] = pin as u32;
            }
        }

        // Kahn levelization over combinational edges, identical to the
        // naive `Levelization` reference: DFF fanins are sequential edges
        // and do not count, DFF/Input/Const nodes sit at level 0, and the
        // queue is seeded in node-id order.
        let mut level = vec![0u32; n];
        let mut indegree = vec![0u32; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        for (id, node) in circuit.iter() {
            if node.kind().is_gate() {
                indegree[id.index()] = node.fanin().len() as u32;
            }
        }
        let mut queue: Vec<NodeId> = circuit
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            let lo = fanout_offsets[id.index()] as usize;
            let hi = fanout_offsets[id.index() + 1] as usize;
            for &sink in &fanout_sinks[lo..hi] {
                if !kinds[sink.index()].is_gate() {
                    continue;
                }
                let l = level[id.index()] + 1;
                if l > level[sink.index()] {
                    level[sink.index()] = l;
                }
                indegree[sink.index()] -= 1;
                if indegree[sink.index()] == 0 {
                    queue.push(sink);
                }
            }
        }
        assert_eq!(
            order.len(),
            n,
            "topology compilation failed: combinational cycle present"
        );
        let depth = level.iter().copied().max().unwrap_or(0);

        let eval_order: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&id| {
                let k = kinds[id.index()];
                k.is_gate() || matches!(k, GateKind::Const0 | GateKind::Const1)
            })
            .collect();
        let mut eval_pos = vec![u32::MAX; n];
        for (i, &id) in eval_order.iter().enumerate() {
            eval_pos[id.index()] = i as u32;
        }

        let mut output_reads = vec![0u32; n];
        for &po in circuit.outputs() {
            output_reads[po.index()] += 1;
        }

        CompiledTopology {
            num_nodes: n,
            kinds,
            fanin_offsets,
            fanin_edges,
            fanout_offsets,
            fanout_sinks,
            fanout_pins,
            order,
            level,
            depth,
            eval_order,
            eval_pos,
            inputs: circuit.inputs().to_vec(),
            outputs: circuit.outputs().to_vec(),
            dffs: circuit.dffs().to_vec(),
            output_reads,
        }
    }

    /// [`compile`](Self::compile) wrapped in an [`Arc`], ready to share
    /// across engines and worker threads.
    pub fn shared(circuit: &Circuit) -> Arc<CompiledTopology> {
        Arc::new(CompiledTopology::compile(circuit))
    }

    /// Process-wide number of [`compile`](Self::compile) calls since
    /// startup. Tests snapshot this before and after a pipeline run to
    /// verify the compile-once property.
    pub fn builds() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The kind of node `id` (flat SoA lookup).
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id.index()]
    }

    /// The fanin nets of node `id` in pin order — identical to
    /// `Circuit::node(id).fanin()`, including a placeholder flip-flop's
    /// self edge.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        let lo = self.fanin_offsets[id.index()] as usize;
        let hi = self.fanin_offsets[id.index() + 1] as usize;
        &self.fanin_edges[lo..hi]
    }

    /// The sink nodes reading node `id`'s output (flip-flop D pins
    /// included; placeholder self edges and output markers excluded).
    pub fn fanout_sinks(&self, id: NodeId) -> &[NodeId] {
        let lo = self.fanout_offsets[id.index()] as usize;
        let hi = self.fanout_offsets[id.index() + 1] as usize;
        &self.fanout_sinks[lo..hi]
    }

    /// The pin index at which each [`fanout_sinks`](Self::fanout_sinks)
    /// entry reads node `id` (parallel slice).
    pub fn fanout_pins(&self, id: NodeId) -> &[u32] {
        let lo = self.fanout_offsets[id.index()] as usize;
        let hi = self.fanout_offsets[id.index() + 1] as usize;
        &self.fanout_pins[lo..hi]
    }

    /// The `(sink, pin)` readers of node `id` — the
    /// [`FanoutTable`](crate::FanoutTable)-shaped view over the CSR
    /// slices.
    pub fn fanouts(&self, id: NodeId) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.fanout_sinks(id)
            .iter()
            .zip(self.fanout_pins(id).iter())
            .map(|(&sink, &pin)| (sink, pin as usize))
    }

    /// Number of fanout readers of node `id` (output markers excluded).
    pub fn fanout_count(&self, id: NodeId) -> usize {
        self.fanout_sinks(id).len()
    }

    /// How many primary-output markers read node `id`.
    pub fn output_reads(&self, id: NodeId) -> usize {
        self.output_reads[id.index()] as usize
    }

    /// All nodes in topological (non-decreasing level) order; level-0
    /// nodes (inputs, constants, flip-flops) come first.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The level of a node (0 for inputs, constants and flip-flops).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum level in the circuit (combinational depth).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The evaluation order: constants and gates only, topologically
    /// sorted — the subsequence of [`order`](Self::order) every
    /// simulator walks.
    pub fn eval_order(&self) -> &[NodeId] {
        &self.eval_order
    }

    /// Each node's position in [`eval_order`](Self::eval_order), indexed
    /// by node id (`u32::MAX` for nodes outside it: inputs, flip-flops).
    /// Event-driven consumers use this to schedule gates topologically.
    pub fn order_positions(&self) -> &[u32] {
        &self.eval_pos
    }

    /// Primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output markers in creation order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flops in creation order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::level::{FanoutTable, Levelization};

    fn assert_matches_naive(c: &Circuit) {
        let topo = CompiledTopology::compile(c);
        let lv = Levelization::new(c);
        let fot = FanoutTable::new(c);
        assert_eq!(topo.order(), lv.order());
        for id in c.node_ids() {
            assert_eq!(topo.level(id), lv.level(id), "{id}");
            assert_eq!(topo.fanin(id), c.node(id).fanin(), "{id}");
            assert_eq!(topo.kind(id), c.node(id).kind(), "{id}");
            let csr: Vec<(NodeId, usize)> = topo.fanouts(id).collect();
            assert_eq!(csr.as_slice(), fot.fanouts(id), "{id}");
        }
        assert_eq!(topo.depth(), lv.depth());
        assert_eq!(topo.inputs(), c.inputs());
        assert_eq!(topo.outputs(), c.outputs());
        assert_eq!(topo.dffs(), c.dffs());
    }

    #[test]
    fn matches_naive_derivation_on_generated_circuits() {
        for seed in [1u64, 7, 23] {
            let c = generate(&GeneratorConfig::new("topo", seed).gates(120).dffs(9));
            assert_matches_naive(&c);
        }
    }

    #[test]
    fn placeholder_self_edge_is_in_fanin_but_not_fanout() {
        let mut c = Circuit::new("t");
        let ff = c.add_dff_placeholder("ff");
        let topo = CompiledTopology::compile(&c);
        assert_eq!(topo.fanin(ff), &[ff]);
        assert!(topo.fanout_sinks(ff).is_empty());
    }

    #[test]
    fn eval_order_excludes_inputs_and_dffs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k = c.add_const(true, "k");
        let g = c.add_gate(GateKind::And, vec![a, k], "g");
        let ff = c.add_dff(g, "ff");
        c.mark_output(ff);
        let topo = CompiledTopology::compile(&c);
        assert_eq!(topo.eval_order(), &[k, g]);
        let pos = topo.order_positions();
        assert_eq!(pos[a.index()], u32::MAX);
        assert_eq!(pos[ff.index()], u32::MAX);
        assert_eq!(pos[g.index()], 1);
        assert_eq!(topo.output_reads(ff), 1);
        assert_eq!(topo.output_reads(g), 0);
    }

    #[test]
    fn build_counter_increments() {
        let c = generate(&GeneratorConfig::new("cnt", 3).gates(30).dffs(2));
        let before = CompiledTopology::builds();
        let _one = CompiledTopology::compile(&c);
        let _two = CompiledTopology::shared(&c);
        assert!(CompiledTopology::builds() >= before + 2);
    }
}
