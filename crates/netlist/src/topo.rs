//! The compiled circuit plan: CSR adjacency, levelized order and index
//! tables, built once and shared by every engine.
//!
//! Historically each engine (`CombEvaluator`, `ImplicationEngine`,
//! `ParallelFaultSim`, PODEM, the unroller…) rederived levels and fanout
//! lists from [`Circuit`] on construction. [`CompiledTopology`] performs
//! that derivation exactly once and packs the result into flat,
//! cache-friendly arrays:
//!
//! * fanin and fanout adjacency in CSR form (one `u32` offset array plus
//!   flat edge arrays instead of `Vec<Vec<…>>`);
//! * the Kahn levelization (full topological order, per-node levels,
//!   combinational depth) — identical, entry for entry, to
//!   [`Levelization`](crate::Levelization), which now serves as the
//!   naive reference oracle;
//! * the evaluation order (gates and constants only) with per-node
//!   positions, shared by every levelized and event-driven simulator;
//! * gate kinds in a flat SoA array and the PI/PO/DFF index tables.
//!
//! The struct is immutable after construction; engines hold it behind an
//! [`Arc`] so one compilation serves all pipeline stages and every
//! worker thread. The process-wide build counter
//! ([`CompiledTopology::builds`]) lets tests assert the compile-once
//! property.
//!
//! Invariants (checked by the proptest oracle in `tests/props.rs`):
//!
//! * `fanin(id)` equals `Circuit::node(id).fanin()` byte for byte
//!   (including a placeholder flip-flop's self edge);
//! * `fanouts(id)` equals `FanoutTable::fanouts(id)` (the placeholder
//!   self edge is *skipped*, exactly as there);
//! * `order()`/`level(id)`/`depth()` equal the [`Levelization`] results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::circuit::{Circuit, NodeId};
use crate::delta::NetlistDelta;
use crate::gate::GateKind;

/// Process-wide count of topology compilations (see
/// [`CompiledTopology::builds`]).
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// The raw node table a topology is compiled from — the shared input of
/// both the cold path ([`CompiledTopology::compile`], built from a
/// [`Circuit`]) and the incremental path
/// ([`CompiledTopology::patch`], built from a base topology plus a
/// [`NetlistDelta`]). Keeping one compilation core guarantees the two
/// paths produce bit-identical plans.
struct NodeTable {
    kinds: Vec<GateKind>,
    fanin_offsets: Vec<u32>,
    fanin_edges: Vec<NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
}

/// Which parts of a patched topology actually changed, as computed by
/// [`CompiledTopology::patch`] and consumed by every downstream reuse
/// decision (trace replay, verdict carry-forward, fault re-enqueueing).
///
/// Three nested sets, all in patched-circuit node ids:
///
/// * [`touched`](DirtyInfo::touched) — the nodes the edit script names
///   directly (added, re-driven, removed);
/// * [`cones`](DirtyInfo::cones) — the forward closure of `touched`
///   over fanout edges, **crossing flip-flops**: every node whose
///   good-machine value may differ from the base design on some cycle;
/// * [`support`](DirtyInfo::support) — the backward closure of `cones`
///   over fanin edges of both the patched and the base netlist: every
///   node from which a changed value or a changed propagation path is
///   reachable. A fault is invalidated by the edit **iff** its affected
///   node lies in `support`; a fault outside it has its entire fault
///   cone (effect region and observation sites) in territory where the
///   good machine is provably unchanged.
///
/// When the edit changes the primary-input, primary-output or flip-flop
/// *lists* themselves (scan order, vector layout), incremental reuse is
/// unsound no matter how small the cone; such patches report
/// [`is_full`](DirtyInfo::is_full) and all three sets cover the whole
/// node table.
#[derive(Clone, Debug)]
pub struct DirtyInfo {
    touched: Vec<NodeId>,
    cones: Vec<NodeId>,
    support: Vec<NodeId>,
    full: bool,
}

impl DirtyInfo {
    /// Nodes the edit script names directly, sorted by id.
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// The dirty fanout cones (forward closure of
    /// [`touched`](Self::touched), flip-flop crossing), sorted by id.
    pub fn cones(&self) -> &[NodeId] {
        &self.cones
    }

    /// The invalidation support (backward closure of
    /// [`cones`](Self::cones) over base ∪ patched fanin), sorted by id.
    pub fn support(&self) -> &[NodeId] {
        &self.support
    }

    /// Whether `id` lies in a dirty cone.
    pub fn in_cones(&self, id: NodeId) -> bool {
        self.cones.binary_search(&id).is_ok()
    }

    /// Whether `id` lies in the invalidation support — the per-fault
    /// invalidation test.
    pub fn in_support(&self, id: NodeId) -> bool {
        self.support.binary_search(&id).is_ok()
    }

    /// `true` when the edit forces full recomputation (primary-input,
    /// primary-output or flip-flop list changed).
    pub fn is_full(&self) -> bool {
        self.full
    }
}

/// An immutable, flat compilation of a [`Circuit`]: CSR fanin/fanout
/// adjacency, the levelized order, per-node levels, gate kinds in SoA
/// layout and the PI/PO/DFF index tables.
///
/// Built once per design (see [`fscan_scan::ScanDesign::topology`] in
/// the scan crate) and shared by reference across every engine and
/// worker thread.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, CompiledTopology, GateKind};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
/// let g2 = c.add_gate(GateKind::And, vec![a, g1], "g2");
/// let topo = CompiledTopology::compile(&c);
/// assert_eq!(topo.level(g2), 2);
/// assert_eq!(topo.fanout_sinks(a), &[g1, g2]);
/// assert_eq!(topo.fanin(g2), &[a, g1]);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledTopology {
    num_nodes: usize,
    kinds: Vec<GateKind>,
    fanin_offsets: Vec<u32>,
    fanin_edges: Vec<NodeId>,
    fanout_offsets: Vec<u32>,
    fanout_sinks: Vec<NodeId>,
    fanout_pins: Vec<u32>,
    order: Vec<NodeId>,
    level: Vec<u32>,
    depth: u32,
    eval_order: Vec<NodeId>,
    eval_pos: Vec<u32>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    output_reads: Vec<u32>,
    dirty: Option<DirtyInfo>,
}

impl CompiledTopology {
    /// Compiles `circuit` into its flat plan. This is the only place in
    /// the workspace that levelizes or builds fanout adjacency for
    /// production engines; each call increments the process-wide
    /// [`builds`](Self::builds) counter.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has combinational cycles (call
    /// [`Circuit::validate`] first for a proper error).
    pub fn compile(circuit: &Circuit) -> CompiledTopology {
        BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = circuit.num_nodes();

        let mut kinds = Vec::with_capacity(n);
        let mut fanin_offsets = Vec::with_capacity(n + 1);
        let mut fanin_edges = Vec::new();
        fanin_offsets.push(0u32);
        for (_, node) in circuit.iter() {
            kinds.push(node.kind());
            fanin_edges.extend_from_slice(node.fanin());
            fanin_offsets.push(fanin_edges.len() as u32);
        }

        Self::compile_parts(
            NodeTable {
                kinds,
                fanin_offsets,
                fanin_edges,
                inputs: circuit.inputs().to_vec(),
                outputs: circuit.outputs().to_vec(),
                dffs: circuit.dffs().to_vec(),
            },
            None,
        )
    }

    /// The shared compilation core: every plan — cold or patched — is
    /// derived from a [`NodeTable`] by this one function, which is what
    /// makes [`patch`](Self::patch) bit-identical to a fresh
    /// [`compile`](Self::compile) of the patched circuit.
    fn compile_parts(t: NodeTable, dirty: Option<DirtyInfo>) -> CompiledTopology {
        let NodeTable {
            kinds,
            fanin_offsets,
            fanin_edges,
            inputs,
            outputs,
            dffs,
        } = t;
        let n = kinds.len();
        let fanin = |id: usize| {
            &fanin_edges[fanin_offsets[id] as usize..fanin_offsets[id + 1] as usize]
        };

        // Fanout CSR: counting pass, then fill. Iterating nodes in id
        // order and pins in pin order reproduces FanoutTable's per-source
        // ordering exactly. A placeholder DFF feeds back on itself; skip
        // that edge so traversals do not see a phantom reader.
        let mut fanout_offsets = vec![0u32; n + 1];
        for (id, &kind) in kinds.iter().enumerate() {
            for &src in fanin(id) {
                if src.index() == id && kind == GateKind::Dff {
                    continue;
                }
                fanout_offsets[src.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_offsets[i + 1] += fanout_offsets[i];
        }
        let num_edges = fanout_offsets[n] as usize;
        let mut fanout_sinks = vec![NodeId::from_index(0); num_edges];
        let mut fanout_pins = vec![0u32; num_edges];
        let mut next = fanout_offsets.clone();
        for (id, &kind) in kinds.iter().enumerate() {
            for (pin, &src) in fanin(id).iter().enumerate() {
                if src.index() == id && kind == GateKind::Dff {
                    continue;
                }
                let slot = next[src.index()] as usize;
                next[src.index()] += 1;
                fanout_sinks[slot] = NodeId::from_index(id);
                fanout_pins[slot] = pin as u32;
            }
        }

        // Kahn levelization over combinational edges, identical to the
        // naive `Levelization` reference: DFF fanins are sequential edges
        // and do not count, DFF/Input/Const nodes sit at level 0, and the
        // queue is seeded in node-id order.
        let mut level = vec![0u32; n];
        let mut indegree = vec![0u32; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        for id in 0..n {
            if kinds[id].is_gate() {
                indegree[id] = fanin(id).len() as u32;
            }
        }
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&id| indegree[id] == 0)
            .map(NodeId::from_index)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            let lo = fanout_offsets[id.index()] as usize;
            let hi = fanout_offsets[id.index() + 1] as usize;
            for &sink in &fanout_sinks[lo..hi] {
                if !kinds[sink.index()].is_gate() {
                    continue;
                }
                let l = level[id.index()] + 1;
                if l > level[sink.index()] {
                    level[sink.index()] = l;
                }
                indegree[sink.index()] -= 1;
                if indegree[sink.index()] == 0 {
                    queue.push(sink);
                }
            }
        }
        assert_eq!(
            order.len(),
            n,
            "topology compilation failed: combinational cycle present"
        );
        let depth = level.iter().copied().max().unwrap_or(0);

        let eval_order: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&id| {
                let k = kinds[id.index()];
                k.is_gate() || matches!(k, GateKind::Const0 | GateKind::Const1)
            })
            .collect();
        let mut eval_pos = vec![u32::MAX; n];
        for (i, &id) in eval_order.iter().enumerate() {
            eval_pos[id.index()] = i as u32;
        }

        let mut output_reads = vec![0u32; n];
        for &po in &outputs {
            output_reads[po.index()] += 1;
        }

        CompiledTopology {
            num_nodes: n,
            kinds,
            fanin_offsets,
            fanin_edges,
            fanout_offsets,
            fanout_sinks,
            fanout_pins,
            order,
            level,
            depth,
            eval_order,
            eval_pos,
            inputs,
            outputs,
            dffs,
            output_reads,
            dirty,
        }
    }

    /// Rebuilds the plan for the circuit obtained by applying `delta` to
    /// this topology's circuit, without consulting the [`Circuit`]
    /// again: the patched node table is reconstructed from the base plan
    /// plus the edit script and fed through the same compilation core as
    /// [`compile`](Self::compile), so the result is **bit-identical** to
    /// `CompiledTopology::compile(&delta.apply(&base)?)` — and a full
    /// build is just a patch against the empty design.
    ///
    /// The returned topology additionally carries a [`DirtyInfo`]
    /// (see [`dirty`](Self::dirty)) describing the invalidated cones
    /// for downstream incremental consumers. `patch` does **not**
    /// increment the process-wide [`builds`](Self::builds) counter —
    /// that counts cold compilations only.
    ///
    /// # Panics
    ///
    /// Panics if `delta` was written against a different base size or
    /// the edit introduces a combinational cycle; apply the delta to the
    /// actual circuit first ([`NetlistDelta::apply`] validates) when the
    /// script is untrusted.
    pub fn patch(&self, delta: &NetlistDelta) -> CompiledTopology {
        assert_eq!(
            self.num_nodes, delta.base_nodes,
            "delta was written against a {}-node base, topology has {}",
            delta.base_nodes, self.num_nodes
        );
        let base_n = self.num_nodes;
        let n = base_n + delta.added.len();

        let removed: std::collections::HashSet<NodeId> =
            delta.removed.iter().copied().collect();
        let mut redriven: std::collections::HashMap<NodeId, (GateKind, Vec<NodeId>)> =
            std::collections::HashMap::with_capacity(delta.redriven.len());
        for r in &delta.redriven {
            let fanin: Vec<NodeId> = r.fanin.iter().map(|f| f.resolve(base_n)).collect();
            redriven.insert(r.node, (r.kind, fanin));
        }

        // Reconstruct the patched node table row by row.
        let mut kinds = Vec::with_capacity(n);
        let mut fanin_offsets = Vec::with_capacity(n + 1);
        let mut fanin_edges = Vec::new();
        fanin_offsets.push(0u32);
        for id in 0..base_n {
            let nid = NodeId::from_index(id);
            if removed.contains(&nid) {
                kinds.push(GateKind::Const0);
            } else if let Some((k, f)) = redriven.get(&nid) {
                kinds.push(*k);
                fanin_edges.extend_from_slice(f);
            } else {
                kinds.push(self.kinds[id]);
                fanin_edges.extend_from_slice(self.fanin(nid));
            }
            fanin_offsets.push(fanin_edges.len() as u32);
        }
        for dn in &delta.added {
            kinds.push(dn.kind);
            for &f in &dn.fanin {
                fanin_edges.push(f.resolve(base_n));
            }
            fanin_offsets.push(fanin_edges.len() as u32);
        }

        let survives = |id: &NodeId| !removed.contains(id);
        let mut inputs: Vec<NodeId> = self.inputs.iter().copied().filter(survives).collect();
        let mut dffs: Vec<NodeId> = self.dffs.iter().copied().filter(survives).collect();
        let mut outputs: Vec<NodeId> = self.outputs.iter().copied().filter(survives).collect();
        for (i, dn) in delta.added.iter().enumerate() {
            let id = NodeId::from_index(base_n + i);
            match dn.kind {
                GateKind::Input => inputs.push(id),
                GateKind::Dff => dffs.push(id),
                _ => {}
            }
        }
        outputs.extend(delta.outputs.iter().map(|o| o.resolve(base_n)));

        let dirty = self.dirty_info(delta, n, &kinds, &fanin_offsets, &fanin_edges, |t| {
            t.inputs != inputs || t.outputs != outputs || t.dffs != dffs
        });

        Self::compile_parts(
            NodeTable {
                kinds,
                fanin_offsets,
                fanin_edges,
                inputs,
                outputs,
                dffs,
            },
            Some(dirty),
        )
    }

    /// Computes the [`DirtyInfo`] for `delta` against this base plan,
    /// given the patched node table under construction.
    fn dirty_info(
        &self,
        delta: &NetlistDelta,
        n: usize,
        kinds: &[GateKind],
        fanin_offsets: &[u32],
        fanin_edges: &[NodeId],
        lists_changed: impl Fn(&CompiledTopology) -> bool,
    ) -> DirtyInfo {
        let touched = delta.touched();
        if lists_changed(self) {
            // Scan order / vector layout changed: everything is dirty.
            let all: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
            return DirtyInfo {
                touched,
                cones: all.clone(),
                support: all,
                full: true,
            };
        }

        let patched_fanin =
            |id: usize| &fanin_edges[fanin_offsets[id] as usize..fanin_offsets[id + 1] as usize];

        // Forward closure of the touched set over patched fanout edges,
        // crossing flip-flops: the patched fanin CSR is inverted on the
        // fly (the dedicated fanout CSR does not exist yet — it is built
        // by compile_parts after this analysis).
        let mut in_cone = vec![false; n];
        let mut stack: Vec<NodeId> = touched.clone();
        for &t in &stack {
            in_cone[t.index()] = true;
        }
        // Readers are found by scanning fanins once and recording, per
        // source, its reader list (only needed for the traversal here;
        // small deltas still pay O(E) once, same as compile_parts).
        let mut reader_offsets = vec![0u32; n + 1];
        for (id, &kind) in kinds.iter().enumerate() {
            for &src in patched_fanin(id) {
                if src.index() == id && kind == GateKind::Dff {
                    continue;
                }
                reader_offsets[src.index() + 1] += 1;
            }
        }
        for i in 0..n {
            reader_offsets[i + 1] += reader_offsets[i];
        }
        let mut readers = vec![NodeId::from_index(0); reader_offsets[n] as usize];
        let mut next = reader_offsets.clone();
        for (id, &kind) in kinds.iter().enumerate() {
            for &src in patched_fanin(id) {
                if src.index() == id && kind == GateKind::Dff {
                    continue;
                }
                readers[next[src.index()] as usize] = NodeId::from_index(id);
                next[src.index()] += 1;
            }
        }
        while let Some(node) = stack.pop() {
            let lo = reader_offsets[node.index()] as usize;
            let hi = reader_offsets[node.index() + 1] as usize;
            for &sink in &readers[lo..hi] {
                if !in_cone[sink.index()] {
                    in_cone[sink.index()] = true;
                    stack.push(sink);
                }
            }
        }
        let cones: Vec<NodeId> = (0..n)
            .filter(|&i| in_cone[i])
            .map(NodeId::from_index)
            .collect();

        // Backward closure of the cones over the union of patched and
        // base fanin edges: old propagation paths of re-driven/removed
        // nodes must invalidate their upstream faults too.
        let mut in_support = in_cone;
        let mut stack: Vec<NodeId> = cones.clone();
        while let Some(node) = stack.pop() {
            let mut visit = |src: NodeId| {
                if src != node && !in_support[src.index()] {
                    in_support[src.index()] = true;
                    stack.push(src);
                }
            };
            for &src in patched_fanin(node.index()) {
                visit(src);
            }
            if node.index() < self.num_nodes {
                for &src in self.fanin(node) {
                    visit(src);
                }
            }
        }
        let support: Vec<NodeId> = (0..n)
            .filter(|&i| in_support[i])
            .map(NodeId::from_index)
            .collect();

        DirtyInfo {
            touched,
            cones,
            support,
            full: false,
        }
    }

    /// [`compile`](Self::compile) wrapped in an [`Arc`], ready to share
    /// across engines and worker threads.
    pub fn shared(circuit: &Circuit) -> Arc<CompiledTopology> {
        Arc::new(CompiledTopology::compile(circuit))
    }

    /// Process-wide number of [`compile`](Self::compile) calls since
    /// startup. Tests snapshot this before and after a pipeline run to
    /// verify the compile-once property.
    pub fn builds() -> u64 {
        BUILDS.load(Ordering::Relaxed)
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The kind of node `id` (flat SoA lookup).
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id.index()]
    }

    /// The fanin nets of node `id` in pin order — identical to
    /// `Circuit::node(id).fanin()`, including a placeholder flip-flop's
    /// self edge.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        let lo = self.fanin_offsets[id.index()] as usize;
        let hi = self.fanin_offsets[id.index() + 1] as usize;
        &self.fanin_edges[lo..hi]
    }

    /// The sink nodes reading node `id`'s output (flip-flop D pins
    /// included; placeholder self edges and output markers excluded).
    pub fn fanout_sinks(&self, id: NodeId) -> &[NodeId] {
        let lo = self.fanout_offsets[id.index()] as usize;
        let hi = self.fanout_offsets[id.index() + 1] as usize;
        &self.fanout_sinks[lo..hi]
    }

    /// The pin index at which each [`fanout_sinks`](Self::fanout_sinks)
    /// entry reads node `id` (parallel slice).
    pub fn fanout_pins(&self, id: NodeId) -> &[u32] {
        let lo = self.fanout_offsets[id.index()] as usize;
        let hi = self.fanout_offsets[id.index() + 1] as usize;
        &self.fanout_pins[lo..hi]
    }

    /// The `(sink, pin)` readers of node `id` — the
    /// [`FanoutTable`](crate::FanoutTable)-shaped view over the CSR
    /// slices.
    pub fn fanouts(&self, id: NodeId) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.fanout_sinks(id)
            .iter()
            .zip(self.fanout_pins(id).iter())
            .map(|(&sink, &pin)| (sink, pin as usize))
    }

    /// Number of fanout readers of node `id` (output markers excluded).
    pub fn fanout_count(&self, id: NodeId) -> usize {
        self.fanout_sinks(id).len()
    }

    /// How many primary-output markers read node `id`.
    pub fn output_reads(&self, id: NodeId) -> usize {
        self.output_reads[id.index()] as usize
    }

    /// All nodes in topological (non-decreasing level) order; level-0
    /// nodes (inputs, constants, flip-flops) come first.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The level of a node (0 for inputs, constants and flip-flops).
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// The maximum level in the circuit (combinational depth).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The evaluation order: constants and gates only, topologically
    /// sorted — the subsequence of [`order`](Self::order) every
    /// simulator walks.
    pub fn eval_order(&self) -> &[NodeId] {
        &self.eval_order
    }

    /// Each node's position in [`eval_order`](Self::eval_order), indexed
    /// by node id (`u32::MAX` for nodes outside it: inputs, flip-flops).
    /// Event-driven consumers use this to schedule gates topologically.
    pub fn order_positions(&self) -> &[u32] {
        &self.eval_pos
    }

    /// Primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output markers in creation order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flops in creation order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// The dirty-set analysis attached by [`patch`](Self::patch), or
    /// `None` for a cold [`compile`](Self::compile).
    pub fn dirty(&self) -> Option<&DirtyInfo> {
        self.dirty.as_ref()
    }

    /// The dirty fanout cones of the patch that produced this topology
    /// (empty for a cold compile) — the set downstream layers scope
    /// their recomputation to.
    pub fn dirty_cones(&self) -> &[NodeId] {
        self.dirty.as_ref().map_or(&[], |d| d.cones())
    }

    /// Structural equality of two plans, ignoring the dirty-set
    /// annotation: `true` iff every derived artifact (adjacency, levels,
    /// orders, index tables) is bit-identical. The patch-vs-compile
    /// differential oracles are phrased in terms of this.
    pub fn same_plan(&self, other: &CompiledTopology) -> bool {
        self.num_nodes == other.num_nodes
            && self.kinds == other.kinds
            && self.fanin_offsets == other.fanin_offsets
            && self.fanin_edges == other.fanin_edges
            && self.fanout_offsets == other.fanout_offsets
            && self.fanout_sinks == other.fanout_sinks
            && self.fanout_pins == other.fanout_pins
            && self.order == other.order
            && self.level == other.level
            && self.depth == other.depth
            && self.eval_order == other.eval_order
            && self.eval_pos == other.eval_pos
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.dffs == other.dffs
            && self.output_reads == other.output_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::level::{FanoutTable, Levelization};

    fn assert_matches_naive(c: &Circuit) {
        let topo = CompiledTopology::compile(c);
        let lv = Levelization::new(c);
        let fot = FanoutTable::new(c);
        assert_eq!(topo.order(), lv.order());
        for id in c.node_ids() {
            assert_eq!(topo.level(id), lv.level(id), "{id}");
            assert_eq!(topo.fanin(id), c.node(id).fanin(), "{id}");
            assert_eq!(topo.kind(id), c.node(id).kind(), "{id}");
            let csr: Vec<(NodeId, usize)> = topo.fanouts(id).collect();
            assert_eq!(csr.as_slice(), fot.fanouts(id), "{id}");
        }
        assert_eq!(topo.depth(), lv.depth());
        assert_eq!(topo.inputs(), c.inputs());
        assert_eq!(topo.outputs(), c.outputs());
        assert_eq!(topo.dffs(), c.dffs());
    }

    #[test]
    fn matches_naive_derivation_on_generated_circuits() {
        for seed in [1u64, 7, 23] {
            let c = generate(&GeneratorConfig::new("topo", seed).gates(120).dffs(9));
            assert_matches_naive(&c);
        }
    }

    #[test]
    fn placeholder_self_edge_is_in_fanin_but_not_fanout() {
        let mut c = Circuit::new("t");
        let ff = c.add_dff_placeholder("ff");
        let topo = CompiledTopology::compile(&c);
        assert_eq!(topo.fanin(ff), &[ff]);
        assert!(topo.fanout_sinks(ff).is_empty());
    }

    #[test]
    fn eval_order_excludes_inputs_and_dffs() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let k = c.add_const(true, "k");
        let g = c.add_gate(GateKind::And, vec![a, k], "g");
        let ff = c.add_dff(g, "ff");
        c.mark_output(ff);
        let topo = CompiledTopology::compile(&c);
        assert_eq!(topo.eval_order(), &[k, g]);
        let pos = topo.order_positions();
        assert_eq!(pos[a.index()], u32::MAX);
        assert_eq!(pos[ff.index()], u32::MAX);
        assert_eq!(pos[g.index()], 1);
        assert_eq!(topo.output_reads(ff), 1);
        assert_eq!(topo.output_reads(g), 0);
    }

    #[test]
    fn full_build_is_a_patch_against_the_empty_design() {
        let c = generate(&GeneratorConfig::new("cold", 11).gates(80).dffs(6));
        let empty = CompiledTopology::compile(&Circuit::new("cold"));
        let patched = empty.patch(&crate::delta::NetlistDelta::full(&c));
        let cold = CompiledTopology::compile(&c);
        assert!(patched.same_plan(&cold));
        // Everything is new, so the lists changed and the patch reports
        // full invalidation.
        assert!(patched.dirty().unwrap().is_full());
        assert!(cold.dirty().is_none());
        assert!(cold.dirty_cones().is_empty());
    }

    #[test]
    fn patch_matches_compile_of_applied_circuit() {
        use crate::delta::NetlistDelta;
        for seed in [2u64, 9, 41] {
            let base = generate(&GeneratorConfig::new("eco", seed).gates(100).dffs(8));
            let mut eco = base.clone();
            // Re-drive the first 2-input gate to the dual kind.
            let victim = base
                .iter()
                .find(|(_, n)| n.kind() == GateKind::And || n.kind() == GateKind::Or)
                .map(|(id, _)| id)
                .expect("generator always emits and/or gates");
            let dual = if base.node(victim).kind() == GateKind::And {
                GateKind::Or
            } else {
                GateKind::And
            };
            eco.redrive(victim, dual, base.node(victim).fanin().to_vec());
            // And add a small spare cell reading an existing net.
            let probe = base.inputs()[0];
            let x = eco.add_gate(GateKind::Not, vec![probe], "eco_spare");
            let _ = x;

            let delta = NetlistDelta::diff(&base, &eco).unwrap();
            let patched_circuit = delta.apply(&base).unwrap();
            let base_topo = CompiledTopology::compile(&base);
            let patched = base_topo.patch(&delta);
            let cold = CompiledTopology::compile(&patched_circuit);
            assert!(patched.same_plan(&cold), "seed {seed}");

            let dirty = patched.dirty().unwrap();
            assert!(!dirty.is_full());
            assert!(dirty.in_cones(victim));
            assert!(dirty.in_support(victim));
            // Everything the victim feeds, transitively, is in the cone.
            for &sink in base_topo.fanout_sinks(victim) {
                assert!(dirty.in_cones(sink));
            }
            // The victim's sources are invalidated support but their
            // values are clean.
            for &src in base.node(victim).fanin() {
                assert!(dirty.in_support(src));
            }
        }
    }

    #[test]
    fn isolated_addition_has_minimal_dirty_set() {
        use crate::delta::{DeltaNode, DeltaRef, NetlistDelta};
        let base = generate(&GeneratorConfig::new("iso", 5).gates(60).dffs(4));
        let n = base.num_nodes();
        // A spare cell island: a constant plus a NOT reading only it.
        let delta = NetlistDelta {
            base_nodes: n,
            added: vec![
                DeltaNode {
                    name: "spare_c".into(),
                    kind: GateKind::Const0,
                    fanin: vec![],
                },
                DeltaNode {
                    name: "spare_g".into(),
                    kind: GateKind::Not,
                    fanin: vec![DeltaRef::Added(0)],
                },
            ],
            redriven: vec![],
            removed: vec![],
            outputs: vec![],
        };
        let base_topo = CompiledTopology::compile(&base);
        let patched = base_topo.patch(&delta);
        let cold = CompiledTopology::compile(&delta.apply(&base).unwrap());
        assert!(patched.same_plan(&cold));
        let dirty = patched.dirty().unwrap();
        assert!(!dirty.is_full());
        let island = [NodeId::from_index(n), NodeId::from_index(n + 1)];
        assert_eq!(dirty.cones(), &island);
        assert_eq!(dirty.support(), &island);
    }

    #[test]
    fn build_counter_increments() {
        let c = generate(&GeneratorConfig::new("cnt", 3).gates(30).dffs(2));
        let before = CompiledTopology::builds();
        let _one = CompiledTopology::compile(&c);
        let _two = CompiledTopology::shared(&c);
        assert!(CompiledTopology::builds() >= before + 2);
    }
}
