//! The gate-level circuit model.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::GateKind;

/// Identifier of a node (and of the single net that node drives).
///
/// Ids are dense indices into the circuit's node table, assigned in
/// creation order, which makes them usable as vector indices in
/// simulators and ATPG engines.
///
/// # Examples
///
/// ```
/// use fscan_netlist::Circuit;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a raw index. Only meaningful for indices that
    /// exist in the circuit the id is used with.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node: its kind, fanin list and optional name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    kind: GateKind,
    fanin: Vec<NodeId>,
    name: Option<String>,
}

impl Node {
    /// The node's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The node's fanin nets in pin order.
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }

    /// The node's name, if it has one.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// A gate-level sequential circuit.
///
/// Nodes are primary inputs, combinational gates, constants and D
/// flip-flops. Primary outputs are markers referring to driving nodes.
/// The structure is freely mutable (needed by scan insertion); use
/// [`Circuit::validate`] to check invariants after editing.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
///
/// let mut c = Circuit::new("half_adder");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let sum = c.add_gate(GateKind::Xor, vec![a, b], "sum");
/// let carry = c.add_gate(GateKind::And, vec![a, b], "carry");
/// c.mark_output(sum);
/// c.mark_output(carry);
/// c.validate()?;
/// # Ok::<(), fscan_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
}

impl Circuit {
    /// Creates an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Circuit {
        Circuit {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push_node(Node {
            kind: GateKind::Input,
            fanin: Vec::new(),
            name: Some(name.into()),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a constant node of the given value and returns its id.
    pub fn add_const(&mut self, value: bool, name: impl Into<String>) -> NodeId {
        let kind = if value { GateKind::Const1 } else { GateKind::Const0 };
        self.push_node(Node {
            kind,
            fanin: Vec::new(),
            name: Some(name.into()),
        })
    }

    /// Adds a combinational gate with the given fanins and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a combinational gate kind or the fanin
    /// count violates the kind's arity.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanin: Vec<NodeId>,
        name: impl Into<String>,
    ) -> NodeId {
        assert!(kind.is_gate(), "add_gate requires a combinational kind");
        if let Some(n) = kind.fixed_arity() {
            assert_eq!(fanin.len(), n, "{kind} requires exactly {n} fanins");
        } else {
            assert!(!fanin.is_empty(), "{kind} requires at least one fanin");
        }
        self.push_node(Node {
            kind,
            fanin,
            name: Some(name.into()),
        })
    }

    /// Adds a D flip-flop whose D pin will be connected later with
    /// [`Circuit::set_dff_input`]. Returns the flip-flop's (Q output) id.
    ///
    /// A placeholder flip-flop temporarily feeds back on itself so the
    /// structure stays well-formed for traversals.
    pub fn add_dff_placeholder(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node {
            kind: GateKind::Dff,
            fanin: vec![id],
            name: Some(name.into()),
        });
        self.dffs.push(id);
        id
    }

    /// Adds a D flip-flop driven by `d` and returns its id.
    pub fn add_dff(&mut self, d: NodeId, name: impl Into<String>) -> NodeId {
        let id = self.push_node(Node {
            kind: GateKind::Dff,
            fanin: vec![d],
            name: Some(name.into()),
        });
        self.dffs.push(id);
        id
    }

    /// Connects the D pin of flip-flop `dff` to `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NotAFlipFlop`] if `dff` is not a DFF node.
    pub fn set_dff_input(&mut self, dff: NodeId, d: NodeId) -> Result<(), NetlistError> {
        let node = &mut self.nodes[dff.index()];
        if node.kind != GateKind::Dff {
            return Err(NetlistError::NotAFlipFlop(dff));
        }
        node.fanin[0] = d;
        Ok(())
    }

    /// Marks `node` as (driving) a primary output.
    pub fn mark_output(&mut self, node: NodeId) {
        self.outputs.push(node);
    }

    /// Re-drives an existing combinational gate in place: replaces its
    /// kind and entire fanin list while keeping its id (and therefore
    /// every reader) stable. The workhorse of ECO edit scripts
    /// ([`NetlistDelta`](crate::NetlistDelta)).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a combinational gate kind, if the fanin
    /// count violates the kind's arity, or if `node` is currently an
    /// input or flip-flop (drivers of those are rewired with
    /// [`Circuit::set_dff_input`], not re-driven).
    pub fn redrive(&mut self, node: NodeId, kind: GateKind, fanin: Vec<NodeId>) {
        assert!(kind.is_gate(), "redrive requires a combinational kind");
        if let Some(n) = kind.fixed_arity() {
            assert_eq!(fanin.len(), n, "{kind} requires exactly {n} fanins");
        } else {
            assert!(!fanin.is_empty(), "{kind} requires at least one fanin");
        }
        let n = &mut self.nodes[node.index()];
        assert!(
            n.kind.is_gate() || matches!(n.kind, GateKind::Const0 | GateKind::Const1),
            "redrive target must be a gate or constant, not {}",
            n.kind
        );
        n.kind = kind;
        n.fanin = fanin;
    }

    /// Tombstones a node: turns it into a renamed-as-removed `Const0`
    /// with no fanin and drops it from the input/flip-flop/output lists.
    /// Ids of every other node stay stable — the property incremental
    /// topology patching relies on. The caller is responsible for first
    /// rewiring any reader of `node` (a tombstoned node must be dead);
    /// [`Circuit::validate`] accepts the tombstone itself.
    pub fn tombstone(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.index()];
        n.kind = GateKind::Const0;
        n.fanin.clear();
        n.name = Some(format!("__removed_{}", node.index()));
        self.inputs.retain(|&i| i != node);
        self.dffs.retain(|&i| i != node);
        self.outputs.retain(|&o| o != node);
    }

    /// Replaces pin `pin` of node `node` with `new_src`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PinOutOfRange`] if `pin` is not a valid
    /// fanin index of `node`.
    pub fn replace_fanin(
        &mut self,
        node: NodeId,
        pin: usize,
        new_src: NodeId,
    ) -> Result<(), NetlistError> {
        let n = &mut self.nodes[node.index()];
        if pin >= n.fanin.len() {
            return Err(NetlistError::PinOutOfRange { node, pin });
        }
        n.fanin[pin] = new_src;
        Ok(())
    }

    /// Redirects every fanin reference to `old_src` (in gates, flip-flops
    /// and output markers) to `new_src`, except inside node `exempt`.
    ///
    /// This is the primitive used to splice a test point onto a net: the
    /// test-point gate keeps reading `old_src` while all other readers
    /// see the gated copy.
    pub fn retarget_readers(&mut self, old_src: NodeId, new_src: NodeId, exempt: NodeId) {
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            if idx == exempt.index() {
                continue;
            }
            for f in &mut node.fanin {
                if *f == old_src {
                    *f = new_src;
                }
            }
        }
        for out in &mut self.outputs {
            if *out == old_src {
                *out = new_src;
            }
        }
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Total number of nodes (inputs + constants + gates + flip-flops).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// Primary inputs in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output markers in creation order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flops in creation order.
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Ids of all nodes, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Looks up a node by name (linear scan; build your own map for bulk
    /// lookups).
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.iter()
            .find(|(_, n)| n.name() == Some(name))
            .map(|(id, _)| id)
    }

    /// Builds a name → id map for all named nodes.
    pub fn name_map(&self) -> HashMap<String, NodeId> {
        self.iter()
            .filter_map(|(id, n)| n.name().map(|s| (s.to_string(), id)))
            .collect()
    }

    /// Checks structural invariants: fanin ids in range, arity respected,
    /// no combinational cycles, no self-driven placeholder flip-flops
    /// left unexpected (self loops through a DFF are legal).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, node) in self.iter() {
            if let Some(arity) = node.kind.fixed_arity() {
                if node.fanin.len() != arity {
                    return Err(NetlistError::ArityMismatch {
                        node: id,
                        kind: node.kind,
                        got: node.fanin.len(),
                    });
                }
            } else if node.fanin.is_empty() {
                return Err(NetlistError::ArityMismatch {
                    node: id,
                    kind: node.kind,
                    got: 0,
                });
            }
            for &f in &node.fanin {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::DanglingFanin { node: id, fanin: f });
                }
            }
        }
        for &out in &self.outputs {
            if out.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingFanin {
                    node: out,
                    fanin: out,
                });
            }
        }
        self.check_combinational_cycles()
    }

    fn check_combinational_cycles(&self) -> Result<(), NetlistError> {
        // Iterative DFS over combinational edges only (DFF outputs break
        // cycles: we never traverse *into* a DFF's fanin).
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.nodes.len()];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..self.nodes.len() {
            if color[start] != WHITE || self.nodes[start].kind == GateKind::Dff {
                continue;
            }
            color[start] = GRAY;
            stack.push((start, 0));
            while let Some(&mut (n, ref mut next)) = stack.last_mut() {
                let node = &self.nodes[n];
                if *next < node.fanin.len() {
                    let f = node.fanin[*next].index();
                    *next += 1;
                    if self.nodes[f].kind == GateKind::Dff {
                        continue; // sequential edge, not part of comb graph
                    }
                    match color[f] {
                        WHITE => {
                            color[f] = GRAY;
                            stack.push((f, 0));
                        }
                        GRAY => {
                            return Err(NetlistError::CombinationalCycle(NodeId::from_index(f)))
                        }
                        _ => {}
                    }
                } else {
                    color[n] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit {}: {} nodes ({} inputs, {} gates, {} dffs, {} outputs)",
            self.name,
            self.num_nodes(),
            self.inputs.len(),
            self.num_gates(),
            self.dffs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Circuit, NodeId, NodeId, NodeId) {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g");
        c.mark_output(g);
        (c, a, b, g)
    }

    #[test]
    fn ids_are_dense() {
        let (c, a, b, g) = tiny();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(g.index(), 2);
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn validate_ok() {
        let (c, ..) = tiny();
        c.validate().unwrap();
    }

    #[test]
    fn dff_placeholder_roundtrip() {
        let mut c = Circuit::new("seq");
        let ff = c.add_dff_placeholder("ff");
        let inv = c.add_gate(GateKind::Not, vec![ff], "inv");
        c.set_dff_input(ff, inv).unwrap();
        c.mark_output(ff);
        c.validate().unwrap();
        assert_eq!(c.node(ff).fanin(), &[inv]);
        assert_eq!(c.dffs(), &[ff]);
    }

    #[test]
    fn set_dff_input_rejects_gate() {
        let (mut c, a, _, g) = tiny();
        let err = c.set_dff_input(g, a).unwrap_err();
        assert!(matches!(err, NetlistError::NotAFlipFlop(_)));
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut c = Circuit::new("cyc");
        let a = c.add_input("a");
        // g1 and g2 feed each other.
        let g1 = c.add_gate(GateKind::And, vec![a, a], "g1");
        let g2 = c.add_gate(GateKind::Or, vec![g1, a], "g2");
        c.replace_fanin(g1, 1, g2).unwrap();
        assert!(matches!(
            c.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn dff_breaks_cycle() {
        let mut c = Circuit::new("seqloop");
        let ff = c.add_dff_placeholder("ff");
        let g = c.add_gate(GateKind::Not, vec![ff], "g");
        c.set_dff_input(ff, g).unwrap();
        c.validate().unwrap();
    }

    #[test]
    fn retarget_readers_spares_exempt() {
        let mut c = Circuit::new("rt");
        let a = c.add_input("a");
        let g1 = c.add_gate(GateKind::Buf, vec![a], "g1");
        let g2 = c.add_gate(GateKind::Not, vec![a], "g2");
        c.mark_output(a);
        let tp = c.add_gate(GateKind::And, vec![a, a], "tp");
        c.retarget_readers(a, tp, tp);
        assert_eq!(c.node(g1).fanin(), &[tp]);
        assert_eq!(c.node(g2).fanin(), &[tp]);
        assert_eq!(c.node(tp).fanin(), &[a, a]);
        assert_eq!(c.outputs(), &[tp]);
    }

    #[test]
    fn find_by_name_works() {
        let (c, a, ..) = tiny();
        assert_eq!(c.find_by_name("a"), Some(a));
        assert_eq!(c.find_by_name("zzz"), None);
    }

    #[test]
    fn replace_fanin_bounds() {
        let (mut c, a, _, g) = tiny();
        assert!(c.replace_fanin(g, 5, a).is_err());
        c.replace_fanin(g, 0, a).unwrap();
        assert_eq!(c.node(g).fanin()[0], a);
    }

    #[test]
    fn display_summary() {
        let (c, ..) = tiny();
        let s = c.to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("2 inputs"));
    }
}
