//! Gate kinds and their Boolean structure.

use std::fmt;

/// The kind of a circuit node.
///
/// Every node drives exactly one net; the node id doubles as the net id.
/// `Input` nodes are primary inputs, `Dff` nodes are D flip-flops (their
/// single fanin is the D pin; the node's output is Q), and the remaining
/// kinds are combinational gates.
///
/// # Examples
///
/// ```
/// use fscan_netlist::GateKind;
///
/// assert_eq!(GateKind::And.controlling_value(), Some(false));
/// assert_eq!(GateKind::Nor.controlling_value(), Some(true));
/// assert!(GateKind::Nand.output_inverted());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
    /// Non-inverting buffer (one fanin).
    Buf,
    /// Inverter (one fanin).
    Not,
    /// AND gate (one or more fanins).
    And,
    /// NAND gate (one or more fanins).
    Nand,
    /// OR gate (one or more fanins).
    Or,
    /// NOR gate (one or more fanins).
    Nor,
    /// XOR gate (one or more fanins).
    Xor,
    /// XNOR gate (one or more fanins).
    Xnor,
    /// D flip-flop (one fanin: the D pin).
    Dff,
}

impl GateKind {
    /// All combinational multi-input kinds, useful for random generation.
    pub const COMBINATIONAL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Returns `true` for combinational gates (everything except
    /// `Input`, `Dff` and the constants).
    pub fn is_gate(self) -> bool {
        !matches!(
            self,
            GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
        )
    }

    /// Returns `true` if this node kind has state (only [`GateKind::Dff`]).
    pub fn is_sequential(self) -> bool {
        self == GateKind::Dff
    }

    /// The controlling input value of the gate, if it has one.
    ///
    /// A controlling value on any input determines the output regardless
    /// of the other inputs. AND/NAND are controlled by 0, OR/NOR by 1;
    /// XOR/XNOR and single-input gates have no controlling value.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// The side-input value that makes the gate transparent to one
    /// selected input, as used when sensitizing functional scan paths.
    ///
    /// For AND/NAND this is 1, for OR/NOR it is 0. For XOR/XNOR we pick
    /// 0 (the gate is then a buffer/inverter of the remaining input).
    /// Single-input gates return `None` because they have no side inputs.
    pub fn transparent_side_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(true),
            GateKind::Or | GateKind::Nor | GateKind::Xor | GateKind::Xnor => Some(false),
            _ => None,
        }
    }

    /// Whether the path through this gate inverts the sensitized input
    /// when all side inputs hold [`GateKind::transparent_side_value`].
    pub fn output_inverted(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// The number of fanins this kind requires: `Some(n)` for fixed
    /// arity, `None` for one-or-more.
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => Some(0),
            GateKind::Buf | GateKind::Not | GateKind::Dff => Some(1),
            _ => None,
        }
    }

    /// Evaluate the gate over fully-specified Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if called on `Input`, `Dff` or with an arity mismatch.
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Input | GateKind::Dff => {
                panic!("eval_bool called on non-combinational node kind {self:?}")
            }
        }
    }

    /// The `.bench` keyword for this kind, if it is representable.
    pub fn bench_keyword(self) -> Option<&'static str> {
        match self {
            GateKind::Buf => Some("BUF"),
            GateKind::Not => Some("NOT"),
            GateKind::And => Some("AND"),
            GateKind::Nand => Some("NAND"),
            GateKind::Or => Some("OR"),
            GateKind::Nor => Some("NOR"),
            GateKind::Xor => Some("XOR"),
            GateKind::Xnor => Some("XNOR"),
            GateKind::Dff => Some("DFF"),
            GateKind::Const0 => Some("CONST0"),
            GateKind::Const1 => Some("CONST1"),
            GateKind::Input => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Dff => "DFF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }

    #[test]
    fn transparency_is_non_controlling() {
        for kind in [GateKind::And, GateKind::Nand, GateKind::Or, GateKind::Nor] {
            let t = kind.transparent_side_value().unwrap();
            let c = kind.controlling_value().unwrap();
            assert_ne!(t, c, "{kind} transparent value must be non-controlling");
        }
    }

    #[test]
    fn inversion_parity_matches_eval() {
        // With side inputs at the transparent value, the gate must act as
        // BUF or NOT of the remaining input, per output_inverted().
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            let side = kind.transparent_side_value().unwrap();
            for data in [false, true] {
                let out = kind.eval_bool(&[data, side, side]);
                let expect = data ^ kind.output_inverted();
                assert_eq!(out, expect, "{kind} data={data}");
            }
        }
        assert!(!GateKind::Buf.output_inverted());
        assert!(GateKind::Not.output_inverted());
    }

    #[test]
    fn eval_bool_basics() {
        assert!(GateKind::And.eval_bool(&[true, true]));
        assert!(!GateKind::And.eval_bool(&[true, false]));
        assert!(GateKind::Nand.eval_bool(&[true, false]));
        assert!(GateKind::Or.eval_bool(&[false, true]));
        assert!(!GateKind::Nor.eval_bool(&[false, true]));
        assert!(GateKind::Xor.eval_bool(&[true, false, false]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, false]));
        assert!(GateKind::Xnor.eval_bool(&[true, true]));
        assert!(GateKind::Not.eval_bool(&[false]));
        assert!(GateKind::Buf.eval_bool(&[true]));
        assert!(!GateKind::Const0.eval_bool(&[]));
        assert!(GateKind::Const1.eval_bool(&[]));
    }

    #[test]
    fn arity_table() {
        assert_eq!(GateKind::Input.fixed_arity(), Some(0));
        assert_eq!(GateKind::Dff.fixed_arity(), Some(1));
        assert_eq!(GateKind::Not.fixed_arity(), Some(1));
        assert_eq!(GateKind::And.fixed_arity(), None);
    }

    #[test]
    fn display_roundtrip_keywords() {
        for kind in GateKind::COMBINATIONAL {
            assert_eq!(kind.bench_keyword().unwrap(), kind.to_string());
        }
    }
}
