//! Structural circuit statistics (the columns of the paper's Table 1).

use std::collections::BTreeMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::topo::CompiledTopology;

/// Structural statistics of a circuit.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, CircuitStats, GeneratorConfig};
///
/// let c = generate(&GeneratorConfig::new("t", 1).gates(50).dffs(4));
/// let stats = CircuitStats::new(&c);
/// assert_eq!(stats.gates, 50);
/// assert_eq!(stats.dffs, 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Combinational gate count.
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Combinational depth (max level).
    pub depth: u32,
    /// Average fanout of gate/input/FF nets.
    pub avg_fanout: f64,
    /// Gate count per kind.
    pub kind_histogram: BTreeMap<GateKind, usize>,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn new(circuit: &Circuit) -> CircuitStats {
        let topo = CompiledTopology::compile(circuit);
        let mut kind_histogram = BTreeMap::new();
        let mut fanout_sum = 0usize;
        for (id, node) in circuit.iter() {
            if node.kind().is_gate() {
                *kind_histogram.entry(node.kind()).or_insert(0) += 1;
            }
            fanout_sum += topo.fanout_count(id);
        }
        let n = circuit.num_nodes().max(1);
        CircuitStats {
            name: circuit.name().to_string(),
            inputs: circuit.inputs().len(),
            outputs: circuit.outputs().len(),
            gates: circuit.num_gates(),
            dffs: circuit.dffs().len(),
            depth: topo.depth(),
            avg_fanout: fanout_sum as f64 / n as f64,
            kind_histogram,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates, {} FFs, {} PIs, {} POs, depth {}, avg fanout {:.2}",
            self.name, self.gates, self.dffs, self.inputs, self.outputs, self.depth, self.avg_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn counts_small_circuit() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g");
        let ff = c.add_dff(g, "ff");
        c.mark_output(ff);
        let s = CircuitStats::new(&c);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 1);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.kind_histogram[&GateKind::And], 1);
        assert!(s.to_string().contains("1 gates"));
    }
}
