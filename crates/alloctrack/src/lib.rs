//! A counting global allocator and the stage-window accounting built on
//! it.
//!
//! The pipeline's per-stage [`MemMetrics`] needs two quantities only a
//! real allocator can observe: the high-water mark of live heap bytes
//! during a stage window, and how many `realloc` calls the stage
//! issued. This crate provides both without adding any allocation-path
//! branching beyond four relaxed atomics:
//!
//! * [`TrackingAlloc`] — a [`GlobalAlloc`] wrapper around
//!   [`System`] that maintains `CUR` (live bytes), `PEAK`
//!   (high-water of `CUR`) and `REALLOCS` counters;
//! * [`MemMark`] — a stage-window snapshot. [`stage_mark`] resets the
//!   high-water mark to the current live-byte level and records the
//!   realloc baseline; `MemMark::peak()` / `MemMark::reallocs()` then
//!   read the *within-window* peak and realloc count.
//!
//! Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fscan_alloctrack::TrackingAlloc = fscan_alloctrack::TrackingAlloc;
//! ```
//!
//! When no tracking allocator is installed every counter stays 0, so
//! [`installed`] reports `false` and callers emit zeroed peaks —
//! library unit tests never pay for tracking they did not ask for.
//!
//! The counters are process-wide: with several shard threads running, a
//! stage's peak is the peak of the whole process during that window —
//! an upper bound on any single shard's footprint, and inherently
//! nondeterministic. Consumers treat `peak_bytes`/`reallocs` like
//! wall-clock times: reported, trended, but stripped from determinism
//! diffs.
//!
//! This is the one place in the workspace that needs `unsafe` (a
//! `GlobalAlloc` impl cannot be written without it); the simulation and
//! netlist crates keep their `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live heap bytes right now (allocated minus freed through the
/// tracking allocator).
static CUR: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`CUR`] since the last [`stage_mark`] reset.
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Total `realloc` calls since process start.
static REALLOCS: AtomicU64 = AtomicU64::new(0);
/// Total allocation calls (`alloc` + `alloc_zeroed` + `realloc`) since
/// process start. Also serves as the "is a tracker installed?" probe.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

#[inline]
fn add_live(bytes: u64) {
    let now = CUR.fetch_add(bytes, Ordering::Relaxed) + bytes;
    // Lock-free high-water update. Relaxed is fine: these counters are
    // diagnostics, not synchronization.
    PEAK.fetch_max(now, Ordering::Relaxed);
}

#[inline]
fn sub_live(bytes: u64) {
    CUR.fetch_sub(bytes, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] that forwards to [`System`] and maintains the
/// process-wide live/peak/realloc counters. Install with
/// `#[global_allocator]` in a binary to make [`stage_mark`] windows
/// observe real traffic.
pub struct TrackingAlloc;

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates never touch the returned
// memory.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            add_live(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        sub_live(layout.size() as u64);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            add_live(layout.size() as u64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                add_live(new - old);
            } else {
                sub_live(old - new);
            }
        }
        p
    }
}

/// `true` when a [`TrackingAlloc`] is installed as the global allocator
/// (detected by having observed at least one allocation — any Rust
/// program allocates long before user code can ask).
pub fn installed() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

/// Live heap bytes right now (0 without a tracking allocator).
pub fn current_bytes() -> u64 {
    CUR.load(Ordering::Relaxed)
}

/// Total allocation calls since process start (0 without a tracking
/// allocator). Useful for "this path allocates at most N bytes" pins.
pub fn total_allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total `realloc` calls since process start (0 without a tracking
/// allocator). Unlike [`MemMark::reallocs`] this never resets — it is
/// the whole-process figure surfaced by long-lived services.
pub fn total_reallocs() -> u64 {
    REALLOCS.load(Ordering::Relaxed)
}

/// A stage-window baseline returned by [`stage_mark`].
///
/// # Examples
///
/// ```
/// let mark = fscan_alloctrack::stage_mark();
/// let data = vec![0u8; 1 << 16];
/// drop(data);
/// // Without a tracking allocator installed both read 0; with one, the
/// // window peak includes the vector.
/// let _ = (mark.peak(), mark.reallocs());
/// ```
#[derive(Copy, Clone, Debug)]
pub struct MemMark {
    reallocs_at: u64,
}

/// Opens a stage window: resets the process high-water mark down to the
/// current live-byte level and snapshots the realloc counter. The
/// returned [`MemMark`] reads the peak and realloc count *within* the
/// window.
///
/// Windows are not reentrant — a later `stage_mark` resets the shared
/// peak, so finish reading one window before opening the next (the
/// pipeline's stages are strictly sequential, which is exactly this
/// shape).
pub fn stage_mark() -> MemMark {
    PEAK.store(CUR.load(Ordering::Relaxed), Ordering::Relaxed);
    MemMark {
        reallocs_at: REALLOCS.load(Ordering::Relaxed),
    }
}

impl MemMark {
    /// High-water mark of process live heap bytes since this mark was
    /// taken. 0 when no tracking allocator is installed.
    pub fn peak(&self) -> u64 {
        if installed() {
            PEAK.load(Ordering::Relaxed)
        } else {
            0
        }
    }

    /// `realloc` calls since this mark was taken. 0 when no tracking
    /// allocator is installed.
    pub fn reallocs(&self) -> u64 {
        REALLOCS.load(Ordering::Relaxed).saturating_sub(self.reallocs_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so counters stay
    // flat: this pins the "absent tracker reads as zero" contract.
    #[test]
    fn without_installation_everything_reads_zero() {
        assert!(!installed());
        let mark = stage_mark();
        let v: Vec<u64> = (0..1024).collect();
        assert_eq!(v.len(), 1024);
        assert_eq!(mark.peak(), 0);
        assert_eq!(mark.reallocs(), 0);
        assert_eq!(current_bytes(), 0);
        assert_eq!(total_allocs(), 0);
        assert_eq!(total_reallocs(), 0);
    }
}
