//! Fault list bookkeeping.

use std::collections::HashMap;
use std::fmt;

use crate::model::Fault;

/// Lifecycle status of a fault in a test-generation campaign.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum FaultStatus {
    /// Not yet targeted or detected.
    #[default]
    Untested,
    /// Detected by some test sequence.
    Detected,
    /// Proven undetectable.
    Undetectable,
    /// Test generation gave up (backtrack/time limit).
    Aborted,
}

impl fmt::Display for FaultStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultStatus::Untested => "untested",
            FaultStatus::Detected => "detected",
            FaultStatus::Undetectable => "undetectable",
            FaultStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// An ordered fault list with per-fault status.
///
/// Preserves insertion order (so reports are deterministic) and offers
/// O(1) status updates by fault value.
///
/// # Examples
///
/// ```
/// use fscan_netlist::Circuit;
/// use fscan_fault::{Fault, FaultList, FaultStatus};
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let mut list = FaultList::new(vec![Fault::stem(a, false), Fault::stem(a, true)]);
/// list.set_status(Fault::stem(a, false), FaultStatus::Detected);
/// assert_eq!(list.count(FaultStatus::Detected), 1);
/// assert_eq!(list.remaining().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultList {
    faults: Vec<Fault>,
    status: Vec<FaultStatus>,
    index: HashMap<Fault, usize>,
}

impl FaultList {
    /// Creates a list from faults, all initially [`FaultStatus::Untested`].
    /// Duplicate faults are dropped.
    pub fn new(faults: Vec<Fault>) -> FaultList {
        let mut list = FaultList::default();
        for f in faults {
            list.push(f);
        }
        list
    }

    /// Appends a fault if not already present; returns whether it was added.
    pub fn push(&mut self, fault: Fault) -> bool {
        if self.index.contains_key(&fault) {
            return false;
        }
        self.index.insert(fault, self.faults.len());
        self.faults.push(fault);
        self.status.push(FaultStatus::Untested);
        true
    }

    /// Number of faults in the list.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The status of `fault`, or `None` if it is not in the list.
    pub fn status(&self, fault: Fault) -> Option<FaultStatus> {
        self.index.get(&fault).map(|&i| self.status[i])
    }

    /// Sets the status of `fault`. Returns the previous status, or `None`
    /// if the fault is not in the list.
    pub fn set_status(&mut self, fault: Fault, status: FaultStatus) -> Option<FaultStatus> {
        let &i = self.index.get(&fault)?;
        Some(std::mem::replace(&mut self.status[i], status))
    }

    /// Counts faults with the given status.
    pub fn count(&self, status: FaultStatus) -> usize {
        self.status.iter().filter(|&&s| s == status).count()
    }

    /// Iterates over `(fault, status)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Fault, FaultStatus)> + '_ {
        self.faults
            .iter()
            .zip(self.status.iter())
            .map(|(&f, &s)| (f, s))
    }

    /// Iterates over faults still [`FaultStatus::Untested`] or
    /// [`FaultStatus::Aborted`] (the ones a next phase should target).
    pub fn remaining(&self) -> impl Iterator<Item = Fault> + '_ {
        self.iter().filter_map(|(f, s)| {
            matches!(s, FaultStatus::Untested | FaultStatus::Aborted).then_some(f)
        })
    }

    /// Fault coverage: detected / (total − undetectable), or 1.0 for an
    /// empty effective universe.
    pub fn coverage(&self) -> f64 {
        let undetectable = self.count(FaultStatus::Undetectable);
        let effective = self.len().saturating_sub(undetectable);
        if effective == 0 {
            1.0
        } else {
            self.count(FaultStatus::Detected) as f64 / effective as f64
        }
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<T: IntoIterator<Item = Fault>>(iter: T) -> FaultList {
        FaultList::new(iter.into_iter().collect())
    }
}

impl Extend<Fault> for FaultList {
    fn extend<T: IntoIterator<Item = Fault>>(&mut self, iter: T) {
        for f in iter {
            self.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{Circuit, NodeId};

    fn some_node() -> NodeId {
        let mut c = Circuit::new("t");
        c.add_input("a")
    }

    #[test]
    fn dedup_on_push() {
        let n = some_node();
        let mut l = FaultList::new(vec![Fault::stem(n, false), Fault::stem(n, false)]);
        assert_eq!(l.len(), 1);
        assert!(!l.push(Fault::stem(n, false)));
        assert!(l.push(Fault::stem(n, true)));
    }

    #[test]
    fn status_transitions() {
        let n = some_node();
        let mut l = FaultList::new(vec![Fault::stem(n, false)]);
        assert_eq!(l.status(Fault::stem(n, false)), Some(FaultStatus::Untested));
        let prev = l.set_status(Fault::stem(n, false), FaultStatus::Detected);
        assert_eq!(prev, Some(FaultStatus::Untested));
        assert_eq!(l.count(FaultStatus::Detected), 1);
        assert_eq!(l.status(Fault::stem(n, true)), None);
    }

    #[test]
    fn remaining_skips_resolved() {
        let n = some_node();
        let mut l = FaultList::new(vec![Fault::stem(n, false), Fault::stem(n, true)]);
        l.set_status(Fault::stem(n, false), FaultStatus::Undetectable);
        let rem: Vec<_> = l.remaining().collect();
        assert_eq!(rem, vec![Fault::stem(n, true)]);
    }

    #[test]
    fn coverage_math() {
        let n = some_node();
        let mut l = FaultList::new(vec![Fault::stem(n, false), Fault::stem(n, true)]);
        l.set_status(Fault::stem(n, false), FaultStatus::Detected);
        l.set_status(Fault::stem(n, true), FaultStatus::Undetectable);
        assert!((l.coverage() - 1.0).abs() < f64::EPSILON);
        let empty = FaultList::default();
        assert!((empty.coverage() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn from_iterator_and_extend() {
        let n = some_node();
        let mut l: FaultList = [Fault::stem(n, false)].into_iter().collect();
        l.extend([Fault::stem(n, true), Fault::stem(n, false)]);
        assert_eq!(l.len(), 2);
    }
}
