//! Fault sites and the single stuck-at fault type.

use std::fmt;

use fscan_netlist::{Circuit, CompiledTopology, NodeId};

/// Where a stuck-at fault sits in the circuit structure.
///
/// A *stem* fault sits on a node's output net before any fanout; a
/// *branch* fault sits on one specific connection (the wire feeding pin
/// `pin` of node `gate`). The distinction matters in the presence of
/// fanout: a branch fault affects only one reader of the net.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Fault on the output net of a node.
    Stem(NodeId),
    /// Fault on the wire feeding one input pin of a node.
    Branch {
        /// The node whose input is faulty.
        gate: NodeId,
        /// The input pin index.
        pin: usize,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Stem(id) => write!(f, "{id}"),
            FaultSite::Branch { gate, pin } => write!(f, "{gate}.{pin}"),
        }
    }
}

/// A single stuck-at fault.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::Fault;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let fault = Fault::stem(a, false); // `a` stuck-at-0
/// assert_eq!(fault.to_string(), "n0 s-a-0");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The stuck value: `false` = stuck-at-0, `true` = stuck-at-1.
    pub stuck: bool,
}

impl Fault {
    /// A stuck-at fault on a node's output stem.
    pub fn stem(node: NodeId, stuck: bool) -> Fault {
        Fault {
            site: FaultSite::Stem(node),
            stuck,
        }
    }

    /// A stuck-at fault on the wire feeding `pin` of `gate`.
    pub fn branch(gate: NodeId, pin: usize, stuck: bool) -> Fault {
        Fault {
            site: FaultSite::Branch { gate, pin },
            stuck,
        }
    }

    /// The node whose *input cone* the fault perturbs: for a stem fault
    /// the faulted node itself, for a branch fault the reading gate.
    pub fn affected_node(&self) -> NodeId {
        match self.site {
            FaultSite::Stem(id) => id,
            FaultSite::Branch { gate, .. } => gate,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} s-a-{}", self.site, u8::from(self.stuck))
    }
}

/// Enumerates the full (uncollapsed) stuck-at fault universe of a
/// circuit: both polarities on every node output stem and on every
/// gate/flip-flop input pin that reads a net with fanout greater than
/// one. Input pins reading fanout-free nets are structurally identical
/// to the driver's stem and are not enumerated separately.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::all_faults;
///
/// let mut c = Circuit::new("t");
/// let a = c.add_input("a");
/// let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
/// let g2 = c.add_gate(GateKind::Not, vec![a], "g2");
/// c.mark_output(g1);
/// c.mark_output(g2);
/// // Stems: a, g1, g2 (2 faults each) + branches a->g1, a->g2 (2 each).
/// assert_eq!(all_faults(&c).len(), 10);
/// ```
pub fn all_faults(circuit: &Circuit) -> Vec<Fault> {
    all_faults_with(circuit, &CompiledTopology::compile(circuit))
}

/// [`all_faults`] against an already-compiled topology of `circuit`,
/// avoiding a redundant compilation when the caller shares one.
pub fn all_faults_with(circuit: &Circuit, topo: &CompiledTopology) -> Vec<Fault> {
    debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
    let mut faults = Vec::new();
    for (id, _node) in circuit.iter() {
        for stuck in [false, true] {
            faults.push(Fault::stem(id, stuck));
        }
    }
    for (id, node) in circuit.iter() {
        for (pin, &src) in node.fanin().iter().enumerate() {
            // Skip placeholder self-loop pins (DFF feeding itself).
            if src == id {
                continue;
            }
            let branches = topo.fanout_count(src) + topo.output_reads(src);
            if branches > 1 {
                for stuck in [false, true] {
                    faults.push(Fault::branch(id, pin, stuck));
                }
            }
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::GateKind;

    #[test]
    fn fanout_free_has_no_branch_faults() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a], "g");
        c.mark_output(g);
        let faults = all_faults(&c);
        assert!(faults.iter().all(|f| matches!(f.site, FaultSite::Stem(_))));
        assert_eq!(faults.len(), 4);
    }

    #[test]
    fn fanout_creates_branch_faults() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
        let g2 = c.add_gate(GateKind::Buf, vec![a], "g2");
        c.mark_output(g1);
        c.mark_output(g2);
        let faults = all_faults(&c);
        let branches: Vec<_> = faults
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Branch { .. }))
            .collect();
        assert_eq!(branches.len(), 4);
    }

    #[test]
    fn po_marker_counts_as_fanout() {
        // A net feeding both a gate and a PO has two readers: its gate
        // branch is enumerable.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Not, vec![a], "g");
        c.mark_output(a);
        c.mark_output(g);
        let faults = all_faults(&c);
        assert!(faults
            .iter()
            .any(|f| f.site == FaultSite::Branch { gate: g, pin: 0 }));
    }

    #[test]
    fn display_forms() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Buf, vec![a], "g");
        assert_eq!(Fault::stem(a, true).to_string(), "n0 s-a-1");
        assert_eq!(Fault::branch(g, 0, false).to_string(), "n1.0 s-a-0");
    }

    #[test]
    fn affected_node() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g = c.add_gate(GateKind::Buf, vec![a], "g");
        assert_eq!(Fault::stem(a, false).affected_node(), a);
        assert_eq!(Fault::branch(g, 0, false).affected_node(), g);
    }
}
