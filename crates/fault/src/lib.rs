//! Single stuck-at fault model for gate-level netlists.
//!
//! Provides the fault universe ([`all_faults`]), classic structural
//! equivalence collapsing ([`collapse`]), and fault-list bookkeeping
//! ([`FaultList`], [`FaultStatus`]) shared by the simulators, the ATPG
//! engines and the functional scan chain testing pipeline.
//!
//! # Examples
//!
//! ```
//! use fscan_netlist::{Circuit, GateKind};
//! use fscan_fault::{all_faults, collapse};
//!
//! let mut c = Circuit::new("t");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, vec![a, b], "g");
//! c.mark_output(g);
//! let all = all_faults(&c);
//! let collapsed = collapse(&c, &all);
//! assert!(collapsed.len() < all.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod list;
mod model;

pub use collapse::{collapse, collapse_with};
pub use list::{FaultList, FaultStatus};
pub use model::{all_faults, all_faults_with, Fault, FaultSite};
