//! Structural equivalence collapsing of stuck-at faults.

use std::collections::HashMap;

use fscan_netlist::{Circuit, CompiledTopology, GateKind};

use crate::model::{Fault, FaultSite};

/// Union-find over fault indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Collapses a fault universe by structural equivalence and returns one
/// representative per equivalence class, in a deterministic order.
///
/// The rules are the textbook ones (Abramovici et al., ch. 4):
///
/// * for AND/NAND (OR/NOR), a stuck-at-controlling fault on any input is
///   equivalent to the corresponding output fault;
/// * for BUF/NOT and flip-flops, each input fault is equivalent to the
///   output fault of matching (possibly inverted) polarity;
/// * an input pin reading a fanout-free net is the same line as the
///   driver's stem, so the input-pin fault collapses into the stem fault
///   (the universe from [`crate::all_faults`] already avoids enumerating
///   those).
///
/// Representatives are chosen to prefer *stem* sites (lowest node id
/// first), which later lets the simulators inject most faults cheaply.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{Circuit, GateKind};
/// use fscan_fault::{all_faults, collapse};
///
/// let mut c = Circuit::new("inv_chain");
/// let a = c.add_input("a");
/// let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
/// let g2 = c.add_gate(GateKind::Not, vec![g1], "g2");
/// c.mark_output(g2);
/// // Six stem faults collapse to two classes (the whole chain is one line).
/// assert_eq!(collapse(&c, &all_faults(&c)).len(), 2);
/// ```
pub fn collapse(circuit: &Circuit, universe: &[Fault]) -> Vec<Fault> {
    collapse_with(circuit, &CompiledTopology::compile(circuit), universe)
}

/// [`collapse`] against an already-compiled topology of `circuit`,
/// avoiding a redundant compilation when the caller shares one.
pub fn collapse_with(
    circuit: &Circuit,
    topo: &CompiledTopology,
    universe: &[Fault],
) -> Vec<Fault> {
    debug_assert_eq!(circuit.num_nodes(), topo.num_nodes());
    let index: HashMap<Fault, usize> = universe
        .iter()
        .copied()
        .enumerate()
        .map(|(i, f)| (f, i))
        .collect();
    let mut dsu = Dsu::new(universe.len());

    // Resolve the fault on pin `pin` of node `id` to a universe index:
    // if the net feeding that pin is fanout-free the fault *is* the
    // driver's stem fault.
    let output_readers = |src| topo.fanout_count(src) + topo.output_reads(src);
    let pin_fault = |id, pin, src, stuck| -> Option<usize> {
        if output_readers(src) > 1 {
            index.get(&Fault::branch(id, pin, stuck)).copied()
        } else {
            index.get(&Fault::stem(src, stuck)).copied()
        }
    };

    for (id, node) in circuit.iter() {
        let kind = node.kind();
        match kind {
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let c = kind
                    .controlling_value()
                    .expect("and/or family has controlling value");
                let out_val = c ^ kind.output_inverted();
                let Some(&out_idx) = index.get(&Fault::stem(id, out_val)) else {
                    continue;
                };
                for (pin, &src) in node.fanin().iter().enumerate() {
                    if let Some(fi) = pin_fault(id, pin, src, c) {
                        dsu.union(out_idx, fi);
                    }
                }
            }
            GateKind::Buf | GateKind::Not => {
                let inv = kind.output_inverted();
                let src = node.fanin()[0];
                for stuck in [false, true] {
                    let Some(&out_idx) = index.get(&Fault::stem(id, stuck ^ inv)) else {
                        continue;
                    };
                    if let Some(fi) = pin_fault(id, 0, src, stuck) {
                        dsu.union(out_idx, fi);
                    }
                }
            }
            GateKind::Dff => {
                let src = node.fanin()[0];
                if src == id {
                    continue; // unconnected placeholder
                }
                for stuck in [false, true] {
                    let Some(&out_idx) = index.get(&Fault::stem(id, stuck)) else {
                        continue;
                    };
                    if let Some(fi) = pin_fault(id, 0, src, stuck) {
                        dsu.union(out_idx, fi);
                    }
                }
            }
            _ => {}
        }
    }

    // Pick representatives: prefer stem faults, then lowest site order.
    let mut best: HashMap<usize, Fault> = HashMap::new();
    for (i, &f) in universe.iter().enumerate() {
        let root = dsu.find(i);
        match best.get(&root) {
            None => {
                best.insert(root, f);
            }
            Some(&cur) => {
                let prefer = match (f.site, cur.site) {
                    (FaultSite::Stem(_), FaultSite::Branch { .. }) => true,
                    (FaultSite::Branch { .. }, FaultSite::Stem(_)) => false,
                    _ => f < cur,
                };
                if prefer {
                    best.insert(root, f);
                }
            }
        }
    }
    let mut reps: Vec<Fault> = best.into_values().collect();
    reps.sort();
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::all_faults;
    use fscan_netlist::Circuit;

    #[test]
    fn and_gate_classic_count() {
        // 2-input AND, fanout-free: universe = 6 stem faults; collapsed =
        // textbook 4 (a1, b1, out0{=a0=b0}, out1).
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, vec![a, b], "g");
        c.mark_output(g);
        let reps = collapse(&c, &all_faults(&c));
        assert_eq!(reps.len(), 4);
        assert!(reps.contains(&Fault::stem(a, true)));
        assert!(reps.contains(&Fault::stem(b, true)));
        assert!(reps.contains(&Fault::stem(g, true)));
        // The controlling-input class is represented by a stem fault.
        let class0: Vec<_> = reps
            .iter()
            .filter(|f| !f.stuck && matches!(f.site, FaultSite::Stem(_)))
            .collect();
        assert_eq!(class0.len(), 1);
    }

    #[test]
    fn nand_inverts_class_polarity() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::Nand, vec![a, b], "g");
        c.mark_output(g);
        let reps = collapse(&c, &all_faults(&c));
        // a0 ≡ b0 ≡ g1  → 4 classes: {a0,b0,g1}, a1, b1, g0.
        assert_eq!(reps.len(), 4);
        assert!(reps.contains(&Fault::stem(g, false)));
        assert!(!reps.contains(&Fault::stem(g, true)) || !reps.contains(&Fault::stem(a, false)));
    }

    #[test]
    fn xor_collapses_nothing() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::Xor, vec![a, b], "g");
        c.mark_output(g);
        let all = all_faults(&c);
        assert_eq!(collapse(&c, &all).len(), all.len());
    }

    #[test]
    fn inverter_chain_two_classes() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let mut prev = a;
        for i in 0..5 {
            prev = c.add_gate(GateKind::Not, vec![prev], format!("i{i}"));
        }
        c.mark_output(prev);
        assert_eq!(collapse(&c, &all_faults(&c)).len(), 2);
    }

    #[test]
    fn dff_collapses_with_driver() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let ff = c.add_dff(a, "ff");
        c.mark_output(ff);
        // a0≡ff0, a1≡ff1 → 2 classes.
        assert_eq!(collapse(&c, &all_faults(&c)).len(), 2);
    }

    #[test]
    fn fanout_blocks_collapsing_across_stem() {
        // a fans out to two NOTs: branch faults stay distinct from the
        // stem fault classes of a.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
        let g2 = c.add_gate(GateKind::Not, vec![a], "g2");
        c.mark_output(g1);
        c.mark_output(g2);
        let reps = collapse(&c, &all_faults(&c));
        // Classes: a0, a1, {br(g1,0)0 ≡ g1_1}, {br(g1,0)1 ≡ g1_0},
        //          {br(g2,0)0 ≡ g2_1}, {br(g2,0)1 ≡ g2_0} → 6.
        assert_eq!(reps.len(), 6);
    }

    #[test]
    fn representatives_prefer_stems() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let g1 = c.add_gate(GateKind::Not, vec![a], "g1");
        let g2 = c.add_gate(GateKind::Not, vec![a], "g2");
        c.mark_output(g1);
        c.mark_output(g2);
        let reps = collapse(&c, &all_faults(&c));
        for f in &reps {
            if let FaultSite::Branch { .. } = f.site {
                // Branch representative only allowed when no stem fault is
                // in its class; here every branch fault is equivalent to a
                // NOT output stem fault, so none should be representative.
                panic!("branch fault {f} chosen over stem equivalent");
            }
        }
    }

    #[test]
    fn collapse_is_idempotent() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g1 = c.add_gate(GateKind::Nand, vec![a, b], "g1");
        let g2 = c.add_gate(GateKind::Nor, vec![g1, b], "g2");
        c.mark_output(g2);
        let once = collapse(&c, &all_faults(&c));
        let twice = collapse(&c, &once);
        assert_eq!(once, twice);
    }
}
