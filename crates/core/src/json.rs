//! The canonical JSON surface of the crate: one dependency-free value
//! model, parser and pair of printers, plus round-trip codecs for every
//! type that crosses a process boundary — [`PipelineConfig`],
//! [`PipelineReport`], [`StageMetrics`], [`WorkCounters`] and the
//! [`TestProgram`] payload inside a report.
//!
//! Before this module existed, JSON was hand-rolled at every emitter
//! (the bench snapshot writer, the history-record writer, the
//! line-oriented baseline scrapers). Those call sites now build or walk
//! a [`Value`] tree instead, so there is exactly one escaping routine,
//! one number format and one parser to audit — and the serving layer
//! (`fscan-serve`) decodes request configs and encodes reports with the
//! same code the CLI uses, guaranteeing the two surfaces never drift.
//!
//! Format contracts the printers uphold (committed snapshots depend on
//! them):
//!
//! * [`Value::render_pretty`] — two-space indentation, one key per
//!   line, floats always printed with six decimals and no exponent.
//!   Byte-identical to the historical `bench_json` emitter, so
//!   committed `BENCH_baseline*.json` files re-render to themselves.
//! * [`Value::render_compact`] — no whitespace at all, the
//!   `BENCH_history.jsonl` one-record-per-line format.
//! * Every wall-clock figure sits under a key containing `wall_s`, on
//!   its own line in pretty mode, so `grep -v wall_s` yields
//!   thread-count-invariant output (the CI determinism diff).

use std::fmt;
use std::time::Duration;

use fscan_atpg::{PodemConfig, SeqAtpgConfig};
use fscan_fault::{Fault, FaultSite};
use fscan_netlist::NodeId;
use fscan_sim::{
    ConeHist, LaneWidth, MemMetrics, ShardStats, StageMetrics, WorkCounters, CONE_HIST_BUCKETS, V3,
};

use crate::alternating::AlternatingReport;
use crate::classify::ClassifySummary;
use crate::comb_phase::CombPhaseReport;
use crate::compact::CompactionReport;
use crate::pipeline::{PipelineConfig, PipelineReport};
use crate::program::{ScanTest, TestProgram};
use crate::seq_phase::{DistParams, SeqPhaseReport};

/// A parsed or under-construction JSON document.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// emitters' field order is part of the committed-snapshot format, and
/// the round-trip guarantee (`parse` → [`render_pretty`](Self::render_pretty)
/// reproduces the input byte for byte) depends on it.
///
/// # Examples
///
/// ```
/// use fscan::json::{parse, Value};
///
/// let v = parse("{\"a\": [1, true, \"x\"]}")?;
/// assert_eq!(v.get("a").and_then(|a| a.index(0)).and_then(Value::as_u64), Some(1));
/// assert_eq!(v.render_compact(), "{\"a\":[1,true,\"x\"]}");
/// # Ok::<(), fscan::json::JsonError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, counts, ids).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float, printed with exactly six decimals.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with preserved key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value under `key`, when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i`, when `self` is an array.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, when `self` is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders with two-space indentation, one key per line, and a
    /// trailing newline — the committed-snapshot format.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders without any whitespace — the `.jsonl` record format.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_scalar(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => out.push_str(&itoa_u64(*v)),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => out.push_str(&float(*v)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(_) | Value::Object(_) => unreachable!("containers handled by callers"),
        }
    }

    fn write_pretty(&self, out: &mut String, level: usize) {
        match self {
            Value::Array(items) if items.is_empty() => out.push_str("[]"),
            Value::Object(fields) if fields.is_empty() => out.push_str("{}"),
            Value::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, level + 1);
                    item.write_pretty(out, level + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                push_indent(out, level);
                out.push(']');
            }
            Value::Object(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, level + 1);
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\": ");
                    value.write_pretty(out, level + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                push_indent(out, level);
                out.push('}');
            }
            scalar => scalar.write_scalar(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write_scalar(out),
        }
    }
}

fn itoa_u64(v: u64) -> String {
    v.to_string()
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// JSON number formatting for floats: always six decimals, never
/// exponent notation — so wall-clock figures re-render byte-identically
/// after a parse round trip.
fn float(v: f64) -> String {
    let s = format!("{v:.6}");
    debug_assert!(s.parse::<f64>().is_ok());
    s
}

/// Minimal JSON string escaping: quotes, backslashes and control
/// characters (the emitters' historical behavior).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A malformed document ([`parse`]) or a well-formed document with the
/// wrong shape (the `*_from_value` codecs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Builds an error from any displayable reason.
    pub fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// content rejected).
///
/// Fully standard grammar: all escape sequences including `\uXXXX`
/// surrogate pairs, signed/fractional/exponent numbers, nesting bounded
/// at 128 levels (the inputs are machine-generated; the bound only
/// guards the server against stack-abuse bodies).
///
/// # Errors
///
/// Returns a [`JsonError`] naming the byte offset of the first
/// violation.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl fmt::Display) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 leaves pos after the digits; undo the
                            // +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number characters");
        if fractional {
            let v: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
            if !v.is_finite() {
                return Err(self.err("non-finite number"));
            }
            Ok(Value::Float(v))
        } else if let Some(rest) = text.strip_prefix('-') {
            let v: i64 = rest
                .parse::<i64>()
                .map(|v| -v)
                .map_err(|_| self.err("integer out of range"))?;
            Ok(Value::Int(v))
        } else {
            let v: u64 = text.parse().map_err(|_| self.err("integer out of range"))?;
            Ok(Value::UInt(v))
        }
    }
}

// ---------------------------------------------------------------------
// Decoding helpers.
// ---------------------------------------------------------------------

/// A strict object reader: every key must be consumed exactly once, and
/// [`finish`](Self::finish) rejects unknown keys — the typo guard the
/// serving layer relies on to turn `"theads": 4` into a 4xx instead of
/// a silently ignored setting.
struct ObjReader<'a> {
    what: &'static str,
    fields: &'a [(String, Value)],
    seen: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    fn new(value: &'a Value, what: &'static str) -> Result<ObjReader<'a>, JsonError> {
        let fields = value
            .as_object()
            .ok_or_else(|| JsonError::new(format!("{what}: expected an object")))?;
        Ok(ObjReader {
            what,
            fields,
            seen: vec![false; fields.len()],
        })
    }

    fn take(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key && !self.seen[i] {
                self.seen[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn required(&mut self, key: &str) -> Result<&'a Value, JsonError> {
        let what = self.what;
        self.take(key)
            .ok_or_else(|| JsonError::new(format!("{what}: missing key \"{key}\"")))
    }

    fn u64(&mut self, key: &str) -> Result<u64, JsonError> {
        let what = self.what;
        self.required(key)?
            .as_u64()
            .ok_or_else(|| JsonError::new(format!("{what}: \"{key}\" must be a non-negative integer")))
    }

    fn usize(&mut self, key: &str) -> Result<usize, JsonError> {
        let what = self.what;
        usize::try_from(self.u64(key)?)
            .map_err(|_| JsonError::new(format!("{what}: \"{key}\" out of range")))
    }

    fn f64(&mut self, key: &str) -> Result<f64, JsonError> {
        let what = self.what;
        self.required(key)?
            .as_f64()
            .ok_or_else(|| JsonError::new(format!("{what}: \"{key}\" must be a number")))
    }

    fn str(&mut self, key: &str) -> Result<&'a str, JsonError> {
        let what = self.what;
        self.required(key)?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("{what}: \"{key}\" must be a string")))
    }

    fn finish(self) -> Result<(), JsonError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.seen[i] {
                return Err(JsonError::new(format!(
                    "{}: unknown key \"{k}\"",
                    self.what
                )));
            }
        }
        Ok(())
    }
}

fn node_from(v: u64, what: &'static str) -> Result<NodeId, JsonError> {
    usize::try_from(v)
        .map(NodeId::from_index)
        .map_err(|_| JsonError::new(format!("{what}: node id out of range")))
}

// ---------------------------------------------------------------------
// WorkCounters / ShardStats / StageMetrics.
// ---------------------------------------------------------------------

/// Encodes [`WorkCounters`] as an object in [`WorkCounters::fields`]
/// order — the exact block committed baselines carry.
pub fn counters_to_value(counters: &WorkCounters) -> Value {
    Value::Object(
        counters
            .fields()
            .iter()
            .map(|&(name, value)| (name.to_string(), Value::UInt(value)))
            .collect(),
    )
}

/// Decodes a counters object. Keys may be any subset of the known
/// counters (snapshots from before a counter existed still parse);
/// unknown keys are rejected.
pub fn counters_from_value(value: &Value) -> Result<WorkCounters, JsonError> {
    let fields = value
        .as_object()
        .ok_or_else(|| JsonError::new("counters: expected an object"))?;
    let mut out = WorkCounters::ZERO;
    for (key, v) in fields {
        let v = v
            .as_u64()
            .ok_or_else(|| JsonError::new(format!("counters: \"{key}\" must be an integer")))?;
        match key.as_str() {
            "gate_evals" => out.gate_evals = v,
            "lane_cycles" => out.lane_cycles = v,
            "implication_events" => out.implication_events = v,
            "cone_nets" => out.cone_nets = v,
            "podem_decisions" => out.podem_decisions = v,
            "podem_backtracks" => out.podem_backtracks = v,
            "podem_aborts" => out.podem_aborts = v,
            "windows_formed" => out.windows_formed = v,
            "early_exits" => out.early_exits = v,
            "topology_builds" => out.topology_builds = v,
            "scratch_reuses" => out.scratch_reuses = v,
            "implication_words" => out.implication_words = v,
            "kernel_gate_evals" => out.kernel_gate_evals = v,
            "faults_dropped" => out.faults_dropped = v,
            "vectors_compacted" => out.vectors_compacted = v,
            "podem_shards" => out.podem_shards = v,
            "cones_invalidated" => out.cones_invalidated = v,
            "verdicts_reused" => out.verdicts_reused = v,
            "trace_cycles_reused" => out.trace_cycles_reused = v,
            other => return Err(JsonError::new(format!("counters: unknown key \"{other}\""))),
        }
    }
    Ok(out)
}

/// Encodes [`ShardStats`] (worker count plus per-worker item counts).
pub fn shards_to_value(shards: &ShardStats) -> Value {
    Value::object([
        ("threads", Value::UInt(shards.threads as u64)),
        (
            "per_worker",
            Value::Array(
                shards
                    .per_worker
                    .iter()
                    .map(|&n| Value::UInt(n as u64))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes [`ShardStats`].
pub fn shards_from_value(value: &Value) -> Result<ShardStats, JsonError> {
    let mut r = ObjReader::new(value, "shards")?;
    let threads = r.usize("threads")?;
    let per_worker = r
        .required("per_worker")?
        .as_array()
        .ok_or_else(|| JsonError::new("shards: \"per_worker\" must be an array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| JsonError::new("shards: per_worker entries must be integers"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    r.finish()?;
    Ok(ShardStats {
        threads,
        per_worker,
    })
}

/// Encodes [`MemMetrics`] as an object in [`MemMetrics::scalar_fields`]
/// order, plus the cone histogram as a 16-element bucket array. The
/// nondeterministic keys (`peak_bytes`, `reallocs`) each sit on their
/// own line in pretty mode, so determinism diffs can strip them exactly
/// like `wall_s`.
pub fn mem_to_value(mem: &MemMetrics) -> Value {
    let mut fields: Vec<(String, Value)> = mem
        .scalar_fields()
        .iter()
        .map(|&(name, value)| (name.to_string(), Value::UInt(value)))
        .collect();
    fields.push((
        "cone_hist".to_string(),
        Value::Array(
            mem.cone_hist
                .buckets()
                .iter()
                .map(|&b| Value::UInt(b))
                .collect(),
        ),
    ));
    Value::Object(fields)
}

/// Decodes a [`MemMetrics`] object. Every key is optional (snapshots
/// from before a quantity existed still parse); unknown keys are
/// rejected.
pub fn mem_from_value(value: &Value) -> Result<MemMetrics, JsonError> {
    let mut r = ObjReader::new(value, "mem")?;
    let mut mem = MemMetrics::ZERO;
    let scalar = |v: Option<&Value>, key: &str| -> Result<u64, JsonError> {
        match v {
            None => Ok(0),
            Some(v) => v.as_u64().ok_or_else(|| {
                JsonError::new(format!("mem: \"{key}\" must be a non-negative integer"))
            }),
        }
    };
    mem.peak_bytes = scalar(r.take("peak_bytes"), "peak_bytes")?;
    mem.reallocs = scalar(r.take("reallocs"), "reallocs")?;
    mem.arena_bytes = scalar(r.take("arena_bytes"), "arena_bytes")?;
    if let Some(hist) = r.take("cone_hist") {
        let entries = hist
            .as_array()
            .ok_or_else(|| JsonError::new("mem: \"cone_hist\" must be an array"))?;
        if entries.len() != CONE_HIST_BUCKETS {
            return Err(JsonError::new(format!(
                "mem: \"cone_hist\" must have exactly {CONE_HIST_BUCKETS} buckets"
            )));
        }
        let mut buckets = [0u64; CONE_HIST_BUCKETS];
        for (slot, v) in buckets.iter_mut().zip(entries) {
            *slot = v
                .as_u64()
                .ok_or_else(|| JsonError::new("mem: cone_hist entries must be integers"))?;
        }
        mem.cone_hist = ConeHist::from_buckets(buckets);
    }
    r.finish()?;
    Ok(mem)
}

/// Encodes a [`StageMetrics`] record. The wall clock sits under
/// `wall_s` (so determinism diffs can strip it); shards, counters and
/// the memory accounting keep full fidelity.
pub fn metrics_to_value(metrics: &StageMetrics) -> Value {
    Value::object([
        ("wall_s", Value::Float(metrics.cpu.as_secs_f64())),
        ("shards", shards_to_value(&metrics.shards)),
        ("counters", counters_to_value(&metrics.counters)),
        ("mem", mem_to_value(&metrics.mem)),
    ])
}

/// Decodes a [`StageMetrics`] record. The `mem` block is optional:
/// snapshots committed before memory accounting existed decode to
/// [`MemMetrics::ZERO`].
pub fn metrics_from_value(value: &Value) -> Result<StageMetrics, JsonError> {
    let mut r = ObjReader::new(value, "metrics")?;
    let wall = r.f64("wall_s")?;
    if !(wall.is_finite() && wall >= 0.0) {
        return Err(JsonError::new("metrics: \"wall_s\" must be non-negative"));
    }
    let shards = shards_from_value(r.required("shards")?)?;
    let counters = counters_from_value(r.required("counters")?)?;
    let mem = match r.take("mem") {
        Some(v) => mem_from_value(v)?,
        None => MemMetrics::ZERO,
    };
    r.finish()?;
    let mut metrics = StageMetrics::new(Duration::from_secs_f64(wall), shards, counters);
    metrics.mem = mem;
    Ok(metrics)
}

// ---------------------------------------------------------------------
// PipelineConfig.
// ---------------------------------------------------------------------

/// Encodes a [`PipelineConfig`] with every field explicit — the
/// canonical wire form the serving layer echoes back and the decoder
/// accepts as a whole or in part.
pub fn config_to_value(config: &PipelineConfig) -> Value {
    let podem = |p: &PodemConfig| {
        Value::object([
            ("backtrack_limit", Value::UInt(p.backtrack_limit as u64)),
            ("step_limit", Value::UInt(p.step_limit as u64)),
        ])
    };
    let seq = |s: &SeqAtpgConfig| {
        Value::object([
            ("max_frames", Value::UInt(s.max_frames as u64)),
            ("backtrack_limit", Value::UInt(s.backtrack_limit as u64)),
            ("step_limit", Value::UInt(s.step_limit as u64)),
        ])
    };
    Value::object([
        ("podem", podem(&config.podem)),
        ("seq", seq(&config.seq)),
        ("final_seq", seq(&config.final_seq)),
        (
            "dist",
            match config.dist {
                None => Value::Null,
                Some(d) => Value::object([
                    ("large", Value::UInt(d.large as u64)),
                    ("med", Value::UInt(d.med as u64)),
                    ("dist", Value::UInt(d.dist as u64)),
                ]),
            },
        ),
        ("threads", Value::UInt(config.threads as u64)),
        ("lanes", Value::UInt(config.lane_width.lanes() as u64)),
    ])
}

/// Decodes a [`PipelineConfig`]. Every key is optional — missing ones
/// keep their [`PipelineConfig::default`] value, so `{"threads": 2}` is
/// a complete request config — but unknown keys and malformed values
/// are rejected, and the decoded configuration is validated exactly
/// like [`PipelineConfig::builder`] output.
pub fn config_from_value(value: &Value) -> Result<PipelineConfig, JsonError> {
    let mut r = ObjReader::new(value, "config")?;
    let mut config = PipelineConfig::default();
    if let Some(v) = r.take("podem") {
        let mut p = ObjReader::new(v, "config.podem")?;
        if let Some(b) = p.take("backtrack_limit") {
            config.podem.backtrack_limit = uint_field(b, "config.podem.backtrack_limit")?;
        }
        if let Some(s) = p.take("step_limit") {
            config.podem.step_limit = uint_field(s, "config.podem.step_limit")?;
        }
        p.finish()?;
    }
    for (key, target) in [("seq", 0usize), ("final_seq", 1)] {
        if let Some(v) = r.take(key) {
            let mut s = ObjReader::new(v, "config.seq")?;
            let cfg = if target == 0 {
                &mut config.seq
            } else {
                &mut config.final_seq
            };
            if let Some(f) = s.take("max_frames") {
                cfg.max_frames = uint_field(f, "config.seq.max_frames")?;
            }
            if let Some(b) = s.take("backtrack_limit") {
                cfg.backtrack_limit = uint_field(b, "config.seq.backtrack_limit")?;
            }
            if let Some(l) = s.take("step_limit") {
                cfg.step_limit = uint_field(l, "config.seq.step_limit")?;
            }
            s.finish()?;
        }
    }
    if let Some(v) = r.take("dist") {
        config.dist = match v {
            Value::Null => None,
            _ => {
                let mut d = ObjReader::new(v, "config.dist")?;
                let dist = DistParams {
                    large: d.usize("large")?,
                    med: d.usize("med")?,
                    dist: d.usize("dist")?,
                };
                d.finish()?;
                Some(dist)
            }
        };
    }
    if let Some(v) = r.take("threads") {
        config.threads = uint_field(v, "config.threads")?;
    }
    if let Some(v) = r.take("lanes") {
        let lanes = v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .and_then(LaneWidth::from_lanes)
            .ok_or_else(|| JsonError::new("config: \"lanes\" must be 64 or 256"))?;
        config.lane_width = lanes;
    }
    r.finish()?;
    config
        .validate()
        .map_err(|e| JsonError::new(format!("config: {e}")))?;
    Ok(config)
}

fn uint_field(v: &Value, what: &str) -> Result<usize, JsonError> {
    v.as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| JsonError::new(format!("{what} must be a non-negative integer")))
}

// ---------------------------------------------------------------------
// Faults, vectors, programs.
// ---------------------------------------------------------------------

/// Encodes a [`Fault`]: `{"stem": id, "stuck": b}` or
/// `{"gate": id, "pin": p, "stuck": b}`.
pub fn fault_to_value(fault: &Fault) -> Value {
    match fault.site {
        FaultSite::Stem(node) => Value::object([
            ("stem", Value::UInt(node.index() as u64)),
            ("stuck", Value::Bool(fault.stuck)),
        ]),
        FaultSite::Branch { gate, pin } => Value::object([
            ("gate", Value::UInt(gate.index() as u64)),
            ("pin", Value::UInt(pin as u64)),
            ("stuck", Value::Bool(fault.stuck)),
        ]),
    }
}

/// Decodes a [`Fault`].
pub fn fault_from_value(value: &Value) -> Result<Fault, JsonError> {
    let mut r = ObjReader::new(value, "fault")?;
    let fault = if let Some(stem) = r.take("stem") {
        let node = node_from(
            stem.as_u64()
                .ok_or_else(|| JsonError::new("fault: \"stem\" must be an integer"))?,
            "fault",
        )?;
        Fault::stem(node, bool_field(&mut r, "stuck")?)
    } else {
        let gate = node_from(r.u64("gate")?, "fault")?;
        let pin = r.usize("pin")?;
        Fault::branch(gate, pin, bool_field(&mut r, "stuck")?)
    };
    r.finish()?;
    Ok(fault)
}

fn bool_field(r: &mut ObjReader<'_>, key: &str) -> Result<bool, JsonError> {
    r.required(key)?
        .as_bool()
        .ok_or_else(|| JsonError::new(format!("fault: \"{key}\" must be a boolean")))
}

fn vectors_to_value(vectors: &[Vec<V3>]) -> Value {
    Value::Array(
        vectors
            .iter()
            .map(|v| {
                Value::Str(
                    v.iter()
                        .map(|b| match b {
                            V3::Zero => '0',
                            V3::One => '1',
                            V3::X => 'X',
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn vectors_from_value(value: &Value, what: &'static str) -> Result<Vec<Vec<V3>>, JsonError> {
    value
        .as_array()
        .ok_or_else(|| JsonError::new(format!("{what}: vectors must be an array")))?
        .iter()
        .map(|line| {
            line.as_str()
                .ok_or_else(|| JsonError::new(format!("{what}: each vector must be a string")))?
                .chars()
                .map(|c| match c {
                    '0' => Ok(V3::Zero),
                    '1' => Ok(V3::One),
                    'X' | 'x' => Ok(V3::X),
                    other => Err(JsonError::new(format!(
                        "{what}: invalid vector character '{other}'"
                    ))),
                })
                .collect()
        })
        .collect()
}

/// Encodes a [`TestProgram`]: one `{"label", "vectors"}` object per
/// test, vectors as `0`/`1`/`X` strings (one per cycle, inputs in
/// circuit order — the JSON twin of [`TestProgram::write_text`]).
pub fn program_to_value(program: &TestProgram) -> Value {
    Value::Array(
        program
            .tests()
            .iter()
            .map(|t| {
                Value::object([
                    ("label", Value::Str(t.label.clone())),
                    ("vectors", vectors_to_value(&t.vectors)),
                ])
            })
            .collect(),
    )
}

/// Decodes a [`TestProgram`].
pub fn program_from_value(value: &Value) -> Result<TestProgram, JsonError> {
    let mut program = TestProgram::new();
    for test in value
        .as_array()
        .ok_or_else(|| JsonError::new("program: expected an array"))?
    {
        let mut r = ObjReader::new(test, "program test")?;
        let label = r.str("label")?.to_string();
        let vectors = vectors_from_value(r.required("vectors")?, "program test")?;
        r.finish()?;
        program.push(ScanTest::new(label, vectors));
    }
    Ok(program)
}

// ---------------------------------------------------------------------
// PipelineReport.
// ---------------------------------------------------------------------

/// Encodes a full [`PipelineReport`] — every per-stage report with its
/// [`StageMetrics`], the undetected-fault list and the emitted
/// [`TestProgram`] — as one JSON object. This is the serving layer's
/// response body; [`report_from_value`] restores a structurally
/// identical report (wall-clock figures round to microseconds, the
/// `wall_s` print precision).
pub fn report_to_value(report: &PipelineReport) -> Value {
    Value::object([
        ("name", Value::Str(report.name.clone())),
        ("total_faults", Value::UInt(report.total_faults as u64)),
        ("rescued_easy", Value::UInt(report.rescued_easy as u64)),
        (
            "classification",
            Value::object([
                ("total", Value::UInt(report.classification.total as u64)),
                ("easy", Value::UInt(report.classification.easy as u64)),
                ("hard", Value::UInt(report.classification.hard as u64)),
                ("metrics", metrics_to_value(&report.classification.metrics)),
            ]),
        ),
        (
            "alternating",
            Value::object([
                ("targeted", Value::UInt(report.alternating.targeted as u64)),
                ("detected", Value::UInt(report.alternating.detected as u64)),
                (
                    "missed_easy",
                    Value::UInt(report.alternating.missed_easy as u64),
                ),
                ("cycles", Value::UInt(report.alternating.cycles as u64)),
                ("metrics", metrics_to_value(&report.alternating.metrics)),
            ]),
        ),
        (
            "comb",
            Value::object([
                ("targeted", Value::UInt(report.comb.targeted as u64)),
                ("detected", Value::UInt(report.comb.detected as u64)),
                ("undetectable", Value::UInt(report.comb.undetectable as u64)),
                ("undetected", Value::UInt(report.comb.undetected as u64)),
                ("vectors", Value::UInt(report.comb.vectors as u64)),
                ("cycles", Value::UInt(report.comb.cycles as u64)),
                (
                    "detection_curve",
                    Value::Array(
                        report
                            .comb
                            .detection_curve
                            .iter()
                            .map(|&(v, d)| {
                                Value::Array(vec![
                                    Value::UInt(v as u64),
                                    Value::UInt(d as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("metrics", metrics_to_value(&report.comb.metrics)),
            ]),
        ),
        (
            "compact",
            Value::object([
                ("tests_before", Value::UInt(report.compact.tests_before as u64)),
                ("tests_after", Value::UInt(report.compact.tests_after as u64)),
                (
                    "detected_before",
                    Value::UInt(report.compact.detected_before as u64),
                ),
                (
                    "detected_after",
                    Value::UInt(report.compact.detected_after as u64),
                ),
                ("lost", Value::UInt(report.compact.lost as u64)),
                ("metrics", metrics_to_value(&report.compact.metrics)),
            ]),
        ),
        (
            "seq",
            Value::object([
                ("targeted", Value::UInt(report.seq.targeted as u64)),
                ("detected", Value::UInt(report.seq.detected as u64)),
                ("unconfirmed", Value::UInt(report.seq.unconfirmed as u64)),
                ("undetectable", Value::UInt(report.seq.undetectable as u64)),
                ("undetected", Value::UInt(report.seq.undetected as u64)),
                (
                    "circuits_initial",
                    Value::UInt(report.seq.circuits_initial as u64),
                ),
                (
                    "circuits_final",
                    Value::UInt(report.seq.circuits_final as u64),
                ),
                ("metrics", metrics_to_value(&report.seq.metrics)),
            ]),
        ),
        (
            "undetected_faults",
            Value::Array(report.undetected_faults.iter().map(fault_to_value).collect()),
        ),
        ("program", program_to_value(&report.program)),
    ])
}

/// Decodes a [`PipelineReport`] encoded by [`report_to_value`].
pub fn report_from_value(value: &Value) -> Result<PipelineReport, JsonError> {
    let mut r = ObjReader::new(value, "report")?;
    let name = r.str("name")?.to_string();
    let total_faults = r.usize("total_faults")?;
    let rescued_easy = r.usize("rescued_easy")?;

    let mut c = ObjReader::new(r.required("classification")?, "report.classification")?;
    let classification = ClassifySummary {
        total: c.usize("total")?,
        easy: c.usize("easy")?,
        hard: c.usize("hard")?,
        metrics: metrics_from_value(c.required("metrics")?)?,
    };
    c.finish()?;

    let mut a = ObjReader::new(r.required("alternating")?, "report.alternating")?;
    let alternating = AlternatingReport {
        targeted: a.usize("targeted")?,
        detected: a.usize("detected")?,
        missed_easy: a.usize("missed_easy")?,
        cycles: a.usize("cycles")?,
        metrics: metrics_from_value(a.required("metrics")?)?,
    };
    a.finish()?;

    let mut cb = ObjReader::new(r.required("comb")?, "report.comb")?;
    let detection_curve = cb
        .required("detection_curve")?
        .as_array()
        .ok_or_else(|| JsonError::new("report.comb: detection_curve must be an array"))?
        .iter()
        .map(|p| {
            let pair = p
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| JsonError::new("report.comb: curve points are [vectors, detected]"))?;
            let v = uint_field(&pair[0], "report.comb.detection_curve")?;
            let d = uint_field(&pair[1], "report.comb.detection_curve")?;
            Ok((v, d))
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    let comb = CombPhaseReport {
        targeted: cb.usize("targeted")?,
        detected: cb.usize("detected")?,
        undetectable: cb.usize("undetectable")?,
        undetected: cb.usize("undetected")?,
        vectors: cb.usize("vectors")?,
        cycles: cb.usize("cycles")?,
        detection_curve,
        metrics: metrics_from_value(cb.required("metrics")?)?,
    };
    cb.finish()?;

    let mut cp = ObjReader::new(r.required("compact")?, "report.compact")?;
    let compact = CompactionReport {
        tests_before: cp.usize("tests_before")?,
        tests_after: cp.usize("tests_after")?,
        detected_before: cp.usize("detected_before")?,
        detected_after: cp.usize("detected_after")?,
        lost: cp.usize("lost")?,
        metrics: metrics_from_value(cp.required("metrics")?)?,
    };
    cp.finish()?;

    let mut s = ObjReader::new(r.required("seq")?, "report.seq")?;
    let seq = SeqPhaseReport {
        targeted: s.usize("targeted")?,
        detected: s.usize("detected")?,
        unconfirmed: s.usize("unconfirmed")?,
        undetectable: s.usize("undetectable")?,
        undetected: s.usize("undetected")?,
        circuits_initial: s.usize("circuits_initial")?,
        circuits_final: s.usize("circuits_final")?,
        metrics: metrics_from_value(s.required("metrics")?)?,
    };
    s.finish()?;

    let undetected_faults = r
        .required("undetected_faults")?
        .as_array()
        .ok_or_else(|| JsonError::new("report: undetected_faults must be an array"))?
        .iter()
        .map(fault_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let program = program_from_value(r.required("program")?)?;
    r.finish()?;

    Ok(PipelineReport {
        name,
        total_faults,
        classification,
        alternating,
        comb,
        compact,
        seq,
        rescued_easy,
        undetected_faults,
        program,
        // The ECO carry is process-local (good traces, classified fault
        // lists); decoded reports cannot seed an incremental rerun.
        carry: None,
    })
}

/// [`report_to_value`] rendered in the committed-snapshot pretty format.
pub fn report_to_json(report: &PipelineReport) -> String {
    report_to_value(report).render_pretty()
}

/// Parses and decodes a report JSON document.
pub fn report_from_json(text: &str) -> Result<PipelineReport, JsonError> {
    report_from_value(&parse(text)?)
}

/// [`config_to_value`] rendered in the pretty format.
pub fn config_to_json(config: &PipelineConfig) -> String {
    config_to_value(config).render_pretty()
}

/// Parses and decodes (and validates) a config JSON document.
pub fn config_from_json(text: &str) -> Result<PipelineConfig, JsonError> {
    config_from_value(&parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "42", "-7", "3.141593", "\"hi\"", "[]", "{}",
            "[1,2,3]",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn pretty_format_matches_the_historical_emitter() {
        let v = Value::object([
            ("scale", Value::Float(0.05)),
            ("threads", Value::UInt(1)),
            (
                "circuits",
                Value::Array(vec![Value::object([
                    ("name", Value::Str("s1196".into())),
                    ("counters", Value::object([("gate_evals", Value::UInt(7))])),
                ])]),
            ),
        ]);
        let expected = "{\n  \"scale\": 0.050000,\n  \"threads\": 1,\n  \"circuits\": [\n    {\n      \"name\": \"s1196\",\n      \"counters\": {\n        \"gate_evals\": 7\n      }\n    }\n  ]\n}\n";
        assert_eq!(v.render_pretty(), expected);
    }

    #[test]
    fn pretty_parse_render_is_identity() {
        let text = "{\n  \"a\": 0.125000,\n  \"b\": [\n    1,\n    {\n      \"c\": \"x\\\"y\"\n    }\n  ],\n  \"d\": {}\n}\n";
        let v = parse(text).unwrap();
        assert_eq!(v.render_pretty(), text);
    }

    #[test]
    fn string_escapes_parse() {
        let v = parse(r#""a\"b\\c\n\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA\u{e9}"));
        // Surrogate pair.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Lone high surrogate is rejected.
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "{\"a\":}"] {
            let err = parse(bad).unwrap_err();
            assert!(err.to_string().contains("byte"), "{bad}: {err}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn counters_round_trip_every_field() {
        let mut c = WorkCounters::ZERO;
        for (i, _) in (0..16).enumerate() {
            // Give every field a distinct value via fields() order.
            let _ = i;
        }
        c.gate_evals = 1;
        c.lane_cycles = 2;
        c.implication_events = 3;
        c.cone_nets = 4;
        c.podem_decisions = 5;
        c.podem_backtracks = 6;
        c.podem_aborts = 7;
        c.windows_formed = 8;
        c.early_exits = 9;
        c.topology_builds = 10;
        c.scratch_reuses = 11;
        c.implication_words = 12;
        c.kernel_gate_evals = 13;
        c.faults_dropped = 14;
        c.vectors_compacted = 15;
        c.podem_shards = 16;
        c.cones_invalidated = 17;
        c.verdicts_reused = 18;
        c.trace_cycles_reused = 19;
        let v = counters_to_value(&c);
        assert_eq!(counters_from_value(&v).unwrap(), c);
        // Subset decodes (old snapshots), unknown keys are rejected.
        let partial = parse("{\"gate_evals\": 9}").unwrap();
        assert_eq!(counters_from_value(&partial).unwrap().gate_evals, 9);
        let unknown = parse("{\"gate_evalz\": 9}").unwrap();
        assert!(counters_from_value(&unknown).is_err());
    }

    #[test]
    fn mem_round_trips_and_is_optional() {
        let mut hist = ConeHist::default();
        hist.record(0);
        hist.record(5);
        hist.record(70_000);
        let mem = MemMetrics {
            peak_bytes: 1_234,
            reallocs: 5,
            arena_bytes: 777,
            cone_hist: hist,
        };
        let v = mem_to_value(&mem);
        assert_eq!(mem_from_value(&v).unwrap(), mem);
        // A metrics object without a "mem" block (pre-accounting
        // snapshots) decodes to zeroed memory metrics.
        let old = parse(
            "{\"wall_s\": 0.5, \"shards\": {\"threads\": 1, \"per_worker\": [3]}, \
             \"counters\": {\"gate_evals\": 9}}",
        )
        .unwrap();
        let metrics = metrics_from_value(&old).unwrap();
        assert_eq!(metrics.mem, MemMetrics::ZERO);
        // Full metrics round-trip carries the mem block.
        let mut full = StageMetrics::new(
            Duration::from_secs_f64(0.25),
            ShardStats {
                threads: 2,
                per_worker: vec![1, 2],
            },
            WorkCounters::ZERO,
        );
        full.mem = mem;
        let back = metrics_from_value(&metrics_to_value(&full)).unwrap();
        assert_eq!(back.mem, mem);
        // Wrong bucket counts and unknown keys are rejected.
        let short = parse("{\"cone_hist\": [1, 2, 3]}").unwrap();
        assert!(mem_from_value(&short).is_err());
        let unknown = parse("{\"peak_bites\": 1}").unwrap();
        assert!(mem_from_value(&unknown).is_err());
    }

    #[test]
    fn config_round_trips_and_validates() {
        let config = PipelineConfig::builder()
            .threads(3)
            .lane_width(LaneWidth::W64)
            .dist(DistParams {
                large: 9,
                med: 5,
                dist: 2,
            })
            .build()
            .unwrap();
        let v = config_to_value(&config);
        assert_eq!(config_from_value(&v).unwrap(), config);
        // Partial configs keep defaults.
        let partial = config_from_json("{\"threads\": 2}").unwrap();
        assert_eq!(partial.threads, 2);
        assert_eq!(partial.lane_width, LaneWidth::default());
        // Unknown keys, bad widths and invalid budgets are rejected.
        assert!(config_from_json("{\"theads\": 2}").is_err());
        assert!(config_from_json("{\"lanes\": 128}").is_err());
        let err = config_from_json("{\"seq\": {\"max_frames\": 0}}").unwrap_err();
        assert!(err.to_string().contains("max_frames"), "{err}");
    }

    #[test]
    fn faults_and_programs_round_trip() {
        let faults = [
            Fault::stem(NodeId::from_index(4), true),
            Fault::branch(NodeId::from_index(7), 1, false),
        ];
        for f in faults {
            assert_eq!(fault_from_value(&fault_to_value(&f)).unwrap(), f);
        }
        let mut program = TestProgram::new();
        program.push(ScanTest::new(
            "alternating",
            vec![vec![V3::Zero, V3::One, V3::X], vec![V3::One, V3::One, V3::Zero]],
        ));
        let v = program_to_value(&program);
        assert_eq!(program_from_value(&v).unwrap(), program);
        // Lower-case x decodes too; other characters do not.
        let lax = parse("[{\"label\": \"t\", \"vectors\": [\"x1\"]}]").unwrap();
        assert!(program_from_value(&lax).is_ok());
        let bad = parse("[{\"label\": \"t\", \"vectors\": [\"2\"]}]").unwrap();
        assert!(program_from_value(&bad).is_err());
    }
}
