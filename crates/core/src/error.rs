//! The crate-level error type.
//!
//! Each layer of the stack reports precise, typed errors
//! ([`ParseBenchError`], [`ScanError`], [`ConfigError`], …). Callers
//! that drive the whole flow — the CLI, and above all the serving layer
//! — need one type that any step can fail with, carrying enough
//! structure to map onto a machine-readable response. [`Error`] wraps
//! every failure the pipeline surface can produce, implements
//! `std::error::Error` with [`source`](std::error::Error::source)
//! pointing at the underlying typed error, and names its category via
//! [`kind`](Error::kind) (the `error.kind` field of the server's 4xx
//! JSON bodies).

use std::fmt;

use fscan_netlist::{NetlistError, ParseBenchError};
use fscan_scan::ScanError;

use crate::compact::CompactionError;
use crate::json::JsonError;
use crate::pipeline::ConfigError;

/// Any failure the functional-scan flow can produce, from `.bench`
/// parsing through scan insertion, configuration and compaction to JSON
/// decoding.
///
/// # Examples
///
/// ```
/// use fscan::Error;
///
/// let err: Error = fscan_netlist::parse_bench("INPUT(", "bad").unwrap_err().into();
/// assert_eq!(err.kind(), "bench_parse");
/// assert!(std::error::Error::source(&err).is_some());
/// ```
#[derive(Clone, Debug)]
pub enum Error {
    /// A `.bench` netlist failed to parse.
    BenchParse(ParseBenchError),
    /// A circuit violated a structural invariant.
    Netlist(NetlistError),
    /// Scan insertion or chain verification failed.
    Scan(ScanError),
    /// A pipeline configuration was rejected.
    Config(ConfigError),
    /// Static compaction would have lost detections.
    Compaction(CompactionError),
    /// A JSON document was malformed or had the wrong shape.
    Json(JsonError),
}

impl Error {
    /// A stable, lowercase category label — the discriminant the
    /// serving layer exposes as `error.kind` so clients can branch
    /// without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::BenchParse(_) => "bench_parse",
            Error::Netlist(_) => "netlist",
            Error::Scan(_) => "scan",
            Error::Config(_) => "config",
            Error::Compaction(_) => "compaction",
            Error::Json(_) => "json",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BenchParse(e) => write!(f, "bench parse error: {e}"),
            Error::Netlist(e) => write!(f, "netlist error: {e}"),
            Error::Scan(e) => write!(f, "scan error: {e}"),
            Error::Config(e) => write!(f, "config error: {e}"),
            Error::Compaction(e) => write!(f, "compaction error: {e}"),
            Error::Json(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::BenchParse(e) => Some(e),
            Error::Netlist(e) => Some(e),
            Error::Scan(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::Compaction(e) => Some(e),
            Error::Json(e) => Some(e),
        }
    }
}

impl From<ParseBenchError> for Error {
    fn from(e: ParseBenchError) -> Error {
        Error::BenchParse(e)
    }
}

impl From<NetlistError> for Error {
    fn from(e: NetlistError) -> Error {
        Error::Netlist(e)
    }
}

impl From<ScanError> for Error {
    fn from(e: ScanError) -> Error {
        Error::Scan(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Error {
        Error::Config(e)
    }
}

impl From<CompactionError> for Error {
    fn from(e: CompactionError) -> Error {
        Error::Compaction(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Error {
        Error::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_kind_display_and_source() {
        let cases: Vec<Error> = vec![
            fscan_netlist::parse_bench("INPUT(", "bad").unwrap_err().into(),
            Error::Scan(ScanError::NoFlipFlops),
            Error::Config(ConfigError::EmptyPodemBudget),
            Error::Compaction(CompactionError::DetectionLoss { before: 2, after: 1 }),
            Error::Json(JsonError::new("bad")),
        ];
        let mut kinds = Vec::new();
        for err in &cases {
            assert!(!err.to_string().is_empty());
            assert!(std::error::Error::source(err).is_some(), "{err}");
            kinds.push(err.kind());
        }
        assert_eq!(
            kinds,
            vec!["bench_parse", "scan", "config", "compaction", "json"]
        );
    }
}
