//! The end-to-end functional scan chain testing pipeline.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use fscan_atpg::{PodemConfig, SeqAtpgConfig};
use fscan_fault::{all_faults, collapse, Fault};
use fscan_scan::ScanDesign;

use crate::alternating::{AlternatingPhase, AlternatingReport};
use crate::classify::{Category, ChainLocation, Classifier, ClassifySummary};
use crate::comb_phase::{CombPhase, CombPhaseReport};
use crate::program::{ScanTest, TestProgram};
use crate::seq_phase::{DistParams, SeqPhase, SeqPhaseReport};

/// Configuration of the full pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// PODEM budget for step 2.
    pub podem: PodemConfig,
    /// Sequential ATPG budget for the grouped step-3 pass.
    pub seq: SeqAtpgConfig,
    /// Sequential ATPG budget for the final per-fault pass (the paper
    /// gives the program "additional time" here).
    pub final_seq: SeqAtpgConfig,
    /// Grouping distances; `None` uses the paper's schedule
    /// (`DistParams::paper`) on the longest chain.
    pub dist: Option<DistParams>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            podem: PodemConfig {
                // Hopeless category-2 faults (e.g. the scan-enable class)
                // would otherwise burn the full backtrack budget with
                // expensive resimulations on large circuits.
                step_limit: 100_000,
                ..PodemConfig::default()
            },
            seq: SeqAtpgConfig::default(),
            final_seq: SeqAtpgConfig {
                max_frames: 12,
                backtrack_limit: 50_000,
                step_limit: 16_000,
            },
            dist: None,
        }
    }
}

/// Everything the three-step flow produced (the paper's Tables 2 and 3
/// plus the Figure 5 series for one circuit).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Circuit name.
    pub name: String,
    /// Fault universe size after collapsing.
    pub total_faults: usize,
    /// Classification counts (Table 2).
    pub classification: ClassifySummary,
    /// Step-1 results.
    pub alternating: AlternatingReport,
    /// Step-2 results (Table 3, left; Figure 5 series inside).
    pub comb: CombPhaseReport,
    /// Step-3 results (Table 3, right).
    pub seq: SeqPhaseReport,
    /// The chain-affecting faults that remain undetected after all
    /// steps (diagnostic detail behind `seq.undetected`).
    pub undetected_faults: Vec<Fault>,
    /// The emitted test program: the alternating sequence plus every
    /// confirmed step-2 window and step-3 sequence.
    pub program: TestProgram,
}

impl PipelineReport {
    /// Final number of undetected chain-affecting faults.
    pub fn undetected(&self) -> usize {
        self.seq.undetected + self.alternating.missed_easy.saturating_sub(self.rescued_easy())
    }

    /// Easy faults the alternating sequence missed that later steps
    /// recovered (they are folded into the step-3 targeting).
    fn rescued_easy(&self) -> usize {
        // The seq phase targeted remaining hard faults plus missed easy
        // faults; its `undetected` already accounts for both, so the
        // missed-easy bucket is fully represented there.
        self.alternating.missed_easy
    }

    /// Undetected as a fraction of the total fault universe (the
    /// paper's headline 0.006%).
    pub fn undetected_of_total(&self) -> f64 {
        self.seq.undetected as f64 / self.total_faults.max(1) as f64
    }

    /// Undetected as a fraction of chain-affecting faults (the paper's
    /// 0.022%).
    pub fn undetected_of_affected(&self) -> f64 {
        self.seq.undetected as f64 / self.classification.affected().max(1) as f64
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.name)?;
        writeln!(f, "  {}", self.classification)?;
        writeln!(f, "  {}", self.alternating)?;
        writeln!(f, "  {}", self.comb)?;
        writeln!(f, "  {}", self.seq)?;
        write!(
            f,
            "  undetected: {} ({:.4}% of all, {:.4}% of chain-affecting)",
            self.seq.undetected,
            100.0 * self.undetected_of_total(),
            100.0 * self.undetected_of_affected()
        )
    }
}

/// Runs classification, the alternating sequence, combinational ATPG
/// with sequential fault simulation, and targeted sequential ATPG, in
/// order, against one scan design.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Clone, Debug)]
pub struct Pipeline<'d> {
    design: &'d ScanDesign,
    config: PipelineConfig,
}

impl<'d> Pipeline<'d> {
    /// Creates a pipeline over a scan design.
    pub fn new(design: &'d ScanDesign, config: PipelineConfig) -> Pipeline<'d> {
        Pipeline { design, config }
    }

    /// Runs the whole flow on the design's collapsed fault universe.
    pub fn run(&self) -> PipelineReport {
        let circuit = self.design.circuit();
        let faults = collapse(circuit, &all_faults(circuit));
        self.run_with_faults(&faults)
    }

    /// Runs the whole flow on a caller-provided fault list.
    pub fn run_with_faults(&self, faults: &[Fault]) -> PipelineReport {
        let circuit = self.design.circuit();
        let start = Instant::now();
        // Step 0: classification (paper §3).
        let mut classifier = Classifier::new(self.design);
        let classified: Vec<_> = faults.iter().map(|&f| classifier.classify(f)).collect();
        let classification = ClassifySummary {
            total: faults.len(),
            easy: classified
                .iter()
                .filter(|c| c.category == Category::AlternatingDetectable)
                .count(),
            hard: classified
                .iter()
                .filter(|c| c.category == Category::Hard)
                .count(),
            cpu: start.elapsed(),
        };
        let locations: HashMap<Fault, Vec<ChainLocation>> = classified
            .iter()
            .map(|c| (c.fault, c.locations.clone()))
            .collect();

        // Step 1: alternating sequence over all chain-affecting faults.
        let affected: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category != Category::Unaffected)
            .map(|c| c.fault)
            .collect();
        let easy: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        let phase1 = AlternatingPhase::new(self.design);
        let (detections, alt_cpu) = phase1.run(&affected);
        let detected_set: std::collections::HashSet<Fault> = affected
            .iter()
            .zip(detections.iter())
            .filter_map(|(&f, d)| d.map(|_| f))
            .collect();
        let missed_easy: Vec<Fault> = easy
            .iter()
            .copied()
            .filter(|f| !detected_set.contains(f))
            .collect();
        let alternating = AlternatingReport {
            targeted: affected.len(),
            detected: detected_set.len(),
            missed_easy: missed_easy.len(),
            cycles: phase1.vectors().len(),
            cpu: alt_cpu,
        };

        // Step 2: comb ATPG + seq fault sim on the hard faults the
        // alternating sequence did not already (fortuitously) catch.
        let hard: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::Hard && !detected_set.contains(&c.fault))
            .map(|c| c.fault)
            .collect();
        let comb_outcome = CombPhase::new(self.design, self.config.podem).run(&hard);

        // Step 3: targeted sequential ATPG over the leftovers, plus any
        // easy faults the pessimistic simulation missed in step 1 (an
        // engineering safeguard the paper does not need because it
        // assumes category 1 ⊆ alternating-detected).
        let mut remaining: Vec<Fault> = comb_outcome.remaining.clone();
        remaining.extend(missed_easy.iter().copied());
        let rem_locs: Vec<Vec<ChainLocation>> = remaining
            .iter()
            .map(|f| locations.get(f).cloned().unwrap_or_default())
            .collect();
        let dist = self
            .config
            .dist
            .unwrap_or_else(|| DistParams::paper(self.design.max_chain_len()));
        // Effects must be able to traverse the whole chain: scale the
        // frame budgets to the longest chain.
        let min_frames = self.design.max_chain_len() + 4;
        let mut seq_cfg = self.config.seq;
        seq_cfg.max_frames = seq_cfg.max_frames.max(min_frames);
        let mut final_cfg = self.config.final_seq;
        final_cfg.max_frames = final_cfg.max_frames.max(min_frames);
        let phase3 = SeqPhase::new(self.design, dist, seq_cfg, final_cfg);
        let seq_outcome = phase3.run(&remaining, &rem_locs);

        let mut program = TestProgram::new();
        program.push(ScanTest::new("alternating", phase1.vectors().to_vec()));
        for t in comb_outcome.program {
            program.push(t);
        }
        for t in seq_outcome.program {
            program.push(t);
        }
        PipelineReport {
            name: circuit.name().to_string(),
            total_faults: faults.len(),
            classification,
            alternating,
            comb: comb_outcome.report,
            seq: seq_outcome.report,
            undetected_faults: seq_outcome.remaining,
            program,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    #[test]
    fn end_to_end_counts_are_consistent() {
        let circuit = generate(&GeneratorConfig::new("e2e", 7).gates(200).dffs(12));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = Pipeline::new(&design, PipelineConfig::default()).run();
        assert_eq!(
            report.classification.total,
            fscan_fault::collapse(design.circuit(), &fscan_fault::all_faults(design.circuit()))
                .len()
        );
        assert!(report.classification.affected() <= report.classification.total);
        // Step-2 targeted ≤ hard count.
        assert!(report.comb.targeted <= report.classification.hard);
        // Step-3 resolves the chain: its targeted = step-2 undetected +
        // missed easy.
        assert_eq!(
            report.seq.targeted,
            report.comb.undetected + report.alternating.missed_easy
        );
        // Paper headline shape: nearly everything gets resolved.
        let resolved = report.seq.detected + report.seq.undetectable;
        assert!(
            resolved + report.seq.undetected == report.seq.targeted,
            "{report}"
        );
    }

    #[test]
    fn most_chain_affecting_faults_end_up_covered() {
        let mut affected = 0usize;
        let mut undetected = 0usize;
        for seed in [101u64, 103] {
            let circuit = generate(&GeneratorConfig::new("cov", seed).gates(180).dffs(10));
            let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
            let report = Pipeline::new(&design, PipelineConfig::default()).run();
            affected += report.classification.affected();
            undetected += report.seq.undetected;
        }
        assert!(affected > 0);
        // Paper: 0.022% of chain-affecting faults stay undetected. Our
        // substrate is smaller and the simulation pessimistic; demand
        // < 6%.
        assert!(
            undetected * 100 < affected * 6,
            "{undetected}/{affected} chain-affecting faults undetected"
        );
    }

    #[test]
    fn display_renders_all_sections() {
        let circuit = generate(&GeneratorConfig::new("disp", 3).gates(100).dffs(6));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = Pipeline::new(&design, PipelineConfig::default()).run();
        let s = report.to_string();
        assert!(s.contains("alternating sequence"));
        assert!(s.contains("comb ATPG"));
        assert!(s.contains("sequential ATPG"));
        assert!(s.contains("undetected:"));
    }
}
