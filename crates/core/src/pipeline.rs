//! The end-to-end functional scan chain testing pipeline.
//!
//! The flow is exposed through [`PipelineSession`], the staged API.
//! Each step returns a typed checkpoint ([`Classified`] →
//! [`AfterAlternating`] → [`AfterComb`] → [`AfterCompact`] →
//! [`PipelineReport`]) whose fault sets can be inspected or modified
//! before the next step runs; [`PipelineSession::run`] chains all five
//! steps when no checkpoint access is needed. Reverse-order static
//! compaction is a first-class stage between the combinational and
//! sequential phases: the program assembled so far (alternating
//! sequence plus every comb window) is compacted against the
//! chain-affecting faults before step 3 adds its sequences.
//!
//! The session compiles the design's circuit into one shared
//! [`fscan_netlist::CompiledTopology`] (via
//! [`ScanDesign::topology`]) and every stage — classification,
//! alternating-sequence simulation, PODEM, sequential ATPG,
//! verification fault simulation — evaluates against that single plan;
//! the report's `topology_builds` counter stays at 1 for the whole
//! run.
//!
//! Every fault-parallel stage shards its work across
//! [`PipelineConfig::threads`] workers with deterministic merging, so
//! reports are bit-identical regardless of thread count. Each stage
//! reports its cost as a [`StageMetrics`] triple, collected per report
//! by [`PipelineReport::stages`].

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use fscan_atpg::{PodemConfig, SeqAtpgConfig};
use fscan_fault::{all_faults_with, collapse_with, Fault};
use fscan_scan::ScanDesign;
use fscan_sim::kernel::R256;
use fscan_sim::{
    CombEvaluator, GoodTrace, LaneWidth, MemMetrics, SimScratch, StageMetrics, WorkCounters, V3,
};

use crate::alternating::{AlternatingPhase, AlternatingReport};
use crate::eco::{alt_sim_with_trace, CarryParts, EcoCarry};
use crate::classify::{
    classify_faults_sharded_at, Category, ChainLocation, ClassifiedFault, ClassifySummary,
};
use crate::comb_phase::{CombPhase, CombPhaseConfig, CombPhaseOutcome, CombPhaseReport};
use crate::compact::{compact_program_at, CompactionReport};
use crate::program::{ScanTest, TestProgram};
use crate::seq_phase::{DistParams, SeqPhase, SeqPhaseReport};

/// Per-worker [`SimScratch`] arena footprint for a circuit with
/// `num_nodes` nodes at rail width `width` — the deterministic
/// `arena_bytes` each stage reports.
pub(crate) fn arena_footprint(num_nodes: usize, width: LaneWidth) -> u64 {
    match width {
        LaneWidth::W64 => SimScratch::<u64>::footprint_bytes(num_nodes),
        LaneWidth::W256 => SimScratch::<R256>::footprint_bytes(num_nodes),
    }
}

/// Closes a stage's allocator window into its [`StageMetrics`]: the
/// allocator-observed peak and realloc count (0 without a tracking
/// allocator installed) plus the deterministic arena footprint.
pub(crate) fn fill_mem(
    metrics: &mut StageMetrics,
    mark: fscan_alloctrack::MemMark,
    arena_bytes: u64,
) {
    metrics.mem.peak_bytes = mark.peak();
    metrics.mem.reallocs = mark.reallocs();
    metrics.mem.arena_bytes = arena_bytes;
}

/// Configuration of the full pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// PODEM budget for step 2.
    pub podem: PodemConfig,
    /// Sequential ATPG budget for the grouped step-3 pass.
    pub seq: SeqAtpgConfig,
    /// Sequential ATPG budget for the final per-fault pass (the paper
    /// gives the program "additional time" here).
    pub final_seq: SeqAtpgConfig,
    /// Grouping distances; `None` uses the paper's schedule
    /// (`DistParams::paper`) on the longest chain.
    pub dist: Option<DistParams>,
    /// Worker threads for the fault-parallel stages; `0` means one per
    /// available hardware thread. Results are identical for every
    /// value.
    pub threads: usize,
    /// Packed rail width for the word-parallel stages (classification
    /// and step-2 fault simulation). Verdicts are identical at every
    /// width; wider rails retire more faults per union-cone walk.
    /// Defaults to [`LaneWidth::W256`].
    pub lane_width: LaneWidth,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            podem: PodemConfig {
                // Hopeless category-2 faults (e.g. the scan-enable class)
                // would otherwise burn the full backtrack budget with
                // expensive resimulations on large circuits.
                step_limit: 100_000,
                ..PodemConfig::default()
            },
            seq: SeqAtpgConfig::default(),
            final_seq: SeqAtpgConfig {
                max_frames: 12,
                backtrack_limit: 50_000,
                step_limit: 16_000,
            },
            dist: None,
            threads: 0,
            lane_width: LaneWidth::default(),
        }
    }
}

impl PipelineConfig {
    /// Starts a validated builder from the default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan::PipelineConfig;
    ///
    /// let config = PipelineConfig::builder().threads(8).build()?;
    /// assert_eq!(config.threads, 8);
    /// # Ok::<(), fscan::ConfigError>(())
    /// ```
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            config: PipelineConfig::default(),
        }
    }

    /// Checks the invariants [`build`](PipelineConfigBuilder::build)
    /// enforces, for configurations assembled outside the builder —
    /// field-by-field construction, or decoding from JSON
    /// ([`crate::json::config_from_value`] calls this before handing a
    /// config to the serving layer).
    ///
    /// # Errors
    ///
    /// The same [`ConfigError`]s the builder reports.
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan::PipelineConfig;
    ///
    /// let mut config = PipelineConfig::default();
    /// assert!(config.validate().is_ok());
    /// config.seq.max_frames = 0;
    /// assert!(config.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.seq.max_frames == 0 {
            return Err(ConfigError::ZeroMaxFrames("seq"));
        }
        if self.final_seq.max_frames == 0 {
            return Err(ConfigError::ZeroMaxFrames("final_seq"));
        }
        if self.podem.backtrack_limit == 0 && self.podem.step_limit == 0 {
            return Err(ConfigError::EmptyPodemBudget);
        }
        if let Some(d) = self.dist {
            if d.dist == 0 || d.med < d.dist || d.large < d.med {
                return Err(ConfigError::UnorderedDist(d));
            }
        }
        Ok(())
    }
}

/// A rejected [`PipelineConfigBuilder`] setting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A sequential ATPG budget allows zero time frames — no test can
    /// ever be found. The string names the offending budget
    /// (`"seq"` or `"final_seq"`).
    ZeroMaxFrames(&'static str),
    /// The PODEM budget allows zero backtracks *and* zero steps — every
    /// attempt would abort immediately.
    EmptyPodemBudget,
    /// The sharded PODEM batch size is zero — no batch could ever form.
    ZeroPodemBatch,
    /// Grouping distances must be ordered `large ≥ med ≥ dist ≥ 1`.
    UnorderedDist(DistParams),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroMaxFrames(which) => {
                write!(f, "{which}.max_frames must be at least 1")
            }
            ConfigError::EmptyPodemBudget => {
                f.write_str("podem budget allows neither backtracks nor steps")
            }
            ConfigError::ZeroPodemBatch => f.write_str("podem_batch must be at least 1"),
            ConfigError::UnorderedDist(d) => write!(
                f,
                "grouping distances must satisfy large >= med >= dist >= 1, got {} / {} / {}",
                d.large, d.med, d.dist
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`PipelineConfig`] with validation at
/// [`build`](PipelineConfigBuilder::build).
#[derive(Clone, Debug)]
pub struct PipelineConfigBuilder {
    config: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Worker threads for the fault-parallel stages (`0` = one per
    /// available hardware thread).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// PODEM budget for step 2.
    pub fn podem(mut self, podem: PodemConfig) -> Self {
        self.config.podem = podem;
        self
    }

    /// Sequential ATPG budget for the grouped step-3 pass.
    pub fn seq(mut self, seq: SeqAtpgConfig) -> Self {
        self.config.seq = seq;
        self
    }

    /// Sequential ATPG budget for the final per-fault pass.
    pub fn final_seq(mut self, final_seq: SeqAtpgConfig) -> Self {
        self.config.final_seq = final_seq;
        self
    }

    /// Explicit grouping distances (default: the paper's schedule on
    /// the longest chain).
    pub fn dist(mut self, dist: DistParams) -> Self {
        self.config.dist = Some(dist);
        self
    }

    /// Packed rail width for the word-parallel stages (default
    /// [`LaneWidth::W256`]). Verdicts are identical at every width.
    pub fn lane_width(mut self, lane_width: LaneWidth) -> Self {
        self.config.lane_width = lane_width;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PipelineConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Everything the three-step flow produced (the paper's Tables 2 and 3
/// plus the Figure 5 series for one circuit).
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Circuit name.
    pub name: String,
    /// Fault universe size after collapsing.
    pub total_faults: usize,
    /// Classification counts (Table 2).
    pub classification: ClassifySummary,
    /// Step-1 results.
    pub alternating: AlternatingReport,
    /// Step-2 results (Table 3, left; Figure 5 series inside).
    pub comb: CombPhaseReport,
    /// Reverse-order static compaction of the program assembled after
    /// step 2 (alternating sequence + comb windows), run before step 3.
    /// Lossless by construction: `compact.lost` is always 0.
    pub compact: CompactionReport,
    /// Step-3 results (Table 3, right).
    pub seq: SeqPhaseReport,
    /// Category-1 faults the alternating sequence missed that steps 2–3
    /// later recovered (the missed-easy faults are folded into the
    /// step-3 target set; this counts how many of them were detected
    /// there).
    pub rescued_easy: usize,
    /// The chain-affecting faults that remain undetected after all
    /// steps (diagnostic detail behind `seq.undetected`).
    pub undetected_faults: Vec<Fault>,
    /// The emitted test program: the alternating sequence plus every
    /// confirmed step-2 window and step-3 sequence.
    pub program: TestProgram,
    /// Carry-over artifacts for [`PipelineSession::rerun`]: present on
    /// every freshly computed report so a later ECO delta can reuse the
    /// verdicts this run produced. `None` on reports decoded from JSON —
    /// the carry is process-local and never serialized.
    pub carry: Option<Arc<EcoCarry>>,
}

impl PipelineReport {
    /// Final number of undetected chain-affecting faults.
    ///
    /// Missed-easy faults are folded into the step-3 target set, so
    /// `seq.undetected` already covers both the hard leftovers and any
    /// missed-easy faults that stayed undetected (see
    /// [`rescued_easy`](Self::rescued_easy) for the recovered ones).
    pub fn undetected(&self) -> usize {
        self.seq.undetected
    }

    /// Undetected as a fraction of the total fault universe (the
    /// paper's headline 0.006%).
    pub fn undetected_of_total(&self) -> f64 {
        self.seq.undetected as f64 / self.total_faults.max(1) as f64
    }

    /// Undetected as a fraction of chain-affecting faults (the paper's
    /// 0.022%).
    pub fn undetected_of_affected(&self) -> f64 {
        self.seq.undetected as f64 / self.classification.affected().max(1) as f64
    }

    /// Per-stage cost [`StageMetrics`] (wall-clock, worker
    /// distribution, deterministic work counters), in flow order — the
    /// single accessor behind the reproduction's timing table and the
    /// BENCH trajectory.
    pub fn stages(&self) -> [(&'static str, &StageMetrics); 5] {
        [
            ("classify", &self.classification.metrics),
            ("alternating", &self.alternating.metrics),
            ("comb", &self.comb.metrics),
            ("compact", &self.compact.metrics),
            ("seq", &self.seq.metrics),
        ]
    }

    /// Sum of every stage's [`WorkCounters`].
    pub fn total_counters(&self) -> WorkCounters {
        self.stages().iter().map(|(_, m)| m.counters).sum()
    }

    /// Report-wide memory accounting: every stage's [`MemMetrics`]
    /// folded together — peaks and arena footprints by maximum (stages
    /// run one after another, so peaks do not add), realloc counts
    /// summed, cone histograms merged.
    pub fn total_mem(&self) -> MemMetrics {
        let mut total = MemMetrics::ZERO;
        for (_, m) in self.stages() {
            total.accumulate(&m.mem);
        }
        total
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.name)?;
        writeln!(f, "  {}", self.classification)?;
        writeln!(f, "  {}", self.alternating)?;
        writeln!(f, "  {}", self.comb)?;
        writeln!(f, "  {}", self.compact)?;
        writeln!(f, "  {}", self.seq)?;
        write!(
            f,
            "  undetected: {} ({:.4}% of all, {:.4}% of chain-affecting)",
            self.seq.undetected,
            100.0 * self.undetected_of_total(),
            100.0 * self.undetected_of_affected()
        )
    }
}

/// The staged pipeline: run the flow one step at a time, inspecting or
/// modifying the fault sets between steps.
///
/// The session *owns* its design as an [`Arc<ScanDesign>`], so sessions
/// and every checkpoint are `'static + Send` — they can be handed to
/// worker threads, stored across requests, and run concurrently against
/// one shared design (the serving layer does all three). The borrowed
/// constructors ([`new`](Self::new), [`with_faults`](Self::with_faults))
/// remain as thin wrappers that clone the design once — after forcing
/// its cached [`CompiledTopology`](fscan_netlist::CompiledTopology), so
/// the clone shares the already-compiled plan and repeated sessions
/// still never recompile.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
/// use fscan::{Category, PipelineConfig, PipelineSession};
///
/// let circuit = generate(&GeneratorConfig::new("demo", 1).gates(100).dffs(8));
/// let design = insert_functional_scan(&circuit, &TpiConfig::default())?;
/// let config = PipelineConfig::builder().threads(2).build().unwrap();
///
/// let mut classified = PipelineSession::new(&design, config).classify();
/// // Checkpoint: e.g. drop the category-3 faults from further analysis
/// // (the pipeline does this anyway) or inspect the counts.
/// let summary = classified.summary();
/// assert_eq!(summary.affected(), summary.easy + summary.hard);
/// classified.classified.retain(|c| c.category != Category::Unaffected);
///
/// let after_alt = classified.alternating();
/// let after_comb = after_alt.comb();
/// let report = after_comb.seq();
/// assert_eq!(report.undetected(), report.seq.undetected);
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
///
/// Sharing one design across concurrent sessions:
///
/// ```
/// use std::sync::Arc;
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
/// use fscan::{PipelineConfig, PipelineSession};
///
/// let circuit = generate(&GeneratorConfig::new("demo", 1).gates(100).dffs(8));
/// let design = Arc::new(insert_functional_scan(&circuit, &TpiConfig::default())?);
/// let handles: Vec<_> = (0..2)
///     .map(|_| {
///         let session = PipelineSession::shared(
///             Arc::clone(&design),
///             PipelineConfig::default(),
///         );
///         std::thread::spawn(move || session.run())
///     })
///     .collect();
/// for h in handles {
///     assert!(h.join().unwrap().undetected() <= 1_000);
/// }
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
#[derive(Clone, Debug)]
pub struct PipelineSession {
    pub(crate) design: Arc<ScanDesign>,
    pub(crate) config: PipelineConfig,
    pub(crate) faults: Vec<Fault>,
}

impl PipelineSession {
    /// Opens a session over a shared design's collapsed fault universe —
    /// the canonical constructor: the session co-owns the design, so it
    /// is `'static + Send` and many sessions can run concurrently
    /// against one `Arc`.
    ///
    /// This is where the design's [`CompiledTopology`] is first
    /// demanded: fault enumeration and collapsing run against it, and
    /// every later stage shares the same `Arc` — the circuit is
    /// compiled exactly once per session (and cached on the design, so
    /// repeated sessions do not even recompile).
    ///
    /// [`CompiledTopology`]: fscan_netlist::CompiledTopology
    pub fn shared(design: Arc<ScanDesign>, config: PipelineConfig) -> PipelineSession {
        let topo = design.topology();
        let faults = collapse_with(
            design.circuit(),
            &topo,
            &all_faults_with(design.circuit(), &topo),
        );
        PipelineSession::shared_with_faults(design, config, faults)
    }

    /// Opens a session over a shared design and a caller-provided fault
    /// list.
    pub fn shared_with_faults(
        design: Arc<ScanDesign>,
        config: PipelineConfig,
        faults: Vec<Fault>,
    ) -> PipelineSession {
        PipelineSession {
            design,
            config,
            faults,
        }
    }

    /// Opens a session over a borrowed design — a thin wrapper around
    /// [`shared`](Self::shared) that clones the design once. The clone
    /// happens *after* the design's topology cache is forced, so it
    /// shares the already-compiled plan: repeated sessions over the same
    /// `&ScanDesign` still compile the circuit exactly once.
    pub fn new(design: &ScanDesign, config: PipelineConfig) -> PipelineSession {
        let _ = design.topology();
        PipelineSession::shared(Arc::new(design.clone()), config)
    }

    /// Opens a session over a borrowed design and a caller-provided
    /// fault list (see [`new`](Self::new) for the cloning contract).
    pub fn with_faults(
        design: &ScanDesign,
        config: PipelineConfig,
        faults: Vec<Fault>,
    ) -> PipelineSession {
        let _ = design.topology();
        PipelineSession::shared_with_faults(Arc::new(design.clone()), config, faults)
    }

    /// The fault universe this session will classify.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The shared design the session runs against.
    pub fn design(&self) -> &Arc<ScanDesign> {
        &self.design
    }

    /// Step 0 (paper §3): classify every fault by 3-valued forward
    /// implication, sharded across the configured workers.
    pub fn classify(self) -> Classified {
        let start = Instant::now();
        let mark = fscan_alloctrack::stage_mark();
        let (classified, shards, mut counters, cone_hist) = classify_faults_sharded_at(
            &self.design,
            &self.faults,
            self.config.threads,
            self.config.lane_width,
        );
        // The session's one topology compilation is accounted to the
        // first stage; every later stage shares the same plan, so the
        // report-wide total stays at exactly 1.
        counters.topology_builds = 1;
        let mut metrics = StageMetrics::new(start.elapsed(), shards, counters);
        let nodes = self.design.topology().num_nodes();
        fill_mem(&mut metrics, mark, arena_footprint(nodes, self.config.lane_width));
        metrics.mem.cone_hist = cone_hist;
        Classified {
            design: self.design,
            config: self.config,
            total_faults: self.faults.len(),
            classified,
            metrics,
        }
    }

    /// This session's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs all five stages back to back and returns the final report —
    /// the one-call form of
    /// `self.classify().alternating().comb().compact().seq()` for
    /// callers that need no checkpoint access.
    pub fn run(self) -> PipelineReport {
        self.classify().alternating().comb().compact().seq()
    }
}

/// Checkpoint after classification. `classified` is open for
/// inspection and modification — faults removed (or re-categorized)
/// here never reach the later steps.
#[derive(Clone, Debug)]
pub struct Classified {
    design: Arc<ScanDesign>,
    config: PipelineConfig,
    total_faults: usize,
    /// Per-fault classification results.
    pub classified: Vec<ClassifiedFault>,
    metrics: StageMetrics,
}

impl Classified {
    /// Aggregate counts over the *current* `classified` set (recomputed
    /// on each call, so checkpoint edits are reflected).
    pub fn summary(&self) -> ClassifySummary {
        ClassifySummary {
            total: self.total_faults,
            easy: self
                .classified
                .iter()
                .filter(|c| c.category == Category::AlternatingDetectable)
                .count(),
            hard: self
                .classified
                .iter()
                .filter(|c| c.category == Category::Hard)
                .count(),
            metrics: self.metrics.clone(),
        }
    }

    /// Step 1: shift the alternating sequence and fault-simulate it
    /// against every chain-affecting fault.
    pub fn alternating(self) -> AfterAlternating {
        let mark = fscan_alloctrack::stage_mark();
        let summary = self.summary();
        let affected: Vec<Fault> = self
            .classified
            .iter()
            .filter(|c| c.category != Category::Unaffected)
            .map(|c| c.fault)
            .collect();
        let easy: Vec<Fault> = self
            .classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        let phase = AlternatingPhase::new(&self.design);
        // The good trace is computed explicitly (rather than inside the
        // phase's sharded runner) so it can be carried into the report's
        // [`EcoCarry`] for later [`PipelineSession::rerun`] replays; the
        // counters are identical — the trace's own work is booked once,
        // on top of the per-fault shard work.
        let start = Instant::now();
        let init = vec![V3::X; self.design.circuit().dffs().len()];
        let eval = CombEvaluator::with_topology(self.design.topology());
        let trace = GoodTrace::compute(&eval, phase.vectors(), &init);
        let (detections, shards, mut counters) = alt_sim_with_trace(
            &self.design,
            self.config.lane_width,
            &affected,
            &trace,
            self.config.threads,
        );
        counters += trace.counters();
        let cpu = start.elapsed();
        let detected: HashSet<Fault> = affected
            .iter()
            .zip(detections.iter())
            .filter_map(|(&f, d)| d.map(|_| f))
            .collect();
        let missed_easy: Vec<Fault> = easy
            .iter()
            .copied()
            .filter(|f| !detected.contains(f))
            .collect();
        let mut report = AlternatingReport {
            targeted: affected.len(),
            detected: detected.len(),
            missed_easy: missed_easy.len(),
            cycles: phase.vectors().len(),
            metrics: StageMetrics::new(cpu, shards, counters),
        };
        let nodes = self.design.topology().num_nodes();
        fill_mem(
            &mut report.metrics,
            mark,
            arena_footprint(nodes, self.config.lane_width),
        );
        let carry_parts = CarryParts {
            classified: self.classified.clone(),
            alt_vectors: phase.vectors().to_vec(),
            alt_detections: affected
                .iter()
                .copied()
                .zip(detections.iter().copied())
                .collect(),
            alt_trace: Some(trace),
            ..CarryParts::default()
        };
        let vectors = phase.into_vectors();
        AfterAlternating {
            design: self.design,
            config: self.config,
            total_faults: self.total_faults,
            classified: self.classified,
            summary,
            report,
            vectors,
            detected,
            missed_easy,
            carry_parts,
        }
    }
}

/// Checkpoint after the alternating-sequence phase. `missed_easy` is
/// open for modification — those faults are forwarded to step 3.
#[derive(Clone, Debug)]
pub struct AfterAlternating {
    design: Arc<ScanDesign>,
    config: PipelineConfig,
    total_faults: usize,
    classified: Vec<ClassifiedFault>,
    summary: ClassifySummary,
    report: AlternatingReport,
    vectors: Vec<Vec<fscan_sim::V3>>,
    detected: HashSet<Fault>,
    /// Category-1 faults the sequence missed (forwarded to step 3).
    pub missed_easy: Vec<Fault>,
    carry_parts: CarryParts,
}

impl AfterAlternating {
    /// The step-1 report.
    pub fn report(&self) -> &AlternatingReport {
        &self.report
    }

    /// Faults the alternating sequence detected.
    pub fn detected(&self) -> &HashSet<Fault> {
        &self.detected
    }

    /// Step 2 (paper §4): combinational PODEM on the scan-mode view for
    /// the hard faults step 1 did not fortuitously catch, each test
    /// confirmed by (sharded) sequential fault simulation.
    pub fn comb(self) -> AfterComb {
        let hard: Vec<Fault> = self
            .classified
            .iter()
            .filter(|c| c.category == Category::Hard && !self.detected.contains(&c.fault))
            .map(|c| c.fault)
            .collect();
        let comb_config = CombPhaseConfig {
            podem: self.config.podem,
            threads: self.config.threads,
            lane_width: self.config.lane_width,
            ..CombPhaseConfig::default()
        };
        let mark = fscan_alloctrack::stage_mark();
        let mut outcome = CombPhase::new(&self.design, comb_config).run(&hard);
        let nodes = self.design.topology().num_nodes();
        fill_mem(
            &mut outcome.report.metrics,
            mark,
            arena_footprint(nodes, self.config.lane_width),
        );
        let mut carry_parts = self.carry_parts;
        carry_parts.hard = hard;
        carry_parts.comb_outcome = Some(outcome.clone());
        AfterComb {
            design: self.design,
            config: self.config,
            total_faults: self.total_faults,
            classified: self.classified,
            summary: self.summary,
            alternating: self.report,
            vectors: self.vectors,
            missed_easy: self.missed_easy,
            remaining: outcome.remaining.clone(),
            outcome,
            carry_parts,
        }
    }
}

/// Checkpoint after the combinational phase. `remaining` (the hard
/// leftovers) and `missed_easy` are open for modification; their union
/// is step 3's target set.
#[derive(Clone, Debug)]
pub struct AfterComb {
    design: Arc<ScanDesign>,
    config: PipelineConfig,
    total_faults: usize,
    classified: Vec<ClassifiedFault>,
    summary: ClassifySummary,
    alternating: AlternatingReport,
    vectors: Vec<Vec<fscan_sim::V3>>,
    outcome: CombPhaseOutcome,
    /// Hard faults step 2 left unresolved (forwarded to step 3).
    pub remaining: Vec<Fault>,
    /// Category-1 faults step 1 missed (forwarded to step 3).
    pub missed_easy: Vec<Fault>,
    carry_parts: CarryParts,
}

impl AfterComb {
    /// The step-2 report.
    pub fn report(&self) -> &CombPhaseReport {
        &self.outcome.report
    }

    /// The compaction stage (paper §6, run mid-flow): assembles the
    /// program so far — the alternating sequence plus every comb window
    /// — and reverse-order compacts it against the chain-affecting
    /// faults. Lossless by construction; [`compact_program`] verifies
    /// that, and a violation (impossible for self-contained scan
    /// windows) would panic rather than silently drop coverage.
    pub fn compact(self) -> AfterCompact {
        let affected: Vec<Fault> = self
            .classified
            .iter()
            .filter(|c| c.category != Category::Unaffected)
            .map(|c| c.fault)
            .collect();
        let CombPhaseOutcome {
            report: comb_report,
            program: comb_tests,
            ..
        } = self.outcome;
        let mut program = TestProgram::new();
        program.push(ScanTest::new("alternating", self.vectors));
        for t in comb_tests {
            program.push(t);
        }
        let mark = fscan_alloctrack::stage_mark();
        let mut compacted = compact_program_at(
            &self.design,
            program,
            &affected,
            self.config.threads,
            self.config.lane_width,
        )
        .expect("reverse-order compaction preserves every detection");
        let nodes = self.design.topology().num_nodes();
        fill_mem(
            &mut compacted.report.metrics,
            mark,
            arena_footprint(nodes, self.config.lane_width),
        );
        let mut carry_parts = self.carry_parts;
        carry_parts.affected = affected;
        carry_parts.compaction = Some(compacted.report.clone());
        carry_parts.compacted_program = Some(compacted.program.clone());
        AfterCompact {
            design: self.design,
            config: self.config,
            total_faults: self.total_faults,
            classified: self.classified,
            summary: self.summary,
            alternating: self.alternating,
            comb: comb_report,
            compaction: compacted.report,
            program: compacted.program,
            remaining: self.remaining,
            missed_easy: self.missed_easy,
            carry_parts,
        }
    }

    /// Steps 4–5 in one call: compaction, then targeted sequential ATPG
    /// — shorthand for `self.compact().seq()`.
    pub fn seq(self) -> PipelineReport {
        self.compact().seq()
    }
}

/// Checkpoint after the compaction stage. `remaining` and `missed_easy`
/// stay open for modification; their union is step 3's target set.
#[derive(Clone, Debug)]
pub struct AfterCompact {
    design: Arc<ScanDesign>,
    config: PipelineConfig,
    total_faults: usize,
    classified: Vec<ClassifiedFault>,
    summary: ClassifySummary,
    alternating: AlternatingReport,
    comb: CombPhaseReport,
    compaction: CompactionReport,
    program: TestProgram,
    /// Hard faults step 2 left unresolved (forwarded to step 3).
    pub remaining: Vec<Fault>,
    /// Category-1 faults step 1 missed (forwarded to step 3).
    pub missed_easy: Vec<Fault>,
    carry_parts: CarryParts,
}

impl AfterCompact {
    /// The compaction-stage report.
    pub fn report(&self) -> &CompactionReport {
        &self.compaction
    }

    /// The compacted program assembled so far (alternating sequence
    /// plus the kept comb windows).
    pub fn program(&self) -> &TestProgram {
        &self.program
    }

    /// Step 3 (paper §5): targeted sequential ATPG with enhanced
    /// controllability/observability over `remaining ∪ missed_easy`,
    /// then the final report.
    pub fn seq(self) -> PipelineReport {
        let locations: HashMap<Fault, Vec<ChainLocation>> = self
            .classified
            .iter()
            .map(|c| (c.fault, c.locations.clone()))
            .collect();
        let mut targets: Vec<Fault> = self.remaining.clone();
        targets.extend(self.missed_easy.iter().copied());
        let target_locs: Vec<Vec<ChainLocation>> = targets
            .iter()
            .map(|f| locations.get(f).cloned().unwrap_or_default())
            .collect();
        let dist = self
            .config
            .dist
            .unwrap_or_else(|| DistParams::paper(self.design.max_chain_len()));
        // Effects must be able to traverse the whole chain: scale the
        // frame budgets to the longest chain.
        let min_frames = self.design.max_chain_len() + 4;
        let mut seq_cfg = self.config.seq;
        seq_cfg.max_frames = seq_cfg.max_frames.max(min_frames);
        let mut final_cfg = self.config.final_seq;
        final_cfg.max_frames = final_cfg.max_frames.max(min_frames);
        let phase = SeqPhase::new(&self.design, dist, seq_cfg, final_cfg)
            .threads(self.config.threads);
        let mark = fscan_alloctrack::stage_mark();
        let mut seq_outcome = phase.run(&targets, &target_locs);
        // The sequential phase's fault simulators run on the default
        // 64-lane rail regardless of the packed-stage width.
        let nodes = self.design.topology().num_nodes();
        fill_mem(
            &mut seq_outcome.report.metrics,
            mark,
            arena_footprint(nodes, LaneWidth::W64),
        );
        let mut carry_parts = self.carry_parts;
        carry_parts.seq_targets = targets;
        carry_parts.seq_outcome = Some(seq_outcome.clone());

        let seq_detected: HashSet<Fault> = seq_outcome.detected.iter().copied().collect();
        let rescued_easy = self
            .missed_easy
            .iter()
            .filter(|f| seq_detected.contains(f))
            .count();

        let mut program = self.program;
        for t in seq_outcome.program {
            program.push(t);
        }
        PipelineReport {
            name: self.design.circuit().name().to_string(),
            total_faults: self.total_faults,
            classification: self.summary,
            alternating: self.alternating,
            comb: self.comb,
            compact: self.compaction,
            seq: seq_outcome.report,
            rescued_easy,
            undetected_faults: seq_outcome.remaining,
            program,
            carry: carry_parts.into_carry(&self.config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    #[test]
    fn end_to_end_counts_are_consistent() {
        let circuit = generate(&GeneratorConfig::new("e2e", 7).gates(200).dffs(12));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = PipelineSession::new(&design, PipelineConfig::default()).run();
        assert_eq!(
            report.classification.total,
            fscan_fault::collapse(design.circuit(), &fscan_fault::all_faults(design.circuit()))
                .len()
        );
        assert!(report.classification.affected() <= report.classification.total);
        // Step-2 targeted ≤ hard count.
        assert!(report.comb.targeted <= report.classification.hard);
        // Step-3 resolves the chain: its targeted = step-2 undetected +
        // missed easy.
        assert_eq!(
            report.seq.targeted,
            report.comb.undetected + report.alternating.missed_easy
        );
        // Rescue bookkeeping: rescued ≤ missed, and the undetected count
        // already includes any unrescued missed-easy fault.
        assert!(report.rescued_easy <= report.alternating.missed_easy);
        assert_eq!(report.undetected(), report.seq.undetected);
        // Paper headline shape: nearly everything gets resolved.
        let resolved = report.seq.detected + report.seq.undetectable;
        assert!(
            resolved + report.seq.undetected == report.seq.targeted,
            "{report}"
        );
        // Memory accounting is populated on every stage: a nonzero
        // deterministic arena footprint everywhere, and the classify
        // stage's cone histogram covers the whole fault universe.
        for (name, m) in report.stages() {
            assert!(m.mem.arena_bytes > 0, "stage {name} reports no arena");
        }
        assert_eq!(
            report.classification.metrics.mem.cone_hist.total_cones(),
            report.classification.total as u64
        );
        assert_eq!(
            report.total_mem().cone_hist,
            report.classification.metrics.mem.cone_hist
        );
        // No tracking allocator installed in unit tests → peaks read 0.
        assert_eq!(report.total_mem().peak_bytes, 0);
    }

    #[test]
    fn most_chain_affecting_faults_end_up_covered() {
        let mut affected = 0usize;
        let mut undetected = 0usize;
        for seed in [101u64, 103] {
            let circuit = generate(&GeneratorConfig::new("cov", seed).gates(180).dffs(10));
            let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
            let report = PipelineSession::new(&design, PipelineConfig::default()).run();
            affected += report.classification.affected();
            undetected += report.seq.undetected;
        }
        assert!(affected > 0);
        // Paper: 0.022% of chain-affecting faults stay undetected. Our
        // substrate is smaller and the simulation pessimistic; demand
        // < 6%.
        assert!(
            undetected * 100 < affected * 6,
            "{undetected}/{affected} chain-affecting faults undetected"
        );
    }

    #[test]
    fn display_renders_all_sections() {
        let circuit = generate(&GeneratorConfig::new("disp", 3).gates(100).dffs(6));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = PipelineSession::new(&design, PipelineConfig::default()).run();
        let s = report.to_string();
        assert!(s.contains("alternating sequence"));
        assert!(s.contains("comb ATPG"));
        assert!(s.contains("sequential ATPG"));
        assert!(s.contains("undetected:"));
    }

    #[test]
    fn builder_validates() {
        assert!(PipelineConfig::builder().threads(4).build().is_ok());
        let bad_seq = PipelineConfig::builder().seq(SeqAtpgConfig {
            max_frames: 0,
            ..SeqAtpgConfig::default()
        });
        assert_eq!(
            bad_seq.build().unwrap_err(),
            ConfigError::ZeroMaxFrames("seq")
        );
        let bad_final = PipelineConfig::builder().final_seq(SeqAtpgConfig {
            max_frames: 0,
            ..SeqAtpgConfig::default()
        });
        assert_eq!(
            bad_final.build().unwrap_err(),
            ConfigError::ZeroMaxFrames("final_seq")
        );
        let bad_podem = PipelineConfig::builder().podem(PodemConfig {
            backtrack_limit: 0,
            step_limit: 0,
        });
        assert_eq!(bad_podem.build().unwrap_err(), ConfigError::EmptyPodemBudget);
        let bad_dist = PipelineConfig::builder().dist(DistParams {
            large: 5,
            med: 10,
            dist: 2,
        });
        assert!(matches!(
            bad_dist.build().unwrap_err(),
            ConfigError::UnorderedDist(_)
        ));
        // Error values render a human-readable reason.
        let msg = ConfigError::ZeroMaxFrames("seq").to_string();
        assert!(msg.contains("max_frames"));
    }

    #[test]
    fn staged_session_matches_monolithic_run() {
        let circuit = generate(&GeneratorConfig::new("staged", 11).gates(180).dffs(10));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let config = PipelineConfig::default();
        let monolithic = PipelineSession::new(&design, config.clone()).run();
        let staged = PipelineSession::new(&design, config)
            .classify()
            .alternating()
            .comb()
            .seq();
        assert_eq!(staged.classification.total, monolithic.classification.total);
        assert_eq!(staged.classification.easy, monolithic.classification.easy);
        assert_eq!(staged.classification.hard, monolithic.classification.hard);
        assert_eq!(staged.alternating.detected, monolithic.alternating.detected);
        assert_eq!(staged.comb.detected, monolithic.comb.detected);
        assert_eq!(staged.seq.detected, monolithic.seq.detected);
        assert_eq!(staged.undetected_faults, monolithic.undetected_faults);
        assert_eq!(staged.program.tests().len(), monolithic.program.tests().len());
    }

    #[test]
    fn full_run_reports_exactly_one_topology_build() {
        let circuit = generate(&GeneratorConfig::new("once", 21).gates(160).dffs(10));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = PipelineSession::new(&design, PipelineConfig::default()).run();
        // The session books its single base-circuit compilation against
        // the classify stage; no other stage may add one. (The global
        // build-counter delta is asserted in `tests/topology_once.rs`,
        // which runs in its own process.)
        assert_eq!(report.total_counters().topology_builds, 1);
        assert_eq!(report.stages()[0].1.counters.topology_builds, 1);
        for (_, m) in &report.stages()[1..] {
            assert_eq!(m.counters.topology_builds, 0);
        }
    }

    #[test]
    fn sessions_and_checkpoints_are_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<PipelineSession>();
        assert_send::<Classified>();
        assert_send::<AfterAlternating>();
        assert_send::<AfterComb>();
        assert_send::<AfterCompact>();
        assert_send::<PipelineReport>();
    }

    #[test]
    fn shared_session_matches_borrowed_session() {
        let circuit = generate(&GeneratorConfig::new("own", 17).gates(160).dffs(10));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let borrowed = PipelineSession::new(&design, PipelineConfig::default()).run();
        let shared = Arc::new(design);
        // Two concurrent sessions over one Arc — both 'static + Send.
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s =
                    PipelineSession::shared(Arc::clone(&shared), PipelineConfig::default());
                std::thread::spawn(move || s.run())
            })
            .collect();
        for h in handles {
            let report = h.join().unwrap();
            assert_eq!(report.classification.total, borrowed.classification.total);
            assert_eq!(report.seq.detected, borrowed.seq.detected);
            assert_eq!(report.undetected_faults, borrowed.undetected_faults);
            assert_eq!(report.total_counters(), borrowed.total_counters());
        }
    }

    #[test]
    fn borrowed_constructor_shares_the_compiled_topology() {
        let circuit = generate(&GeneratorConfig::new("share", 19).gates(140).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let first = PipelineSession::new(&design, PipelineConfig::default());
        let second = PipelineSession::new(&design, PipelineConfig::default());
        // Both clones must share the topology already cached on `design`
        // (forced before cloning), not recompile their own.
        assert!(Arc::ptr_eq(
            &design.topology(),
            &first.design().topology()
        ));
        assert!(Arc::ptr_eq(
            &design.topology(),
            &second.design().topology()
        ));
    }

    #[test]
    fn checkpoint_edits_flow_into_later_stages() {
        let circuit = generate(&GeneratorConfig::new("edit", 13).gates(150).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let mut classified = PipelineSession::new(&design, PipelineConfig::default()).classify();
        // Drop every hard fault at the checkpoint: step 2 must see an
        // empty target set.
        classified
            .classified
            .retain(|c| c.category != Category::Hard);
        assert_eq!(classified.summary().hard, 0);
        let after_comb = classified.alternating().comb();
        assert_eq!(after_comb.report().targeted, 0);
        let report = after_comb.seq();
        assert_eq!(report.comb.targeted, 0);
        assert_eq!(report.classification.hard, 0);
    }
}
