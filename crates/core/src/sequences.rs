//! Building concrete scan-mode input sequences.

use fscan_scan::ScanDesign;
use fscan_sim::V3;

/// The mapping from a scan design's inputs to vector positions, plus the
/// base scan-mode vector (constrained pins pinned, everything else 0).
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
/// use fscan::scan_vector_layout;
///
/// let c = generate(&GeneratorConfig::new("d", 1).gates(80).dffs(6));
/// let design = insert_functional_scan(&c, &TpiConfig::default())?;
/// let layout = scan_vector_layout(&design);
/// assert_eq!(layout.scan_in_pos.len(), design.chains().len());
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ScanSequence {
    /// Number of primary inputs of the transformed circuit.
    pub width: usize,
    /// Vector position of each chain's scan-in input.
    pub scan_in_pos: Vec<usize>,
    /// `(position, value)` of every scan-mode-constrained input.
    pub constrained: Vec<(usize, bool)>,
    /// Positions of free inputs (not constrained, not scan-ins).
    pub free: Vec<usize>,
}

impl ScanSequence {
    /// The base scan-mode vector: constrained pins at their values,
    /// scan-ins and free pins at 0.
    pub fn base_vector(&self) -> Vec<V3> {
        let mut v = vec![V3::Zero; self.width];
        for &(pos, val) in &self.constrained {
            v[pos] = V3::from_bool(val);
        }
        v
    }
}

/// Computes the input layout of a scan design. See [`ScanSequence`].
pub fn scan_vector_layout(design: &ScanDesign) -> ScanSequence {
    let inputs = design.circuit().inputs();
    let pos_of = |n| {
        inputs
            .iter()
            .position(|&p| p == n)
            .expect("scan design input missing from circuit")
    };
    let scan_in_pos: Vec<usize> = design.chains().iter().map(|c| pos_of(c.scan_in)).collect();
    let constrained: Vec<(usize, bool)> = design
        .constraints()
        .iter()
        .map(|&(n, v)| (pos_of(n), v))
        .collect();
    let taken: std::collections::HashSet<usize> = scan_in_pos
        .iter()
        .copied()
        .chain(constrained.iter().map(|&(p, _)| p))
        .collect();
    let free = (0..inputs.len()).filter(|p| !taken.contains(p)).collect();
    ScanSequence {
        width: inputs.len(),
        scan_in_pos,
        constrained,
        free,
    }
}

/// Builds the scan-in (load) phase: `max_chain_len` cycles that leave
/// chain `c`'s cells holding `states[c]` (don't-cares loaded as 0),
/// accounting for segment inversions. Shorter chains start their stream
/// late so every chain finishes loading on the same final cycle.
///
/// Free inputs are held at 0.
///
/// # Panics
///
/// Panics if `states.len()` differs from the chain count or any state
/// length from its chain length.
pub fn scan_load_vectors(design: &ScanDesign, states: &[Vec<bool>]) -> Vec<Vec<V3>> {
    assert_eq!(states.len(), design.chains().len(), "one state per chain");
    let layout = scan_vector_layout(design);
    let total = design.max_chain_len();
    let mut vectors = vec![layout.base_vector(); total];
    for (c, chain) in design.chains().iter().enumerate() {
        let stream = chain.scan_in_stream(&states[c]);
        let offset = total - stream.len();
        for (t, &bit) in stream.iter().enumerate() {
            vectors[offset + t][layout.scan_in_pos[c]] = V3::from_bool(bit);
        }
    }
    vectors
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};
    use fscan_sim::SeqSim;

    #[test]
    fn load_vectors_realize_states_across_chains() {
        let circuit = generate(&GeneratorConfig::new("d", 77).gates(250).dffs(14));
        let cfg = TpiConfig {
            num_chains: 2,
            ..TpiConfig::default()
        };
        let design = insert_functional_scan(&circuit, &cfg).unwrap();
        let states: Vec<Vec<bool>> = design
            .chains()
            .iter()
            .map(|ch| (0..ch.len()).map(|i| i % 2 == 1).collect())
            .collect();
        let vectors = scan_load_vectors(&design, &states);
        assert_eq!(vectors.len(), design.max_chain_len());
        let c = design.circuit();
        let sim = SeqSim::new(c);
        let trace = sim.run(&vectors, &vec![V3::X; c.dffs().len()], None);
        for (ci, chain) in design.chains().iter().enumerate() {
            for (k, cell) in chain.cells.iter().enumerate() {
                let pos = c.dffs().iter().position(|&f| f == cell.ff).unwrap();
                assert_eq!(
                    trace.final_state[pos],
                    V3::from(states[ci][k]),
                    "chain {ci} cell {k}"
                );
            }
        }
    }

    #[test]
    fn base_vector_pins_constraints_only() {
        let circuit = generate(&GeneratorConfig::new("d", 5).gates(100).dffs(6));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let layout = scan_vector_layout(&design);
        let base = layout.base_vector();
        for &(pos, val) in &layout.constrained {
            assert_eq!(base[pos], V3::from(val));
        }
        // Every position is accounted for exactly once.
        assert_eq!(
            layout.free.len() + layout.constrained.len() + layout.scan_in_pos.len(),
            layout.width
        );
    }
}
