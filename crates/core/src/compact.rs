//! Test-set compaction (paper, Section 6).
//!
//! The paper observes that "the large majority of detected faults are
//! detected by the beginning part of the test sequence, thus the test
//! set can be reduced with only a small increase in the number of
//! undetected faults" (Figure 5). This module implements two standard
//! static compaction strategies over a [`TestProgram`]:
//!
//! * [`compact_program`] — reverse-order fault simulation: tests are
//!   simulated last-to-first and a test is kept only if it detects a
//!   fault no kept test detects (classic reverse compaction);
//! * [`truncate_to_coverage`] — forward truncation at a target fraction
//!   of the full program's detections (the paper's Figure-5 cut).

use fscan_fault::Fault;
use fscan_scan::ScanDesign;
use fscan_sim::{ParallelFaultSim, V3};

use crate::program::TestProgram;

/// The result of a compaction pass.
#[derive(Clone, Debug)]
pub struct CompactionResult {
    /// The compacted program.
    pub program: TestProgram,
    /// Faults detected by the full program.
    pub detected_before: usize,
    /// Faults detected by the compacted program.
    pub detected_after: usize,
    /// Tests before compaction.
    pub tests_before: usize,
}

impl CompactionResult {
    /// Tests kept after compaction.
    pub fn tests_after(&self) -> usize {
        self.program.len()
    }

    /// Detections lost by compaction (0 for reverse-order compaction).
    pub fn detections_lost(&self) -> usize {
        self.detected_before - self.detected_after
    }
}

fn detects_per_test(
    design: &ScanDesign,
    program: &TestProgram,
    faults: &[Fault],
    order: impl Iterator<Item = usize>,
) -> (Vec<Vec<usize>>, usize) {
    // For each test (visited in `order`), the indices of still-undetected
    // faults it detects. Each test is self-contained (starts with a full
    // scan load), so per-test simulation from X state is exact.
    let sim = ParallelFaultSim::with_topology(design.topology());
    let init = vec![V3::X; design.circuit().dffs().len()];
    let mut caught = vec![false; faults.len()];
    let mut per_test: Vec<Vec<usize>> = vec![Vec::new(); program.len()];
    let mut total = 0usize;
    for t in order {
        let pending: Vec<usize> = (0..faults.len()).filter(|&i| !caught[i]).collect();
        if pending.is_empty() {
            break;
        }
        let flist: Vec<Fault> = pending.iter().map(|&i| faults[i]).collect();
        let det = sim.fault_sim(&program.tests()[t].vectors, &init, &flist);
        for (k, d) in det.into_iter().enumerate() {
            if d.is_some() {
                caught[pending[k]] = true;
                per_test[t].push(pending[k]);
                total += 1;
            }
        }
    }
    (per_test, total)
}

/// Reverse-order static compaction: fault-simulate the tests from last
/// to first, keeping only tests that detect something not yet detected.
/// Preserves the detected-fault set exactly (for the given fault list)
/// while typically dropping a large share of the tests.
///
/// The first test (the alternating sequence, when present) is always
/// kept: it is the chain integrity test the rest of the methodology
/// assumes.
///
/// # Examples
///
/// ```no_run
/// use fscan::{compact_program, PipelineConfig, PipelineSession};
/// use fscan_fault::{all_faults, collapse};
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
///
/// let circuit = generate(&GeneratorConfig::new("d", 1).gates(150).dffs(10));
/// let design = insert_functional_scan(&circuit, &TpiConfig::default())?;
/// let report = PipelineSession::new(&design, PipelineConfig::default()).run();
/// let faults = collapse(design.circuit(), &all_faults(design.circuit()));
/// let result = compact_program(&design, report.program, &faults);
/// assert_eq!(result.detections_lost(), 0);
/// assert!(result.tests_after() <= result.tests_before);
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
pub fn compact_program(
    design: &ScanDesign,
    program: TestProgram,
    faults: &[Fault],
) -> CompactionResult {
    let n = program.len();
    let (per_test_rev, total) =
        detects_per_test(design, &program, faults, (0..n).rev());
    let mut keep: Vec<bool> = per_test_rev.iter().map(|d| !d.is_empty()).collect();
    if n > 0 {
        keep[0] = true; // the alternating sequence stays
    }
    let mut compacted = TestProgram::new();
    for (t, test) in program.into_tests().into_iter().enumerate() {
        if keep[t] {
            // Kept tests move into the compacted program; their vector
            // payloads are never copied.
            compacted.push(test);
        }
    }
    // Re-simulate the kept set forward to report its true coverage (the
    // reverse pass guarantees it equals the full program's).
    let (_, after) = detects_per_test(design, &compacted, faults, 0..compacted.len());
    CompactionResult {
        program: compacted,
        detected_before: total,
        detected_after: after,
        tests_before: n,
    }
}

/// Forward truncation: keeps the shortest prefix of the program that
/// still detects at least `coverage` (0.0–1.0) of the faults the full
/// program detects — the quantitative form of the paper's Figure-5
/// observation.
///
/// # Panics
///
/// Panics if `coverage` is not in `0.0..=1.0`.
pub fn truncate_to_coverage(
    design: &ScanDesign,
    program: &TestProgram,
    faults: &[Fault],
    coverage: f64,
) -> CompactionResult {
    assert!((0.0..=1.0).contains(&coverage), "coverage must be in 0..=1");
    let n = program.len();
    let (per_test, total) = detects_per_test(design, program, faults, 0..n);
    let target = (total as f64 * coverage).ceil() as usize;
    let mut cum = 0usize;
    let mut cut = 0usize;
    for (t, d) in per_test.iter().enumerate() {
        cum += d.len();
        cut = t + 1;
        if cum >= target {
            break;
        }
    }
    let program_cut = program.truncated(cut.max(usize::from(n > 0)));
    CompactionResult {
        program: program_cut,
        detected_before: total,
        detected_after: cum.min(total),
        tests_before: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PipelineConfig, PipelineSession};
    use crate::classify::{classify_faults, Category};
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    fn setup() -> (fscan_scan::ScanDesign, TestProgram, Vec<Fault>) {
        let circuit = generate(&GeneratorConfig::new("cmp", 9).gates(120).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = PipelineSession::new(&design, PipelineConfig::default()).run();
        let faults = collapse(design.circuit(), &all_faults(design.circuit()));
        let affected: Vec<Fault> = classify_faults(&design, &faults)
            .into_iter()
            .filter(|c| c.category != Category::Unaffected)
            .map(|c| c.fault)
            .collect();
        (design, report.program, affected)
    }

    #[test]
    fn reverse_compaction_preserves_coverage() {
        let (design, program, faults) = setup();
        let result = compact_program(&design, program, &faults);
        assert_eq!(result.detections_lost(), 0, "reverse compaction is lossless");
        assert!(result.tests_after() <= result.tests_before);
        assert_eq!(result.program.tests()[0].label, "alternating");
    }

    #[test]
    fn truncation_trades_tests_for_coverage() {
        let (design, program, faults) = setup();
        let full = truncate_to_coverage(&design, &program, &faults, 1.0);
        assert_eq!(full.detected_after, full.detected_before);
        let half = truncate_to_coverage(&design, &program, &faults, 0.5);
        assert!(half.tests_after() <= full.tests_after());
        assert!(half.detected_after * 2 >= half.detected_before);
    }

    #[test]
    fn coverage_bounds_checked() {
        let (design, program, faults) = setup();
        let r = std::panic::catch_unwind(|| {
            truncate_to_coverage(&design, &program, &faults, 1.5)
        });
        assert!(r.is_err());
    }
}
