//! Test-set compaction (paper, Section 6).
//!
//! The paper observes that "the large majority of detected faults are
//! detected by the beginning part of the test sequence, thus the test
//! set can be reduced with only a small increase in the number of
//! undetected faults" (Figure 5). This module implements two standard
//! static compaction strategies over a [`TestProgram`]:
//!
//! * [`compact_program`] — reverse-order fault simulation: tests are
//!   simulated last-to-first and a test is kept only if it detects a
//!   fault no kept test detects (classic reverse compaction). Lossless
//!   by construction; the function *verifies* that and returns an error
//!   instead of silently accepting detection loss;
//! * [`truncate_to_coverage`] — forward truncation at a target fraction
//!   of the full program's detections (the paper's Figure-5 cut), which
//!   is deliberately lossy.
//!
//! In the staged pipeline, reverse-order compaction runs as a
//! first-class stage between the combinational and sequential phases
//! ([`AfterComb::compact`](crate::AfterComb::compact)).

use std::fmt;
use std::time::Instant;

use fscan_fault::Fault;
use fscan_scan::ScanDesign;
use fscan_sim::kernel::{Rail, R256};
use fscan_sim::{LaneWidth, ParallelFaultSim, ShardStats, StageMetrics, V3, WorkCounters};

use crate::program::TestProgram;

/// The aggregate result of a compaction pass.
#[derive(Clone, Debug, Default)]
pub struct CompactionReport {
    /// Tests before compaction.
    pub tests_before: usize,
    /// Tests kept after compaction.
    pub tests_after: usize,
    /// Faults detected by the full program.
    pub detected_before: usize,
    /// Faults detected by the compacted program.
    pub detected_after: usize,
    /// Detections lost by compaction. **0 for reverse-order
    /// compaction** — [`compact_program`] verifies this and returns
    /// [`CompactionError::DetectionLoss`] instead of a report that
    /// silently dropped coverage; only [`truncate_to_coverage`]
    /// produces non-zero values here.
    pub lost: usize,
    /// The stage's cost triple: wall-clock time, work distribution
    /// across the per-test sharded fault simulations, and deterministic
    /// work counters (including `vectors_compacted` — bit-identical for
    /// every thread count).
    pub metrics: StageMetrics,
}

impl CompactionReport {
    /// Tests removed by the pass.
    pub fn removed(&self) -> usize {
        self.tests_before - self.tests_after
    }
}

impl fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compaction: {} → {} tests ({} removed, {} detections lost, {:.2}s)",
            self.tests_before,
            self.tests_after,
            self.removed(),
            self.lost,
            self.metrics.cpu.as_secs_f64()
        )
    }
}

/// A compaction pass's outputs: the (possibly shorter) program plus the
/// aggregate [`CompactionReport`].
#[derive(Clone, Debug, Default)]
pub struct CompactionOutcome {
    /// The compacted program.
    pub program: TestProgram,
    /// The aggregate report.
    pub report: CompactionReport,
}

/// A compaction pass that violated its own guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompactionError {
    /// Reverse-order compaction must preserve the detected-fault set
    /// exactly; the verification resimulation found otherwise. This
    /// indicates an internal invariant violation (e.g. a test whose
    /// detection depends on state left by a removed predecessor, which
    /// self-contained scan windows rule out).
    DetectionLoss {
        /// Faults the full program detected.
        before: usize,
        /// Faults the compacted program detected.
        after: usize,
    },
}

impl fmt::Display for CompactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactionError::DetectionLoss { before, after } => write!(
                f,
                "reverse-order compaction changed coverage: {before} detected before, {after} after"
            ),
        }
    }
}

impl std::error::Error for CompactionError {}

fn detects_per_test<W: Rail>(
    design: &ScanDesign,
    program: &TestProgram,
    faults: &[Fault],
    order: impl Iterator<Item = usize>,
    threads: usize,
) -> (Vec<Vec<usize>>, usize, ShardStats, WorkCounters) {
    // For each test (visited in `order`), the indices of still-undetected
    // faults it detects. Each test is self-contained (starts with a full
    // scan load), so per-test simulation from X state is exact.
    let sim = ParallelFaultSim::<W>::with_topology_wide(design.topology());
    let init = vec![V3::X; design.circuit().dffs().len()];
    let mut caught = vec![false; faults.len()];
    let mut per_test: Vec<Vec<usize>> = vec![Vec::new(); program.len()];
    let mut total = 0usize;
    let mut shards = ShardStats::default();
    let mut counters = WorkCounters::ZERO;
    for t in order {
        let pending: Vec<usize> = (0..faults.len()).filter(|&i| !caught[i]).collect();
        if pending.is_empty() {
            break;
        }
        let flist: Vec<Fault> = pending.iter().map(|&i| faults[i]).collect();
        let (det, tstats, twork) =
            sim.fault_sim_sharded(&program.tests()[t].vectors, &init, &flist, threads);
        shards.absorb(&tstats);
        counters += twork;
        for (k, d) in det.into_iter().enumerate() {
            if d.is_some() {
                caught[pending[k]] = true;
                per_test[t].push(pending[k]);
                total += 1;
            }
        }
    }
    (per_test, total, shards, counters)
}

/// Reverse-order static compaction: fault-simulate the tests from last
/// to first, keeping only tests that detect something not yet detected.
/// Preserves the detected-fault set exactly (for the given fault list)
/// while typically dropping a large share of the tests; the kept set is
/// resimulated forward and any coverage change is returned as
/// [`CompactionError::DetectionLoss`] rather than silently accepted, so
/// a returned report always has `lost == 0`.
///
/// The first test (the alternating sequence, when present) is always
/// kept: it is the chain integrity test the rest of the methodology
/// assumes.
///
/// Per-test fault simulations shard across `threads` workers (`0` =
/// hardware thread count); the kept set, the report and its counters
/// are identical for every thread count.
///
/// # Examples
///
/// ```no_run
/// use fscan::{compact_program, PipelineConfig, PipelineSession};
/// use fscan_fault::{all_faults, collapse};
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
///
/// let circuit = generate(&GeneratorConfig::new("d", 1).gates(150).dffs(10));
/// let design = insert_functional_scan(&circuit, &TpiConfig::default())?;
/// let report = PipelineSession::new(&design, PipelineConfig::default()).run();
/// let faults = collapse(design.circuit(), &all_faults(design.circuit()));
/// let outcome = compact_program(&design, report.program, &faults, 0).unwrap();
/// assert_eq!(outcome.report.lost, 0);
/// assert!(outcome.report.tests_after <= outcome.report.tests_before);
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
pub fn compact_program(
    design: &ScanDesign,
    program: TestProgram,
    faults: &[Fault],
    threads: usize,
) -> Result<CompactionOutcome, CompactionError> {
    compact_program_wide::<u64>(design, program, faults, threads)
}

/// [`compact_program`] dispatched on a runtime [`LaneWidth`]. The kept
/// set and the report are identical at every width.
pub fn compact_program_at(
    design: &ScanDesign,
    program: TestProgram,
    faults: &[Fault],
    threads: usize,
    width: LaneWidth,
) -> Result<CompactionOutcome, CompactionError> {
    match width {
        LaneWidth::W64 => compact_program_wide::<u64>(design, program, faults, threads),
        LaneWidth::W256 => compact_program_wide::<R256>(design, program, faults, threads),
    }
}

/// [`compact_program`] at rail width `W`.
pub fn compact_program_wide<W: Rail>(
    design: &ScanDesign,
    program: TestProgram,
    faults: &[Fault],
    threads: usize,
) -> Result<CompactionOutcome, CompactionError> {
    let start = Instant::now();
    let n = program.len();
    let mut shards = ShardStats::default();
    let mut counters = WorkCounters::ZERO;
    let (per_test_rev, total, rstats, rwork) =
        detects_per_test::<W>(design, &program, faults, (0..n).rev(), threads);
    shards.absorb(&rstats);
    counters += rwork;
    let mut keep: Vec<bool> = per_test_rev.iter().map(|d| !d.is_empty()).collect();
    if n > 0 {
        keep[0] = true; // the alternating sequence stays
    }
    let mut compacted = TestProgram::new();
    for (t, test) in program.into_tests().into_iter().enumerate() {
        if keep[t] {
            // Kept tests move into the compacted program; their vector
            // payloads are never copied.
            compacted.push(test);
        } else {
            counters.vectors_compacted += 1;
        }
    }
    // Re-simulate the kept set forward to verify its true coverage (the
    // reverse pass guarantees it equals the full program's — enforce
    // that instead of trusting it).
    let (_, after, fstats, fwork) =
        detects_per_test::<W>(design, &compacted, faults, 0..compacted.len(), threads);
    shards.absorb(&fstats);
    counters += fwork;
    if after != total {
        return Err(CompactionError::DetectionLoss {
            before: total,
            after,
        });
    }
    let tests_after = compacted.len();
    Ok(CompactionOutcome {
        program: compacted,
        report: CompactionReport {
            tests_before: n,
            tests_after,
            detected_before: total,
            detected_after: after,
            lost: 0,
            metrics: StageMetrics::new(start.elapsed(), shards, counters),
        },
    })
}

/// Forward truncation: keeps the shortest prefix of the program that
/// still detects at least `coverage` (0.0–1.0) of the faults the full
/// program detects — the quantitative form of the paper's Figure-5
/// observation. Unlike [`compact_program`] this is deliberately lossy;
/// the coverage given up is reported in [`CompactionReport::lost`].
///
/// # Panics
///
/// Panics if `coverage` is not in `0.0..=1.0`.
pub fn truncate_to_coverage(
    design: &ScanDesign,
    program: &TestProgram,
    faults: &[Fault],
    coverage: f64,
    threads: usize,
) -> CompactionOutcome {
    assert!((0.0..=1.0).contains(&coverage), "coverage must be in 0..=1");
    let start = Instant::now();
    let n = program.len();
    let (per_test, total, shards, counters) =
        detects_per_test::<u64>(design, program, faults, 0..n, threads);
    let target = (total as f64 * coverage).ceil() as usize;
    let mut cum = 0usize;
    let mut cut = 0usize;
    for (t, d) in per_test.iter().enumerate() {
        cum += d.len();
        cut = t + 1;
        if cum >= target {
            break;
        }
    }
    let program_cut = program.truncated(cut.max(usize::from(n > 0)));
    let detected_after = cum.min(total);
    CompactionOutcome {
        report: CompactionReport {
            tests_before: n,
            tests_after: program_cut.len(),
            detected_before: total,
            detected_after,
            lost: total - detected_after,
            metrics: StageMetrics::new(start.elapsed(), shards, counters),
        },
        program: program_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_faults, Category};
    use crate::pipeline::{PipelineConfig, PipelineSession};
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    fn setup() -> (fscan_scan::ScanDesign, TestProgram, Vec<Fault>) {
        let circuit = generate(&GeneratorConfig::new("cmp", 9).gates(120).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let report = PipelineSession::new(&design, PipelineConfig::default()).run();
        let faults = collapse(design.circuit(), &all_faults(design.circuit()));
        let affected: Vec<Fault> = classify_faults(&design, &faults)
            .into_iter()
            .filter(|c| c.category != Category::Unaffected)
            .map(|c| c.fault)
            .collect();
        (design, report.program, affected)
    }

    #[test]
    fn reverse_compaction_preserves_coverage() {
        let (design, program, faults) = setup();
        let outcome = compact_program(&design, program, &faults, 1).unwrap();
        assert_eq!(outcome.report.lost, 0, "reverse compaction is lossless");
        assert_eq!(outcome.report.detected_after, outcome.report.detected_before);
        assert!(outcome.report.tests_after <= outcome.report.tests_before);
        assert_eq!(outcome.program.len(), outcome.report.tests_after);
        assert_eq!(
            outcome.report.metrics.counters.vectors_compacted,
            outcome.report.removed() as u64
        );
        assert_eq!(outcome.program.tests()[0].label, "alternating");
    }

    #[test]
    fn compaction_is_thread_invariant() {
        let (design, program, faults) = setup();
        let serial = compact_program(&design, program.clone(), &faults, 1).unwrap();
        let parallel = compact_program(&design, program, &faults, 4).unwrap();
        assert_eq!(serial.report.tests_after, parallel.report.tests_after);
        assert_eq!(serial.report.detected_after, parallel.report.detected_after);
        assert_eq!(
            serial.report.metrics.counters,
            parallel.report.metrics.counters
        );
        assert_eq!(serial.program.tests().len(), parallel.program.tests().len());
        for (a, b) in serial.program.tests().iter().zip(parallel.program.tests()) {
            assert_eq!(a.vectors, b.vectors);
        }
    }

    #[test]
    fn truncation_trades_tests_for_coverage() {
        let (design, program, faults) = setup();
        let full = truncate_to_coverage(&design, &program, &faults, 1.0, 1);
        assert_eq!(full.report.detected_after, full.report.detected_before);
        assert_eq!(full.report.lost, 0);
        let half = truncate_to_coverage(&design, &program, &faults, 0.5, 1);
        assert!(half.report.tests_after <= full.report.tests_after);
        assert!(half.report.detected_after * 2 >= half.report.detected_before);
        assert_eq!(
            half.report.lost,
            half.report.detected_before - half.report.detected_after
        );
    }

    #[test]
    fn coverage_bounds_checked() {
        let (design, program, faults) = setup();
        let r = std::panic::catch_unwind(|| {
            truncate_to_coverage(&design, &program, &faults, 1.5, 1)
        });
        assert!(r.is_err());
    }

    #[test]
    fn error_renders_a_reason() {
        let e = CompactionError::DetectionLoss {
            before: 10,
            after: 9,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("9"));
    }
}
