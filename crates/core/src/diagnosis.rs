//! Scan-chain fault diagnosis from failing test responses.
//!
//! When the alternating sequence (or any scan-mode test) fails on
//! silicon, the tester sees a faulty output trace. Because the
//! classification step already knows *which* faults can affect the
//! chain and *where* (paper §3), diagnosis reduces to signature
//! matching: simulate each chain-affecting candidate fault over the
//! same stimulus and keep the ones whose predicted response is
//! consistent with the observation. The surviving candidates' chain
//! locations tell the failure analyst which segment to look at.

use fscan_fault::Fault;
use fscan_scan::ScanDesign;
use fscan_sim::{SeqSim, Trace, V3};

use crate::classify::{Category, ChainLocation, ClassifiedFault};

/// One diagnosis candidate: a fault whose simulated response is
/// consistent with the observed failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagnosisCandidate {
    /// The candidate fault.
    pub fault: Fault,
    /// The chain locations it affects (from classification).
    pub locations: Vec<ChainLocation>,
    /// Cycles at which the candidate's simulation *explains* the
    /// observed deviation from the good machine (both known, both equal,
    /// and different from the good value). Higher is stronger evidence.
    pub explained: usize,
}

/// Diagnoses a failing scan-mode test response.
///
/// * `classified` — the classification of the fault universe (only
///   chain-affecting faults are candidates);
/// * `vectors` — the stimulus that was applied (e.g.
///   [`crate::alternating_vectors`]);
/// * `observed` — the primary-output trace seen on the tester, cycle by
///   cycle (`X` entries are ignored, e.g. masked or unstrobed pins).
///
/// A candidate is *consistent* when its simulated faulty trace never
/// definitely contradicts the observation: wherever both are known they
/// agree. Candidates are returned sorted by decreasing `explained`
/// count (then by fault order for determinism). An observation
/// identical to the good machine returns an empty list.
///
/// # Examples
///
/// See `tests/` — the round trip "inject fault → simulate → diagnose"
/// recovers the injected fault's location.
pub fn diagnose_chain(
    design: &ScanDesign,
    classified: &[ClassifiedFault],
    vectors: &[Vec<V3>],
    observed: &[Vec<V3>],
) -> Vec<DiagnosisCandidate> {
    let circuit = design.circuit();
    let sim = SeqSim::new(circuit);
    let init = vec![V3::X; circuit.dffs().len()];
    let good = sim.run(vectors, &init, None);
    if !deviates(&good, observed) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for cf in classified {
        if cf.category == Category::Unaffected {
            continue;
        }
        let faulty = sim.run(vectors, &init, Some(cf.fault));
        if let Some(explained) = consistency(&faulty, observed, &good) {
            out.push(DiagnosisCandidate {
                fault: cf.fault,
                locations: cf.locations.clone(),
                explained,
            });
        }
    }
    out.sort_by(|a, b| b.explained.cmp(&a.explained).then(a.fault.cmp(&b.fault)));
    out
}

/// Whether the observation definitely differs from the good machine.
fn deviates(good: &Trace, observed: &[Vec<V3>]) -> bool {
    good.outputs
        .iter()
        .zip(observed.iter())
        .any(|(g, o)| {
            g.iter()
                .zip(o.iter())
                .any(|(&gv, &ov)| gv.is_known() && ov.is_known() && gv != ov)
        })
}

/// `Some(explained)` when the candidate never contradicts the
/// observation; `explained` counts positions where the candidate
/// predicts exactly the observed deviation.
fn consistency(faulty: &Trace, observed: &[Vec<V3>], good: &Trace) -> Option<usize> {
    let mut explained = 0usize;
    for ((f, o), g) in faulty
        .outputs
        .iter()
        .zip(observed.iter())
        .zip(good.outputs.iter())
    {
        for ((&fv, &ov), &gv) in f.iter().zip(o.iter()).zip(g.iter()) {
            if fv.is_known() && ov.is_known() {
                if fv != ov {
                    return None; // definite contradiction
                }
                if gv.is_known() && gv != ov {
                    explained += 1; // predicted the failure exactly
                }
            }
        }
    }
    Some(explained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::alternating_vectors;
    use crate::classify::classify_faults;
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    fn setup() -> (fscan_scan::ScanDesign, Vec<ClassifiedFault>, Vec<Vec<V3>>) {
        let circuit = generate(&GeneratorConfig::new("diag", 15).gates(130).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let faults = collapse(design.circuit(), &all_faults(design.circuit()));
        let classified = classify_faults(&design, &faults);
        let vectors = alternating_vectors(&design);
        (design, classified, vectors)
    }

    /// The trace a tester would record: the faulty machine's outputs
    /// with X strobes replaced by the good value (testers always read
    /// *something*; use good values so un-modeled positions are quiet).
    fn tester_view(design: &ScanDesign, vectors: &[Vec<V3>], fault: Fault) -> Vec<Vec<V3>> {
        let sim = SeqSim::new(design.circuit());
        let init = vec![V3::X; design.circuit().dffs().len()];
        let good = sim.run(vectors, &init, None);
        let bad = sim.run(vectors, &init, Some(fault));
        bad.outputs
            .iter()
            .zip(good.outputs.iter())
            .map(|(b, g)| {
                b.iter()
                    .zip(g.iter())
                    .map(|(&bv, &gv)| if bv.is_known() { bv } else { gv })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn injected_fault_is_among_candidates() {
        let (design, classified, vectors) = setup();
        // Pick a category-1 fault the alternating sequence detects.
        let phase = crate::alternating::AlternatingPhase::new(&design);
        let easy: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        let (det, _) = phase.run(&easy);
        let injected = easy
            .iter()
            .zip(det.iter())
            .find_map(|(&f, d)| d.map(|_| f))
            .expect("some easy fault is detected");
        let observed = tester_view(&design, &vectors, injected);
        let candidates = diagnose_chain(&design, &classified, &vectors, &observed);
        assert!(
            candidates.iter().any(|c| c.fault == injected),
            "injected fault must survive diagnosis"
        );
        // Top candidates must explain at least one failing position.
        assert!(candidates[0].explained > 0);
    }

    #[test]
    fn diagnosis_localizes_to_the_right_chain_region() {
        let (design, classified, vectors) = setup();
        let phase = crate::alternating::AlternatingPhase::new(&design);
        let easy: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        let (det, _) = phase.run(&easy);
        let injected_cf = classified
            .iter()
            .find(|c| {
                c.category == Category::AlternatingDetectable
                    && easy
                        .iter()
                        .zip(det.iter())
                        .any(|(&f, d)| f == c.fault && d.is_some())
            })
            .unwrap()
            .clone();
        let observed = tester_view(&design, &vectors, injected_cf.fault);
        let candidates = diagnose_chain(&design, &classified, &vectors, &observed);
        // The injected fault explains every observed deviation, so it is
        // a maximal explainer — and the ranking must put a maximal
        // explainer first.
        let injected_score = candidates
            .iter()
            .find(|c| c.fault == injected_cf.fault)
            .expect("injected among candidates")
            .explained;
        assert_eq!(
            candidates[0].explained, injected_score,
            "ranking must lead with a maximal explainer"
        );
        assert!(injected_score > 0);
    }

    #[test]
    fn passing_response_yields_no_candidates() {
        let (design, classified, vectors) = setup();
        let sim = SeqSim::new(design.circuit());
        let init = vec![V3::X; design.circuit().dffs().len()];
        let good = sim.run(&vectors, &init, None);
        let candidates = diagnose_chain(&design, &classified, &vectors, &good.outputs);
        assert!(candidates.is_empty());
    }
}
