//! Step 1: the traditional alternating-sequence chain test.

use std::fmt;
use std::time::{Duration, Instant};

use fscan_fault::Fault;
use fscan_scan::ScanDesign;
use fscan_sim::kernel::{Rail, R256};
use fscan_sim::{LaneWidth, ParallelFaultSim, ShardStats, StageMetrics, V3, WorkCounters};

use crate::sequences::scan_vector_layout;

/// Builds the scan-mode input sequence that shifts the alternating
/// pattern `00110011…` through every chain simultaneously (paper §1):
/// long enough to fill the longest chain and flush it out again, so a
/// pinned chain net shows up as a constant tail at some scan-out.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
/// use fscan::alternating_vectors;
///
/// let c = generate(&GeneratorConfig::new("d", 1).gates(80).dffs(6));
/// let design = insert_functional_scan(&c, &TpiConfig::default())?;
/// let vectors = alternating_vectors(&design);
/// assert!(vectors.len() >= 2 * design.max_chain_len());
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
pub fn alternating_vectors(design: &ScanDesign) -> Vec<Vec<V3>> {
    let layout = scan_vector_layout(design);
    let len = 2 * design.max_chain_len() + 4;
    let stream = ScanDesign::alternating_stream(len);
    stream
        .iter()
        .map(|&bit| {
            let mut v = layout.base_vector();
            for &pos in &layout.scan_in_pos {
                v[pos] = V3::from_bool(bit);
            }
            v
        })
        .collect()
}

/// The result of the alternating-sequence phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlternatingReport {
    /// Faults targeted (normally `f_easy ∪ f_hard`).
    pub targeted: usize,
    /// Faults the alternating sequence really detects (by sequential
    /// fault simulation).
    pub detected: usize,
    /// Category-1 faults the sequence *missed* — the paper assumes this
    /// is zero; any residue is forwarded to the later steps.
    pub missed_easy: usize,
    /// Cycles simulated.
    pub cycles: usize,
    /// The stage's cost triple: wall-clock time, work distribution
    /// across fault-simulation workers, and deterministic work counters
    /// (gate evaluations, lane·cycles — bit-identical for every thread
    /// count).
    pub metrics: StageMetrics,
}

impl fmt::Display for AlternatingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alternating sequence: {}/{} detected over {} cycles ({} easy missed), {:.2}s",
            self.detected,
            self.targeted,
            self.cycles,
            self.missed_easy,
            self.metrics.cpu.as_secs_f64()
        )
    }
}

/// Runs the alternating sequence against a fault list by sequential
/// fault simulation, returning the first detection cycle per fault.
#[derive(Clone, Debug)]
pub struct AlternatingPhase<'d> {
    design: &'d ScanDesign,
    vectors: Vec<Vec<V3>>,
}

impl<'d> AlternatingPhase<'d> {
    /// Prepares the phase (builds the pattern once).
    pub fn new(design: &'d ScanDesign) -> AlternatingPhase<'d> {
        AlternatingPhase {
            design,
            vectors: alternating_vectors(design),
        }
    }

    /// The input sequence used.
    pub fn vectors(&self) -> &[Vec<V3>] {
        &self.vectors
    }

    /// Consumes the phase and yields the input sequence by value, so a
    /// caller that is done simulating can keep the vectors without
    /// cloning them.
    pub fn into_vectors(self) -> Vec<Vec<V3>> {
        self.vectors
    }

    /// Fault-simulates the sequence; `results[i]` is the first cycle at
    /// which `faults[i]` is definitely detected.
    pub fn run(&self, faults: &[Fault]) -> (Vec<Option<usize>>, Duration) {
        let (detections, _, cpu, _) = self.run_sharded(faults, 1);
        (detections, cpu)
    }

    /// [`run`](Self::run) sharded across `threads` workers (`0` =
    /// hardware thread count). Detection verdicts — and the returned
    /// [`WorkCounters`] — are identical to the serial run for every
    /// thread count.
    pub fn run_sharded(
        &self,
        faults: &[Fault],
        threads: usize,
    ) -> (Vec<Option<usize>>, ShardStats, Duration, WorkCounters) {
        self.run_sharded_wide::<u64>(faults, threads)
    }

    /// [`run_sharded`](Self::run_sharded) dispatched on a runtime
    /// [`LaneWidth`]. Verdicts are identical at every width; the wider
    /// rail retires more faults per union-cone walk.
    pub fn run_sharded_at(
        &self,
        faults: &[Fault],
        threads: usize,
        width: LaneWidth,
    ) -> (Vec<Option<usize>>, ShardStats, Duration, WorkCounters) {
        match width {
            LaneWidth::W64 => self.run_sharded_wide::<u64>(faults, threads),
            LaneWidth::W256 => self.run_sharded_wide::<R256>(faults, threads),
        }
    }

    /// [`run_sharded`](Self::run_sharded) at rail width `W`.
    pub fn run_sharded_wide<W: Rail>(
        &self,
        faults: &[Fault],
        threads: usize,
    ) -> (Vec<Option<usize>>, ShardStats, Duration, WorkCounters) {
        let start = Instant::now();
        let sim = ParallelFaultSim::<W>::with_topology_wide(self.design.topology());
        let init = vec![V3::X; self.design.circuit().dffs().len()];
        let (detections, shards, counters) =
            sim.fault_sim_sharded(&self.vectors, &init, faults, threads);
        (detections, shards, start.elapsed(), counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, insert_mux_scan, TpiConfig};

    use crate::classify::{classify_faults, Category};

    #[test]
    fn detects_all_easy_faults_on_mux_scan() {
        // For a conventional (dedicated) scan chain the alternating
        // sequence detects every chain-affecting fault — the classic
        // result the paper starts from.
        let circuit = generate(&GeneratorConfig::new("d", 17).gates(120).dffs(8));
        let design = insert_mux_scan(&circuit, 1).unwrap();
        let faults = collapse(design.circuit(), &all_faults(design.circuit()));
        let classified = classify_faults(&design, &faults);
        let easy: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        assert!(!easy.is_empty());
        let phase = AlternatingPhase::new(&design);
        let (det, _) = phase.run(&easy);
        let missed = det.iter().filter(|d| d.is_none()).count();
        assert_eq!(missed, 0, "alternating must catch all easy faults on mux scan");
    }

    #[test]
    fn detects_most_easy_faults_on_functional_scan() {
        let circuit = generate(&GeneratorConfig::new("d", 19).gates(150).dffs(10));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let faults = collapse(design.circuit(), &all_faults(design.circuit()));
        let classified = classify_faults(&design, &faults);
        let easy: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        let phase = AlternatingPhase::new(&design);
        let (det, _) = phase.run(&easy);
        let detected = det.iter().filter(|d| d.is_some()).count();
        // Three-valued simulation is pessimistic, but the overwhelming
        // majority of category-1 faults must be caught.
        assert!(
            detected * 10 >= easy.len() * 9,
            "{detected}/{} easy faults detected",
            easy.len()
        );
    }

    #[test]
    fn hard_faults_can_escape_alternating() {
        // The paper's motivating observation: category-2 faults exist
        // that the alternating sequence does not detect.
        let mut escaped_somewhere = false;
        for seed in [19u64, 23, 29] {
            let circuit = generate(&GeneratorConfig::new("d", seed).gates(150).dffs(10));
            let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
            let faults = collapse(design.circuit(), &all_faults(design.circuit()));
            let classified = classify_faults(&design, &faults);
            let hard: Vec<Fault> = classified
                .iter()
                .filter(|c| c.category == Category::Hard)
                .map(|c| c.fault)
                .collect();
            if hard.is_empty() {
                continue;
            }
            let phase = AlternatingPhase::new(&design);
            let (det, _) = phase.run(&hard);
            if det.iter().any(|d| d.is_none()) {
                escaped_somewhere = true;
            }
        }
        assert!(
            escaped_somewhere,
            "expected at least one hard fault to escape the alternating sequence"
        );
    }

    #[test]
    fn sequence_shape() {
        let circuit = generate(&GeneratorConfig::new("d", 3).gates(60).dffs(4));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let vectors = alternating_vectors(&design);
        let layout = crate::sequences::scan_vector_layout(&design);
        // The scan-in bit pattern must be 0011 repeating.
        let bits: Vec<bool> = vectors
            .iter()
            .map(|v| v[layout.scan_in_pos[0]] == V3::One)
            .collect();
        assert_eq!(&bits[..4], &[false, false, true, true]);
        assert_eq!(&bits[4..8], &[false, false, true, true]);
    }
}
