//! Incremental ECO reruns: verdict carry-over across netlist deltas.
//!
//! An engineering change order (ECO) edits a design that has already
//! been through the pipeline. Rerunning all five stages from scratch
//! discards everything the previous run learned, even though a typical
//! ECO touches a handful of gates. [`PipelineSession::rerun`] instead
//! patches the compiled topology ([`fscan_netlist::CompiledTopology::patch`]),
//! reads the patch's [`fscan_netlist::DirtyInfo`], and re-enqueues only
//! the faults whose detection behaviour the edit can reach — everything
//! else carries its verdict forward from the prior run's [`EcoCarry`].
//!
//! # Invalidation model
//!
//! A fault's verdict — classification, alternating-sequence detection,
//! PODEM test, compaction decision, sequential ATPG result — depends
//! only on the structure and values inside its forward cone plus that
//! cone's transitive fanin. `DirtyInfo::support` is exactly the set of
//! nodes from which a patched node is reachable (over the union of the
//! base and patched fanin edges), so a fault whose
//! [`Fault::affected_node`] lies *outside* `support` can neither see a
//! changed value nor have a changed path to any observation point: its
//! prior verdict is still the verdict a cold run on the patched circuit
//! would produce. Reused verdicts are booked as
//! [`WorkCounters::verdicts_reused`]; recomputed ones as
//! [`WorkCounters::cones_invalidated`]; good-trace cycles seeded from
//! the prior trace as [`WorkCounters::trace_cycles_reused`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use fscan_fault::{all_faults_with, collapse_with, Fault};
use fscan_netlist::{DirtyInfo, NetlistDelta};
use fscan_scan::{ScanDesign, ScanError};
use fscan_sim::kernel::R256;
use fscan_sim::{
    CombEvaluator, GoodTrace, LaneWidth, ParallelFaultSim, ShardStats, StageMetrics, V3,
    WorkCounters,
};

use crate::alternating::{AlternatingPhase, AlternatingReport};
use crate::classify::{
    classify_faults_sharded_at, Category, ChainLocation, ClassifiedFault, ClassifySummary,
};
use crate::comb_phase::{CombPhase, CombPhaseConfig, CombPhaseOutcome};
use crate::compact::{compact_program_at, CompactionReport};
use crate::pipeline::{arena_footprint, fill_mem, PipelineConfig, PipelineReport, PipelineSession};
use crate::program::{ScanTest, TestProgram};
use crate::seq_phase::{DistParams, SeqPhase, SeqPhaseOutcome};

/// The intermediate artifacts of a pipeline run that a later
/// [`PipelineSession::rerun`] can carry verdicts forward from.
///
/// Every [`PipelineReport`] produced by [`PipelineSession::run`] (or by
/// `rerun` itself, so ECOs chain) holds one behind an [`Arc`] in
/// [`PipelineReport::carry`]. The contents are opaque: they are keyed to
/// the exact design and [`PipelineConfig`] of the run that produced
/// them, and `rerun` checks both before reusing anything.
#[derive(Clone, Debug)]
pub struct EcoCarry {
    pub(crate) config: PipelineConfig,
    pub(crate) classified: Vec<ClassifiedFault>,
    pub(crate) alt_vectors: Vec<Vec<V3>>,
    pub(crate) alt_trace: GoodTrace,
    pub(crate) alt_detections: HashMap<Fault, Option<usize>>,
    pub(crate) hard: Vec<Fault>,
    pub(crate) comb_outcome: CombPhaseOutcome,
    pub(crate) affected: Vec<Fault>,
    pub(crate) compaction: CompactionReport,
    pub(crate) compacted_program: TestProgram,
    pub(crate) seq_targets: Vec<Fault>,
    pub(crate) seq_outcome: SeqPhaseOutcome,
}

/// Carry pieces accumulated while the staged pipeline runs; assembled
/// into an [`EcoCarry`] by the final stage.
#[derive(Clone, Debug, Default)]
pub(crate) struct CarryParts {
    pub(crate) classified: Vec<ClassifiedFault>,
    pub(crate) alt_vectors: Vec<Vec<V3>>,
    pub(crate) alt_trace: Option<GoodTrace>,
    pub(crate) alt_detections: HashMap<Fault, Option<usize>>,
    pub(crate) hard: Vec<Fault>,
    pub(crate) comb_outcome: Option<CombPhaseOutcome>,
    pub(crate) affected: Vec<Fault>,
    pub(crate) compaction: Option<CompactionReport>,
    pub(crate) compacted_program: Option<TestProgram>,
    pub(crate) seq_targets: Vec<Fault>,
    pub(crate) seq_outcome: Option<SeqPhaseOutcome>,
}

impl CarryParts {
    pub(crate) fn into_carry(self, config: &PipelineConfig) -> Option<Arc<EcoCarry>> {
        Some(Arc::new(EcoCarry {
            config: config.clone(),
            classified: self.classified,
            alt_vectors: self.alt_vectors,
            alt_trace: self.alt_trace?,
            alt_detections: self.alt_detections,
            hard: self.hard,
            comb_outcome: self.comb_outcome?,
            affected: self.affected,
            compaction: self.compaction?,
            compacted_program: self.compacted_program?,
            seq_targets: self.seq_targets,
            seq_outcome: self.seq_outcome?,
        }))
    }
}

/// Sharded alternating-sequence fault simulation against a
/// caller-supplied good trace, dispatched on the runtime lane width.
/// The returned counters cover only the faulty machines; the caller
/// books the trace's own counters exactly once.
pub(crate) fn alt_sim_with_trace(
    design: &ScanDesign,
    width: LaneWidth,
    faults: &[Fault],
    trace: &GoodTrace,
    threads: usize,
) -> (Vec<Option<usize>>, ShardStats, WorkCounters) {
    match width {
        LaneWidth::W64 => ParallelFaultSim::<u64>::with_topology_wide(design.topology())
            .fault_sim_sharded_with_trace(faults, trace, threads),
        LaneWidth::W256 => ParallelFaultSim::<R256>::with_topology_wide(design.topology())
            .fault_sim_sharded_with_trace(faults, trace, threads),
    }
}

/// A stage's metrics when its entire outcome was carried forward: no
/// simulation work, just the reuse booking.
fn reuse_metrics(
    start: Instant,
    mark: fscan_alloctrack::MemMark,
    arena: u64,
    reused: u64,
) -> StageMetrics {
    let mut counters = WorkCounters::ZERO;
    counters.verdicts_reused = reused;
    let mut metrics = StageMetrics::new(start.elapsed(), ShardStats::default(), counters);
    fill_mem(&mut metrics, mark, arena);
    metrics
}

impl PipelineSession {
    /// Reruns the pipeline after an ECO edit script against this
    /// session's design, carrying forward every verdict from `prior`
    /// whose detection cone the edit cannot reach.
    ///
    /// The patched design's verdicts and test program are byte-identical
    /// to a cold [`run`](PipelineSession::run) over the same patched
    /// circuit at any thread count and lane width; only the stage
    /// metrics differ — reused work is booked as
    /// [`WorkCounters::verdicts_reused`] and recomputed work as
    /// [`WorkCounters::cones_invalidated`] instead of being simulated
    /// again. When `prior` carries no [`EcoCarry`], or the delta changes
    /// the primary-input/output or flip-flop lists (a full invalidation),
    /// every stage recomputes.
    ///
    /// # Errors
    ///
    /// Propagates [`ScanError`] when the delta fails to apply or touches
    /// the scan fabric (see [`ScanDesign::patched`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan_netlist::{generate, DeltaNode, DeltaRef, GateKind, GeneratorConfig, NetlistDelta};
    /// use fscan_scan::{insert_functional_scan, TpiConfig};
    /// use fscan::{PipelineConfig, PipelineSession};
    ///
    /// let circuit = generate(&GeneratorConfig::new("eco", 5).gates(120).dffs(8));
    /// let design = insert_functional_scan(&circuit, &TpiConfig::default())?;
    /// let session = PipelineSession::new(&design, PipelineConfig::default());
    /// let prior = session.clone().run();
    /// // Spare-cell insertion: a constant plus a NOT gate island.
    /// let delta = NetlistDelta {
    ///     base_nodes: design.circuit().num_nodes(),
    ///     added: vec![
    ///         DeltaNode { name: "spare_c".into(), kind: GateKind::Const0, fanin: vec![] },
    ///         DeltaNode { name: "spare_g".into(), kind: GateKind::Not, fanin: vec![DeltaRef::Added(0)] },
    ///     ],
    ///     redriven: vec![],
    ///     removed: vec![],
    ///     outputs: vec![],
    /// };
    /// let report = session.rerun(&prior, &delta)?;
    /// assert!(report.total_counters().verdicts_reused > 0);
    /// assert_eq!(report.undetected(), prior.undetected());
    /// # Ok::<(), fscan_scan::ScanError>(())
    /// ```
    pub fn rerun(
        &self,
        prior: &PipelineReport,
        delta: &NetlistDelta,
    ) -> Result<PipelineReport, ScanError> {
        self.rerun_with_design(prior, delta).map(|(report, _)| report)
    }

    /// [`rerun`](Self::rerun), also returning the patched design so the
    /// caller can keep it (and the report's carry) for the next ECO in
    /// the chain.
    pub fn rerun_with_design(
        &self,
        prior: &PipelineReport,
        delta: &NetlistDelta,
    ) -> Result<(PipelineReport, Arc<ScanDesign>), ScanError> {
        let config = self.config.clone();
        let patched = Arc::new(self.design.patched(delta)?);
        let topo = patched.topology();
        let nodes = topo.num_nodes();
        let dirty: Option<DirtyInfo> = topo.dirty().cloned();
        let carry: Option<&EcoCarry> = prior.carry.as_deref();
        // Per-fault reuse needs a prior run and a cone-scoped (not full)
        // invalidation; whole-stage reuse additionally needs the prior
        // run's configuration to match.
        let incremental = matches!((&dirty, carry), (Some(d), Some(_)) if !d.is_full());
        let config_match = carry.is_some_and(|c| c.config == config);
        let in_support = |f: &Fault| -> bool {
            match &dirty {
                Some(d) if incremental => d.in_support(f.affected_node()),
                _ => true,
            }
        };
        let mut parts = CarryParts::default();

        // Stage 1: classification with per-fault verdict carry-over.
        // The fault universe is re-collapsed on the patched circuit
        // (new-to-universe faults on added gates appear here; faults on
        // removed gates disappear); any fault present in both universes
        // and outside the support keeps its prior classification.
        let faults: Vec<Fault> = collapse_with(
            patched.circuit(),
            &topo,
            &all_faults_with(patched.circuit(), &topo),
        );
        let start = Instant::now();
        let mark = fscan_alloctrack::stage_mark();
        let prior_cls: HashMap<Fault, &ClassifiedFault> = carry
            .map(|c| c.classified.iter().map(|cf| (cf.fault, cf)).collect())
            .unwrap_or_default();
        let mut slots: Vec<Option<ClassifiedFault>> = vec![None; faults.len()];
        let mut stale: Vec<usize> = Vec::new();
        let mut reused = 0u64;
        for (i, f) in faults.iter().enumerate() {
            match prior_cls.get(f) {
                Some(cf) if !in_support(f) => {
                    slots[i] = Some((*cf).clone());
                    reused += 1;
                }
                _ => stale.push(i),
            }
        }
        let sub: Vec<Fault> = stale.iter().map(|&i| faults[i]).collect();
        let (sub_cls, shards, mut counters, hist) =
            classify_faults_sharded_at(&patched, &sub, config.threads, config.lane_width);
        for (k, cf) in sub_cls.into_iter().enumerate() {
            slots[stale[k]] = Some(cf);
        }
        let classified: Vec<ClassifiedFault> = slots
            .into_iter()
            .map(|s| s.expect("every fault slot is filled"))
            .collect();
        counters.verdicts_reused += reused;
        counters.cones_invalidated += sub.len() as u64;
        let mut metrics = StageMetrics::new(start.elapsed(), shards, counters);
        fill_mem(&mut metrics, mark, arena_footprint(nodes, config.lane_width));
        metrics.mem.cone_hist = hist;
        let total_faults = faults.len();
        let summary = ClassifySummary {
            total: total_faults,
            easy: classified
                .iter()
                .filter(|c| c.category == Category::AlternatingDetectable)
                .count(),
            hard: classified
                .iter()
                .filter(|c| c.category == Category::Hard)
                .count(),
            metrics,
        };
        parts.classified = classified.clone();

        // Stage 2: alternating sequence. The good trace replays from the
        // prior run's (cycles outside the dirty cones are copied, not
        // re-evaluated); per-fault detections carry over like verdicts.
        let affected: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category != Category::Unaffected)
            .map(|c| c.fault)
            .collect();
        let easy: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::AlternatingDetectable)
            .map(|c| c.fault)
            .collect();
        let mark = fscan_alloctrack::stage_mark();
        let phase = AlternatingPhase::new(&patched);
        let start = Instant::now();
        let vectors_match =
            incremental && carry.is_some_and(|c| c.alt_vectors[..] == *phase.vectors());
        let init = vec![V3::X; patched.circuit().dffs().len()];
        let eval = CombEvaluator::with_topology(topo.clone());
        let trace = match carry {
            Some(c) if incremental => {
                GoodTrace::replay_from(&eval, &c.alt_trace, phase.vectors(), &init)
            }
            _ => GoodTrace::compute(&eval, phase.vectors(), &init),
        };
        let mut det_slots: Vec<Option<Option<usize>>> = vec![None; affected.len()];
        let mut stale: Vec<usize> = Vec::new();
        let mut reused = 0u64;
        for (i, f) in affected.iter().enumerate() {
            let prior_det = if vectors_match {
                carry.and_then(|c| c.alt_detections.get(f))
            } else {
                None
            };
            match prior_det {
                Some(&d) if !in_support(f) => {
                    det_slots[i] = Some(d);
                    reused += 1;
                }
                _ => stale.push(i),
            }
        }
        let sub: Vec<Fault> = stale.iter().map(|&i| affected[i]).collect();
        let (sub_det, shards, mut counters) =
            alt_sim_with_trace(&patched, config.lane_width, &sub, &trace, config.threads);
        for (k, d) in sub_det.into_iter().enumerate() {
            det_slots[stale[k]] = Some(d);
        }
        counters += trace.counters();
        counters.verdicts_reused += reused;
        counters.cones_invalidated += sub.len() as u64;
        let detections: Vec<Option<usize>> = det_slots
            .into_iter()
            .map(|s| s.expect("every detection slot is filled"))
            .collect();
        let detected: HashSet<Fault> = affected
            .iter()
            .zip(detections.iter())
            .filter_map(|(&f, d)| d.map(|_| f))
            .collect();
        let missed_easy: Vec<Fault> = easy
            .iter()
            .copied()
            .filter(|f| !detected.contains(f))
            .collect();
        let mut alt_report = AlternatingReport {
            targeted: affected.len(),
            detected: detected.len(),
            missed_easy: missed_easy.len(),
            cycles: phase.vectors().len(),
            metrics: StageMetrics::new(start.elapsed(), shards, counters),
        };
        fill_mem(
            &mut alt_report.metrics,
            mark,
            arena_footprint(nodes, config.lane_width),
        );
        parts.alt_vectors = phase.vectors().to_vec();
        parts.alt_detections = affected
            .iter()
            .copied()
            .zip(detections.iter().copied())
            .collect();
        parts.alt_trace = Some(trace);
        let vectors = phase.into_vectors();

        // Stage 3: combinational phase — whole-stage reuse. PODEM
        // explores a fault's cone and that cone's transitive fanin, and
        // each accepted window re-drops the entire hard list, so the
        // outcome carries over only when the target list is identical
        // and every target sits outside the support.
        let hard: Vec<Fault> = classified
            .iter()
            .filter(|c| c.category == Category::Hard && !detected.contains(&c.fault))
            .map(|c| c.fault)
            .collect();
        let comb_reuse = incremental
            && config_match
            && carry.is_some_and(|c| c.hard == hard)
            && hard.iter().all(|f| !in_support(f));
        let mark = fscan_alloctrack::stage_mark();
        let start = Instant::now();
        let comb_outcome = if comb_reuse {
            let mut outcome = carry.expect("comb_reuse implies carry").comb_outcome.clone();
            outcome.report.metrics = reuse_metrics(
                start,
                mark,
                arena_footprint(nodes, config.lane_width),
                hard.len() as u64,
            );
            outcome
        } else {
            let comb_config = CombPhaseConfig {
                podem: config.podem,
                threads: config.threads,
                lane_width: config.lane_width,
                ..CombPhaseConfig::default()
            };
            let mut outcome = CombPhase::new(&patched, comb_config).run(&hard);
            outcome.report.metrics.counters.cones_invalidated += hard.len() as u64;
            fill_mem(
                &mut outcome.report.metrics,
                mark,
                arena_footprint(nodes, config.lane_width),
            );
            outcome
        };
        parts.hard = hard;
        parts.comb_outcome = Some(comb_outcome.clone());

        // Stage 4: compaction — whole-stage reuse. The program so far is
        // the alternating sequence plus the comb windows, simulated
        // against every chain-affecting fault, so reuse additionally
        // needs the alternating vectors and affected list unchanged.
        let compact_reuse = comb_reuse
            && vectors_match
            && carry.is_some_and(|c| c.affected == affected)
            && affected.iter().all(|f| !in_support(f));
        let mark = fscan_alloctrack::stage_mark();
        let start = Instant::now();
        let (compaction, compacted_program) = if compact_reuse {
            let c = carry.expect("compact_reuse implies carry");
            let mut report = c.compaction.clone();
            report.metrics = reuse_metrics(
                start,
                mark,
                arena_footprint(nodes, config.lane_width),
                affected.len() as u64,
            );
            (report, c.compacted_program.clone())
        } else {
            let mut program = TestProgram::new();
            program.push(ScanTest::new("alternating", vectors));
            for t in comb_outcome.program.iter().cloned() {
                program.push(t);
            }
            let mut compacted = compact_program_at(
                &patched,
                program,
                &affected,
                config.threads,
                config.lane_width,
            )
            .expect("reverse-order compaction preserves every detection");
            compacted.report.metrics.counters.cones_invalidated += affected.len() as u64;
            fill_mem(
                &mut compacted.report.metrics,
                mark,
                arena_footprint(nodes, config.lane_width),
            );
            (compacted.report, compacted.program)
        };
        parts.affected = affected;
        parts.compaction = Some(compaction.clone());
        parts.compacted_program = Some(compacted_program.clone());

        // Stage 5: sequential ATPG — whole-stage reuse over the same
        // target set (`remaining ∪ missed_easy`, all of which are
        // chain-affecting and therefore already known to be clean when
        // compaction reused).
        let mut targets: Vec<Fault> = comb_outcome.remaining.clone();
        targets.extend(missed_easy.iter().copied());
        let seq_reuse = compact_reuse && carry.is_some_and(|c| c.seq_targets == targets);
        let mark = fscan_alloctrack::stage_mark();
        let start = Instant::now();
        let seq_outcome = if seq_reuse {
            let mut outcome = carry.expect("seq_reuse implies carry").seq_outcome.clone();
            outcome.report.metrics = reuse_metrics(
                start,
                mark,
                arena_footprint(nodes, LaneWidth::W64),
                targets.len() as u64,
            );
            outcome
        } else {
            let locations: HashMap<Fault, Vec<ChainLocation>> = classified
                .iter()
                .map(|c| (c.fault, c.locations.clone()))
                .collect();
            let target_locs: Vec<Vec<ChainLocation>> = targets
                .iter()
                .map(|f| locations.get(f).cloned().unwrap_or_default())
                .collect();
            let dist = config
                .dist
                .unwrap_or_else(|| DistParams::paper(patched.max_chain_len()));
            let min_frames = patched.max_chain_len() + 4;
            let mut seq_cfg = config.seq;
            seq_cfg.max_frames = seq_cfg.max_frames.max(min_frames);
            let mut final_cfg = config.final_seq;
            final_cfg.max_frames = final_cfg.max_frames.max(min_frames);
            let seq_phase =
                SeqPhase::new(&patched, dist, seq_cfg, final_cfg).threads(config.threads);
            let mut outcome = seq_phase.run(&targets, &target_locs);
            outcome.report.metrics.counters.cones_invalidated += targets.len() as u64;
            fill_mem(
                &mut outcome.report.metrics,
                mark,
                arena_footprint(nodes, LaneWidth::W64),
            );
            outcome
        };
        parts.seq_targets = targets;
        parts.seq_outcome = Some(seq_outcome.clone());

        let seq_detected: HashSet<Fault> = seq_outcome.detected.iter().copied().collect();
        let rescued_easy = missed_easy
            .iter()
            .filter(|f| seq_detected.contains(f))
            .count();
        let mut program = compacted_program;
        for t in seq_outcome.program {
            program.push(t);
        }
        let report = PipelineReport {
            name: patched.circuit().name().to_string(),
            total_faults,
            classification: summary,
            alternating: alt_report,
            comb: comb_outcome.report,
            compact: compaction,
            seq: seq_outcome.report,
            rescued_easy,
            undetected_faults: seq_outcome.remaining,
            program,
            carry: parts.into_carry(&config),
        };
        Ok((report, patched))
    }
}
