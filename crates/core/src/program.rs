//! The concrete test program produced by the flow.

use std::fmt;
use std::io::{self, Write};

use fscan_scan::ScanDesign;
use fscan_sim::V3;

/// One named scan-mode test: a sequence of primary-input vectors applied
/// from power-up (unknown flip-flop state), strictly in scan mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanTest {
    /// What the test is for (e.g. `alternating`, `comb n42 s-a-1`).
    pub label: String,
    /// Per-cycle primary-input vectors in `Circuit::inputs` order.
    pub vectors: Vec<Vec<V3>>,
}

impl ScanTest {
    /// Creates a test.
    pub fn new(label: impl Into<String>, vectors: Vec<Vec<V3>>) -> ScanTest {
        ScanTest {
            label: label.into(),
            vectors,
        }
    }

    /// Number of clock cycles the test takes.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the test is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// The ordered collection of tests the pipeline emits: the alternating
/// sequence first, then every confirmed step-2 window and step-3
/// sequence. Applying the whole program in order (each test restarted
/// from arbitrary state — every test begins with a full scan load, so no
/// reset is needed between them) detects every fault the pipeline
/// reports as detected.
///
/// # Examples
///
/// ```
/// use fscan::{ScanTest, TestProgram};
/// use fscan_sim::V3;
///
/// let mut program = TestProgram::default();
/// program.push(ScanTest::new("alternating", vec![vec![V3::Zero, V3::One]]));
/// assert_eq!(program.total_cycles(), 1);
/// let mut out = Vec::new();
/// program.write_text(&mut out)?;
/// assert!(String::from_utf8(out)?.contains("# alternating"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TestProgram {
    tests: Vec<ScanTest>,
}

impl TestProgram {
    /// An empty program.
    pub fn new() -> TestProgram {
        TestProgram::default()
    }

    /// Appends a test.
    pub fn push(&mut self, test: ScanTest) {
        self.tests.push(test);
    }

    /// The tests in application order.
    pub fn tests(&self) -> &[ScanTest] {
        &self.tests
    }

    /// Consumes the program and yields its tests by value, so callers
    /// that reshuffle or filter tests (compaction) can move them instead
    /// of cloning vector payloads.
    pub fn into_tests(self) -> Vec<ScanTest> {
        self.tests
    }

    /// Number of tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Total tester cycles across all tests.
    pub fn total_cycles(&self) -> usize {
        self.tests.iter().map(ScanTest::len).sum()
    }

    /// All vectors concatenated in order — the exact stimulus the
    /// pipeline's fault simulations replay.
    pub fn concatenated(&self) -> Vec<Vec<V3>> {
        self.tests
            .iter()
            .flat_map(|t| t.vectors.iter().cloned())
            .collect()
    }

    /// The first `tests` tests of the program — the paper's Section 6
    /// observation: the test set can be truncated with only a small
    /// increase in undetected faults, because detections saturate early
    /// (Figure 5).
    pub fn truncated(&self, tests: usize) -> TestProgram {
        TestProgram {
            tests: self.tests.iter().take(tests).cloned().collect(),
        }
    }

    /// Writes the program as plain text: one `# label` line per test,
    /// then one line of `0`/`1`/`X` characters per cycle (inputs in
    /// circuit order).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer (a `&mut Vec<u8>` or
    /// `&mut File` both work).
    pub fn write_text<W: Write>(&self, mut w: W) -> io::Result<()> {
        for test in &self.tests {
            writeln!(w, "# {}", test.label)?;
            for v in &test.vectors {
                let line: String = v.iter().map(|&b| v3_char(b)).collect();
                writeln!(w, "{line}")?;
            }
        }
        Ok(())
    }

    /// A header comment block describing the input columns of a design,
    /// to prepend before [`TestProgram::write_text`] output.
    pub fn column_legend(design: &ScanDesign) -> String {
        let mut s = String::from("# input columns:\n");
        for (k, &pi) in design.circuit().inputs().iter().enumerate() {
            let name = design
                .circuit()
                .node(pi)
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| pi.to_string());
            s.push_str(&format!("#   [{k}] {name}\n"));
        }
        s
    }
}

fn v3_char(v: V3) -> char {
    match v {
        V3::Zero => '0',
        V3::One => '1',
        V3::X => 'X',
    }
}

impl fmt::Display for TestProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "test program: {} tests, {} cycles",
            self.len(),
            self.total_cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format() {
        let mut p = TestProgram::new();
        p.push(ScanTest::new(
            "t0",
            vec![vec![V3::Zero, V3::One, V3::X], vec![V3::One, V3::One, V3::Zero]],
        ));
        p.push(ScanTest::new("t1", vec![vec![V3::X, V3::X, V3::X]]));
        let mut out = Vec::new();
        p.write_text(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "# t0\n01X\n110\n# t1\nXXX\n");
        assert_eq!(p.total_cycles(), 3);
        assert_eq!(p.concatenated().len(), 3);
        assert!(p.to_string().contains("2 tests"));
    }
}
