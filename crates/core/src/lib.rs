//! Functional scan chain testing (Chang, Lee, Cheng, Marek-Sadowska —
//! DATE 1998).
//!
//! A functional scan chain routes its scan path through mission logic
//! (crate [`fscan_scan`]). The classic chain integrity test — shifting
//! the alternating sequence `00110011…` — is no longer sufficient: a
//! stuck-at fault in the mission logic can corrupt the chain in ways the
//! alternating pattern cannot see. This crate implements the paper's
//! three-step screening methodology:
//!
//! 1. **Classification** ([`classify_faults`], paper §3): the 3-valued
//!    forward implication cone of every fault decides whether it affects
//!    the chain, *where* (between which flip-flop pair), and whether the
//!    alternating sequence detects it (category 1) or may not
//!    (category 2, `f_hard`).
//! 2. **Combinational ATPG + sequential fault simulation**
//!    ([`CombPhase`], paper §4): PODEM on the scan-mode circuit view
//!    generates scan-wrapped vectors for `f_hard`; sequential fault
//!    simulation confirms real detections (the fault may damage the very
//!    chain used to shift).
//! 3. **Targeted sequential ATPG** ([`SeqPhase`], paper §5): remaining
//!    faults use their location information — the chain before the first
//!    affected location is controllable, after the last is observable —
//!    grouped by `LARGE_DIST` / `MED_DIST` / `DIST`.
//!
//! [`PipelineSession`] chains all steps — with an inspectable,
//! editable checkpoint between each pair — and produces the per-step
//! reports that regenerate the paper's Tables 2–3 and Figure 5, plus
//! the emitted [`TestProgram`]. Every report carries its cost as a
//! [`fscan_sim::StageMetrics`] triple (wall-clock, shard distribution,
//! deterministic work counters), collected per run by
//! [`PipelineReport::stages`]. Around the core flow:
//!
//! * [`compact_program`] / [`truncate_to_coverage`] — test-set
//!   compaction (the paper's §6 reduction observation);
//! * [`diagnose_chain`] — scan-chain fault diagnosis from failing
//!   responses, built on the §3 location information.
//!
//! # Examples
//!
//! ```
//! use fscan_netlist::{generate, GeneratorConfig};
//! use fscan_scan::{insert_functional_scan, TpiConfig};
//! use fscan::{PipelineConfig, PipelineSession};
//!
//! let circuit = generate(&GeneratorConfig::new("demo", 1).gates(100).dffs(8));
//! let design = insert_functional_scan(&circuit, &TpiConfig::default())?;
//! let report = PipelineSession::new(&design, PipelineConfig::default()).run();
//! assert_eq!(
//!     report.classification.affected(),
//!     report.classification.easy + report.classification.hard
//! );
//! # Ok::<(), fscan_scan::ScanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alternating;
mod classify;
mod comb_phase;
mod compact;
mod diagnosis;
mod eco;
mod error;
pub mod json;
mod pipeline;
mod program;
mod seq_phase;
mod sequences;

pub use alternating::{alternating_vectors, AlternatingPhase, AlternatingReport};
pub use classify::{
    classify_faults, classify_faults_sharded, classify_faults_sharded_at,
    classify_faults_sharded_wide, Category, ChainLocation, ClassifiedFault, Classifier,
    ClassifySummary,
};
pub use fscan_sim::LaneWidth;
pub use comb_phase::{
    CombPhase, CombPhaseConfig, CombPhaseConfigBuilder, CombPhaseOutcome, CombPhaseReport,
};
pub use compact::{
    compact_program, compact_program_at, compact_program_wide, truncate_to_coverage,
    CompactionError, CompactionOutcome, CompactionReport,
};
pub use diagnosis::{diagnose_chain, DiagnosisCandidate};
pub use eco::EcoCarry;
pub use error::Error;
pub use pipeline::{
    AfterAlternating, AfterComb, AfterCompact, Classified, ConfigError, PipelineConfig,
    PipelineConfigBuilder, PipelineReport, PipelineSession,
};
pub use program::{ScanTest, TestProgram};
pub use seq_phase::{DistParams, SeqPhase, SeqPhaseReport};
pub use sequences::{scan_load_vectors, scan_vector_layout, ScanSequence};
