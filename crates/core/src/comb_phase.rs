//! Step 2: combinational ATPG plus sequential fault simulation
//! (paper, Section 4).

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use fscan_atpg::{AtpgOutcome, Podem, PodemConfig};
use fscan_fault::Fault;
use fscan_netlist::NodeId;
use fscan_scan::ScanDesign;
use fscan_sim::kernel::{Rail, R256};
use fscan_sim::pool::shard_map_counted;
use fscan_sim::{LaneWidth, ParallelFaultSim, ShardStats, StageMetrics, V3, WorkCounters};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pipeline::ConfigError;
use crate::program::ScanTest;
use crate::sequences::{scan_load_vectors, scan_vector_layout};

/// The result of the combinational phase (a Table 3 left half row).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CombPhaseReport {
    /// `|f_hard|` — faults targeted.
    pub targeted: usize,
    /// Really detected (confirmed by sequential fault simulation).
    pub detected: usize,
    /// Proven undetectable (combinationally undetectable in the
    /// scan-mode view, which soundly implies sequential
    /// undetectability).
    pub undetectable: usize,
    /// Neither detected nor proven undetectable (input to step 3).
    pub undetected: usize,
    /// Scan-wrapped test windows generated.
    pub vectors: usize,
    /// Total simulated cycles.
    pub cycles: usize,
    /// Cumulative detections per simulated window: `(window, detected)`
    /// — the paper's Figure 5 series.
    pub detection_curve: Vec<(usize, usize)>,
    /// The stage's cost triple: wall-clock time, work distribution
    /// across PODEM-batch and confirmation-simulation workers
    /// (aggregated over all batch rounds and windows), and deterministic
    /// work counters (PODEM decisions/backtracks/aborts, event-driven
    /// and confirmation-simulation gate evaluations, windows formed,
    /// fault-dropping early exits, `faults_dropped`, `podem_shards` —
    /// bit-identical for every thread count).
    pub metrics: StageMetrics,
}

impl fmt::Display for CombPhaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "comb ATPG + seq fault sim: {} targeted → {} detected, {} undetectable, {} undetected ({} vectors, {} cycles, {:.2}s)",
            self.targeted,
            self.detected,
            self.undetectable,
            self.undetected,
            self.vectors,
            self.cycles,
            self.metrics.cpu.as_secs_f64()
        )
    }
}

/// Outcome detail: which faults landed where.
#[derive(Clone, Debug, Default)]
pub struct CombPhaseOutcome {
    /// The aggregate report.
    pub report: CombPhaseReport,
    /// Faults confirmed detected.
    pub detected: Vec<Fault>,
    /// Faults proven undetectable.
    pub undetectable: Vec<Fault>,
    /// Faults left for step 3 (`f_remaining`).
    pub remaining: Vec<Fault>,
    /// The test windows that make up this phase's contribution to the
    /// final test program (targeted windows plus the random windows
    /// that detected something).
    pub program: Vec<ScanTest>,
}

/// Configuration for [`CombPhase`], built via
/// [`CombPhaseConfig::builder`] — the same builder-with-validation
/// pattern as [`PipelineConfig::builder`](crate::PipelineConfig::builder)
/// (replacing the old ad-hoc `threads(..)` / `random_windows(..)`
/// setters on the phase itself).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CombPhaseConfig {
    /// PODEM budget per targeted fault.
    pub podem: PodemConfig,
    /// Random scan windows fault-simulated against whatever the
    /// targeted vectors leave undetected (0 disables the top-up). The
    /// paper notes a random test set is the natural simulation-based
    /// alternative to combinational ATPG here.
    pub random_windows: usize,
    /// Seed for the random top-up windows.
    pub seed: u64,
    /// Worker threads for the sharded PODEM batches and confirmation
    /// fault simulations (`0` = hardware thread count). Verdicts,
    /// programs and counters are identical for every thread count.
    pub threads: usize,
    /// Targets per sharded PODEM batch round. Batch composition is
    /// fixed before the round starts (the next up-to-`podem_batch`
    /// still-pending faults in input order), so the work done — and
    /// every counter — is independent of the thread count serving it.
    pub podem_batch: usize,
    /// Packed rail width for the confirmation fault simulations.
    /// Verdicts, programs and curves are identical at every width;
    /// wider rails retire more faults per union-cone walk (visible in
    /// `gate_evals`/`kernel_gate_evals`). Defaults to
    /// [`LaneWidth::W256`].
    pub lane_width: LaneWidth,
}

impl Default for CombPhaseConfig {
    fn default() -> CombPhaseConfig {
        CombPhaseConfig {
            podem: PodemConfig::default(),
            random_windows: 128,
            seed: 0xc0ffee,
            threads: 1,
            podem_batch: 64,
            lane_width: LaneWidth::default(),
        }
    }
}

impl CombPhaseConfig {
    /// Starts a validated builder from the default configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use fscan::CombPhaseConfig;
    ///
    /// let config = CombPhaseConfig::builder().threads(4).build()?;
    /// assert_eq!(config.threads, 4);
    /// assert_eq!(config.podem_batch, 64);
    /// # Ok::<(), fscan::ConfigError>(())
    /// ```
    pub fn builder() -> CombPhaseConfigBuilder {
        CombPhaseConfigBuilder {
            config: CombPhaseConfig::default(),
        }
    }
}

/// Builder for [`CombPhaseConfig`] with validation at
/// [`build`](CombPhaseConfigBuilder::build).
#[derive(Clone, Debug)]
pub struct CombPhaseConfigBuilder {
    config: CombPhaseConfig,
}

impl CombPhaseConfigBuilder {
    /// PODEM budget per targeted fault.
    pub fn podem(mut self, podem: PodemConfig) -> Self {
        self.config.podem = podem;
        self
    }

    /// Random top-up window count (0 disables the top-up).
    pub fn random_windows(mut self, windows: usize) -> Self {
        self.config.random_windows = windows;
        self
    }

    /// Seed for the random top-up windows.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Worker threads (`0` = hardware thread count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Targets per sharded PODEM batch round.
    pub fn podem_batch(mut self, batch: usize) -> Self {
        self.config.podem_batch = batch;
        self
    }

    /// Packed rail width for the confirmation fault simulations
    /// (default [`LaneWidth::W256`]). Verdicts are identical at every
    /// width.
    pub fn lane_width(mut self, lane_width: LaneWidth) -> Self {
        self.config.lane_width = lane_width;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<CombPhaseConfig, ConfigError> {
        let c = &self.config;
        if c.podem.backtrack_limit == 0 && c.podem.step_limit == 0 {
            return Err(ConfigError::EmptyPodemBudget);
        }
        if c.podem_batch == 0 {
            return Err(ConfigError::ZeroPodemBatch);
        }
        Ok(self.config)
    }
}

/// Step 2 of the paper: generate combinational tests for `f_hard` on the
/// scan-mode circuit view, wrap each in scan-in/scan-out shifting, and
/// confirm detection by sequential fault simulation (the fault may
/// damage the chain used to shift, masking itself).
///
/// PODEM runs are sharded across independent fault targets in
/// fixed-composition batches; after every accepted vector the packed
/// fault simulator (64 or 256 lanes per [`CombPhaseConfig::lane_width`])
/// re-drops the *entire* remaining fault list, so one vector can retire
/// dozens of targets globally.
///
/// # Examples
///
/// ```
/// use fscan_netlist::{generate, GeneratorConfig};
/// use fscan_scan::{insert_functional_scan, TpiConfig};
/// use fscan::{classify_faults, Category, CombPhase, CombPhaseConfig};
/// use fscan_fault::{all_faults, collapse};
///
/// let circuit = generate(&GeneratorConfig::new("d", 4).gates(120).dffs(8));
/// let design = insert_functional_scan(&circuit, &TpiConfig::default())?;
/// let faults = collapse(design.circuit(), &all_faults(design.circuit()));
/// let hard: Vec<_> = classify_faults(&design, &faults)
///     .into_iter()
///     .filter(|c| c.category == Category::Hard)
///     .map(|c| c.fault)
///     .collect();
/// let outcome = CombPhase::new(&design, CombPhaseConfig::default()).run(&hard);
/// assert_eq!(
///     outcome.report.targeted,
///     outcome.report.detected + outcome.report.undetectable + outcome.report.undetected
/// );
/// # Ok::<(), fscan_scan::ScanError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CombPhase<'d> {
    design: &'d ScanDesign,
    config: CombPhaseConfig,
}

impl<'d> CombPhase<'d> {
    /// Prepares the phase.
    pub fn new(design: &'d ScanDesign, config: CombPhaseConfig) -> CombPhase<'d> {
        CombPhase { design, config }
    }

    /// Runs the phase over `hard` (the category-2 faults), dispatching
    /// on the configured [`LaneWidth`] to the monomorphized rail.
    pub fn run(&self, hard: &[Fault]) -> CombPhaseOutcome {
        match self.config.lane_width {
            LaneWidth::W64 => self.run_wide::<u64>(hard),
            LaneWidth::W256 => self.run_wide::<R256>(hard),
        }
    }

    fn run_wide<W: Rail>(&self, hard: &[Fault]) -> CombPhaseOutcome {
        let start = Instant::now();
        let circuit = self.design.circuit();
        let layout = scan_vector_layout(self.design);

        // Scan-mode combinational view: free PIs + scan-ins + every
        // flip-flop output are controllable; constrained PIs are fixed;
        // primary outputs and every flip-flop D net are observable.
        let inputs = circuit.inputs();
        let mut controllable: Vec<NodeId> = layout.free.iter().map(|&p| inputs[p]).collect();
        controllable.extend(layout.scan_in_pos.iter().map(|&p| inputs[p]));
        // Only *chained* flip-flops are loadable/observable — identical to
        // all flip-flops under full scan, a strict subset under partial
        // scan (the rest stay uncontrollable X state).
        let chained: Vec<NodeId> = self
            .design
            .chains()
            .iter()
            .flat_map(|ch| ch.cells.iter().map(|cell| cell.ff))
            .collect();
        controllable.extend(chained.iter().copied());
        let fixed: Vec<(NodeId, bool)> = self.design.constraints().to_vec();
        let mut observable: Vec<NodeId> = circuit.outputs().to_vec();
        observable.extend(chained.iter().map(|&ff| circuit.node(ff).fanin()[0]));
        observable.sort();
        observable.dedup();
        let podem = Podem::with_topology(
            circuit,
            self.design.topology(),
            controllable,
            fixed,
            observable,
        );

        let max_len = self.design.max_chain_len();
        let window_len = 2 * max_len + 2;
        let sim = ParallelFaultSim::<W>::with_topology_wide(self.design.topology());
        let init = vec![V3::X; circuit.dffs().len()];

        let mut status: Vec<Status> = vec![Status::Pending; hard.len()];
        let mut curve: Vec<(usize, usize)> = Vec::new();
        let mut windows = 0usize;
        let mut detected_total = 0usize;
        let mut program: Vec<ScanTest> = Vec::new();
        let mut shards = ShardStats::default();
        let mut counters = WorkCounters::ZERO;
        // One shared engine for the whole phase; its construction pass
        // is charged once, however many shard workers borrow it.
        counters += podem.setup_work();

        let batch_size = self.config.podem_batch.max(1);
        let mut cursor = 0usize;
        while cursor < hard.len() {
            // Fixed-composition batch: the next up-to-`podem_batch`
            // still-pending faults in input order. Composition depends
            // only on earlier verdicts, never on the thread count.
            let mut batch: Vec<usize> = Vec::with_capacity(batch_size);
            while cursor < hard.len() && batch.len() < batch_size {
                if status[cursor] == Status::Pending {
                    batch.push(cursor);
                } else {
                    // Fault dropping: the target was already resolved by
                    // an earlier window, so its ATPG run never happens.
                    counters.early_exits += 1;
                }
                cursor += 1;
            }
            if batch.is_empty() {
                continue;
            }
            // Shard PODEM across the batch's independent targets. Every
            // batch member runs regardless of how the chunks were cut,
            // and each run's counters are a pure function of the fault,
            // so the harvested sums are thread-invariant.
            counters.podem_shards += 1;
            let targets: Vec<Fault> = batch.iter().map(|&i| hard[i]).collect();
            let (outcomes, bstats, bwork) = shard_map_counted(
                self.config.threads,
                1,
                &targets,
                || podem.scratch(),
                |scratch, _base, chunk| {
                    let mut work = WorkCounters::ZERO;
                    let outs: Vec<_> = chunk
                        .iter()
                        .map(|f| {
                            let out =
                                podem.run_with_scratch(scratch, &[*f], &self.config.podem);
                            work += out.work;
                            out
                        })
                        .collect();
                    (outs, work)
                },
            );
            shards.absorb(&bstats);
            counters += bwork;
            // Deterministic order-preserving merge: outcomes are applied
            // in batch (input) order, so the first generating shard wins
            // and later vectors whose target was meanwhile dropped are
            // discarded (re-dropped against the merged vectors).
            for (k, &i) in batch.iter().enumerate() {
                match &outcomes[k].verdict {
                    AtpgOutcome::Undetectable => {
                        if status[i] == Status::Pending {
                            status[i] = Status::Undetectable;
                        }
                    }
                    AtpgOutcome::Aborted => {}
                    AtpgOutcome::Test(assignments) => {
                        if status[i] != Status::Pending {
                            // An earlier vector of this batch already
                            // resolved the target: the redundant vector
                            // is dropped at merge time.
                            counters.early_exits += 1;
                            continue;
                        }
                        let window = self.test_window(assignments, window_len);
                        windows += 1;
                        counters.windows_formed += 1;
                        program.push(ScanTest::new(format!("comb {}", hard[i]), window.clone()));
                        // Global fault dropping: simulate this window
                        // against the *entire* remaining fault list
                        // (windows fully re-load state, so per-window
                        // simulation from X state is exact).
                        let pending: Vec<usize> = (0..hard.len())
                            .filter(|&j| status[j] == Status::Pending)
                            .collect();
                        let faults: Vec<Fault> = pending.iter().map(|&j| hard[j]).collect();
                        let (det, wstats, wwork) =
                            sim.fault_sim_sharded(&window, &init, &faults, self.config.threads);
                        shards.absorb(&wstats);
                        counters += wwork;
                        for (k2, d) in det.into_iter().enumerate() {
                            if d.is_some() {
                                let j = pending[k2];
                                status[j] = Status::Detected;
                                detected_total += 1;
                                if j != i {
                                    counters.faults_dropped += 1;
                                }
                            }
                        }
                        curve.push((windows, detected_total));
                    }
                }
            }
        }

        // Random top-up: fault-simulate random scan windows (random
        // load state + random free-PI values) against whatever the
        // targeted vectors left pending.
        if self.config.random_windows > 0 && status.contains(&Status::Pending) {
            let mut rng = StdRng::seed_from_u64(self.config.seed);
            let pending: Vec<usize> = (0..hard.len())
                .filter(|&j| status[j] == Status::Pending)
                .collect();
            let mut faults: Vec<Fault> = pending.iter().map(|&j| hard[j]).collect();
            let mut fault_idx = pending;
            let mut sequence: Vec<Vec<V3>> = Vec::new();
            for _ in 0..self.config.random_windows {
                sequence.extend(self.random_window(&mut rng, window_len));
            }
            counters.windows_formed += self.config.random_windows as u64;
            let (det, rstats, rwork) = sim.fault_sim_sharded(&sequence, &init, &faults, self.config.threads);
            shards.absorb(&rstats);
            counters += rwork;
            let mut newly = Vec::new();
            for (k, d) in det.into_iter().enumerate() {
                if let Some(cycle) = d {
                    status[fault_idx[k]] = Status::Detected;
                    newly.push(cycle / window_len);
                }
            }
            faults.clear();
            fault_idx.clear();
            newly.sort_unstable();
            for &w in &newly {
                detected_total += 1;
                curve.push((windows + w + 1, detected_total));
            }
            // Keep only the random windows that detected something.
            newly.dedup();
            for w in newly {
                let slice = sequence[w * window_len..(w + 1) * window_len].to_vec();
                program.push(ScanTest::new(format!("random {w}"), slice));
            }
            windows += self.config.random_windows;
        }

        let mut detected = Vec::new();
        let mut undetectable = Vec::new();
        let mut remaining = Vec::new();
        for (i, &f) in hard.iter().enumerate() {
            match status[i] {
                Status::Detected => detected.push(f),
                Status::Undetectable => undetectable.push(f),
                Status::Pending => remaining.push(f),
            }
        }
        let report = CombPhaseReport {
            targeted: hard.len(),
            detected: detected.len(),
            undetectable: undetectable.len(),
            undetected: remaining.len(),
            vectors: windows,
            cycles: windows * window_len,
            detection_curve: curve,
            metrics: StageMetrics::new(start.elapsed(), shards, counters),
        };
        CombPhaseOutcome {
            report,
            detected,
            undetectable,
            remaining,
            program,
        }
    }

    /// One random scan window: random chain load, random free-PI values
    /// held throughout, then a full shift-out.
    fn random_window(&self, rng: &mut StdRng, window_len: usize) -> Vec<Vec<V3>> {
        let layout = scan_vector_layout(self.design);
        let states: Vec<Vec<bool>> = self
            .design
            .chains()
            .iter()
            .map(|chain| (0..chain.len()).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let pi_values: Vec<(usize, bool)> = layout
            .free
            .iter()
            .map(|&p| (p, rng.gen_bool(0.5)))
            .collect();
        let mut vectors = scan_load_vectors(self.design, &states);
        for v in &mut vectors {
            for &(p, val) in &pi_values {
                v[p] = V3::from_bool(val);
            }
        }
        while vectors.len() < window_len {
            let mut v = layout.base_vector();
            for &(p, val) in &pi_values {
                v[p] = V3::from_bool(val);
            }
            vectors.push(v);
        }
        vectors
    }

    /// Expands one PODEM test into a scan window: load the required
    /// state through the chains, then keep shifting while holding the
    /// test's primary-input values so the combinational response and the
    /// captured chain contents reach the outputs.
    fn test_window(&self, assignments: &[(NodeId, bool)], window_len: usize) -> Vec<Vec<V3>> {
        let circuit = self.design.circuit();
        let layout = scan_vector_layout(self.design);
        let assign: HashMap<NodeId, bool> = assignments.iter().copied().collect();
        // Desired flip-flop state per chain (don't-cares → 0).
        let states: Vec<Vec<bool>> = self
            .design
            .chains()
            .iter()
            .map(|chain| {
                chain
                    .cells
                    .iter()
                    .map(|cell| assign.get(&cell.ff).copied().unwrap_or(false))
                    .collect()
            })
            .collect();
        let mut vectors = scan_load_vectors(self.design, &states);
        // Hold the test's free-PI values through the whole window.
        let pi_values: Vec<(usize, bool)> = layout
            .free
            .iter()
            .chain(layout.scan_in_pos.iter())
            .filter_map(|&p| assign.get(&circuit.inputs()[p]).map(|&v| (p, v)))
            .collect();
        for v in &mut vectors {
            for &(p, val) in &pi_values {
                // Scan-in pins carry the load stream; only free pins are
                // overridden during the load phase.
                if !layout.scan_in_pos.contains(&p) {
                    v[p] = V3::from_bool(val);
                }
            }
        }
        // Shift-out phase.
        while vectors.len() < window_len {
            let mut v = layout.base_vector();
            for &(p, val) in &pi_values {
                v[p] = V3::from_bool(val);
            }
            vectors.push(v);
        }
        vectors
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    Pending,
    Detected,
    Undetectable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    use crate::classify::{classify_faults, Category};

    fn hard_faults(design: &ScanDesign) -> Vec<Fault> {
        let faults = collapse(design.circuit(), &all_faults(design.circuit()));
        classify_faults(design, &faults)
            .into_iter()
            .filter(|c| c.category == Category::Hard)
            .map(|c| c.fault)
            .collect()
    }

    #[test]
    fn resolves_most_hard_faults() {
        let mut total_hard = 0usize;
        let mut total_resolved = 0usize;
        for seed in [41u64, 43, 47] {
            let circuit = generate(&GeneratorConfig::new("d", seed).gates(200).dffs(12));
            let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
            let hard = hard_faults(&design);
            let outcome = CombPhase::new(&design, CombPhaseConfig::default()).run(&hard);
            total_hard += hard.len();
            total_resolved += outcome.report.detected + outcome.report.undetectable;
            // Bookkeeping invariants.
            assert_eq!(
                outcome.report.targeted,
                outcome.report.detected + outcome.report.undetectable + outcome.report.undetected
            );
            assert_eq!(outcome.detected.len(), outcome.report.detected);
            assert_eq!(outcome.remaining.len(), outcome.report.undetected);
        }
        assert!(total_hard > 0, "suite should produce hard faults");
        // The paper resolves all but ~0.6% of chain-affecting faults in
        // this step; demand at least 80% here across seeds.
        assert!(
            total_resolved * 10 >= total_hard * 8,
            "{total_resolved}/{total_hard} hard faults resolved"
        );
    }

    #[test]
    fn detection_curve_is_monotone_and_saturating() {
        let circuit = generate(&GeneratorConfig::new("d", 53).gates(250).dffs(14));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let hard = hard_faults(&design);
        let outcome = CombPhase::new(&design, CombPhaseConfig::default()).run(&hard);
        let curve = &outcome.report.detection_curve;
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        if let Some(&(_, last)) = curve.last() {
            assert_eq!(last, outcome.report.detected);
        }
    }

    #[test]
    fn outcome_is_identical_across_thread_counts() {
        let circuit = generate(&GeneratorConfig::new("d", 43).gates(200).dffs(12));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let hard = hard_faults(&design);
        let serial = CombPhase::new(&design, CombPhaseConfig::default()).run(&hard);
        let config = CombPhaseConfig::builder().threads(4).build().unwrap();
        let parallel = CombPhase::new(&design, config).run(&hard);
        assert_eq!(serial.detected, parallel.detected);
        assert_eq!(serial.undetectable, parallel.undetectable);
        assert_eq!(serial.remaining, parallel.remaining);
        assert_eq!(serial.report.detection_curve, parallel.report.detection_curve);
        assert_eq!(
            serial.report.metrics.counters, parallel.report.metrics.counters,
            "work counters must not depend on threads"
        );
        assert_eq!(serial.program.len(), parallel.program.len());
        for (a, b) in serial.program.iter().zip(parallel.program.iter()) {
            assert_eq!(a.vectors, b.vectors);
        }
    }

    #[test]
    fn empty_hard_list_is_noop() {
        let circuit = generate(&GeneratorConfig::new("d", 5).gates(60).dffs(4));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        let outcome = CombPhase::new(&design, CombPhaseConfig::default()).run(&[]);
        assert_eq!(outcome.report.targeted, 0);
        assert_eq!(outcome.report.vectors, 0);
        assert!(outcome.remaining.is_empty());
    }
}
