//! Step 3: targeted sequential ATPG with enhanced controllability and
//! observability (paper, Section 5).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use fscan_atpg::{SeqAtpg, SeqAtpgConfig, SeqOutcome, SeqTest};
use fscan_fault::Fault;
use fscan_scan::ScanDesign;
use fscan_sim::{shard_map_counted, ParallelFaultSim, ShardStats, StageMetrics, V3, WorkCounters};

use crate::classify::ChainLocation;
use crate::program::ScanTest;
use crate::sequences::{scan_load_vectors, scan_vector_layout};

/// Per-chain fault extent: chain index → (first, last) affected cell.
type Extent = HashMap<usize, (usize, usize)>;

/// One sharded ATPG batch: `(fault index, extent)` pairs whose attempts
/// are mutually independent. Extents are shared, not cloned: every
/// follower riding a seed's circuit points at the seed's extent map.
type Batch = Vec<(usize, Arc<Extent>)>;

/// The paper's grouping distance parameters.
///
/// In the paper's experiments: `LARGE_DIST = max(0.6·maxsize, 50)`,
/// `MED_DIST = max(0.25·maxsize, 25)`, `DIST = max(0.15·maxsize, 20)`,
/// where `maxsize` is the longest chain length.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DistParams {
    /// Faults spanning at least this many cells are handled one by one.
    pub large: usize,
    /// Spans in `[med, large)` share a circuit with compatible faults.
    pub med: usize,
    /// Group-3 faults are packed into groups of union span ≤ `dist`.
    pub dist: usize,
}

impl DistParams {
    /// The paper's parameter schedule for a given longest chain length.
    pub fn paper(maxsize: usize) -> DistParams {
        DistParams {
            large: ((maxsize as f64 * 0.6) as usize).max(50),
            med: ((maxsize as f64 * 0.25) as usize).max(25),
            dist: ((maxsize as f64 * 0.15) as usize).max(20),
        }
    }

    /// A schedule scaled purely to the chain length (no absolute
    /// floors), useful for small circuits where the paper's floors of
    /// 50/25/20 would disable grouping entirely.
    pub fn scaled(maxsize: usize) -> DistParams {
        DistParams {
            large: ((maxsize as f64 * 0.6) as usize).max(3),
            med: ((maxsize as f64 * 0.25) as usize).max(2),
            dist: ((maxsize as f64 * 0.15) as usize).max(1),
        }
    }
}

/// The result of the sequential phase (a Table 3 right half row).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeqPhaseReport {
    /// Faults targeted (`|f_remaining|`).
    pub targeted: usize,
    /// Detected (ATPG found a sequence and sequential fault simulation
    /// confirmed it).
    pub detected: usize,
    /// ATPG found a sequence that simulation could not confirm
    /// (X-pessimism); counted as undetected.
    pub unconfirmed: usize,
    /// Proven undetectable.
    pub undetectable: usize,
    /// Still undetected after the final pass.
    pub undetected: usize,
    /// Enhanced-controllability/observability circuits created for the
    /// initial grouped pass (first number of the paper's `#circ`).
    pub circuits_initial: usize,
    /// Circuits created for the final per-fault pass (second number).
    pub circuits_final: usize,
    /// The stage's cost triple: wall-clock time, work distribution
    /// across ATPG-attempt workers (aggregated over the grouped and
    /// final passes), and deterministic work counters (PODEM
    /// decisions/backtracks/aborts, verification-simulation gate
    /// evaluations, circuits formed, already-resolved skips —
    /// bit-identical for every thread count).
    pub metrics: StageMetrics,
}

impl fmt::Display for SeqPhaseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sequential ATPG: {} targeted → {} detected, {} undetectable, {} undetected ({} + {} circuits, {:.2}s)",
            self.targeted,
            self.detected,
            self.undetectable,
            self.undetected,
            self.circuits_initial,
            self.circuits_final,
            self.metrics.cpu.as_secs_f64()
        )
    }
}

/// Outcome detail of the sequential phase.
#[derive(Clone, Debug, Default)]
pub struct SeqPhaseOutcome {
    /// The aggregate report.
    pub report: SeqPhaseReport,
    /// Confirmed-detected faults.
    pub detected: Vec<Fault>,
    /// Proven-undetectable faults.
    pub undetectable: Vec<Fault>,
    /// Still-undetected faults.
    pub remaining: Vec<Fault>,
    /// The confirmed test sequences this phase contributes to the test
    /// program.
    pub program: Vec<ScanTest>,
}

/// Step 3: exploit fault-location information. For a fault affecting
/// chain locations `l_min..l_max`, the chain before `l_min` is
/// fault-free (fully controllable) and from `l_max` on it is fault-free
/// (fully observable); unaffected chains are both. Faults are grouped by
/// span to bound the number of ATPG circuit models (paper, Section 5 and
/// Figure 4).
///
/// # Examples
///
/// See [`crate::PipelineSession`] for the end-to-end flow.
#[derive(Clone, Debug)]
pub struct SeqPhase<'d> {
    design: &'d ScanDesign,
    dist: DistParams,
    config: SeqAtpgConfig,
    final_config: SeqAtpgConfig,
    threads: usize,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    Pending,
    Detected,
    Unconfirmed,
    Undetectable,
}

impl<'d> SeqPhase<'d> {
    /// Prepares the phase with grouping parameters and the per-run and
    /// final-pass ATPG budgets.
    pub fn new(
        design: &'d ScanDesign,
        dist: DistParams,
        config: SeqAtpgConfig,
        final_config: SeqAtpgConfig,
    ) -> SeqPhase<'d> {
        SeqPhase {
            design,
            dist,
            config,
            final_config,
            threads: 1,
        }
    }

    /// Shards the per-fault ATPG attempts across `threads` workers
    /// (`0` = hardware thread count). Grouping decisions, attempt
    /// results, and program order are identical for every thread count:
    /// each attempt is independent, and batches are merged in the same
    /// order the serial algorithm visits them.
    pub fn threads(mut self, threads: usize) -> SeqPhase<'d> {
        self.threads = threads;
        self
    }

    /// Runs the phase. `faults[i]` affects `locations[i]` (as produced
    /// by classification); every fault must affect at least one chain.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length.
    pub fn run(&self, faults: &[Fault], locations: &[Vec<ChainLocation>]) -> SeqPhaseOutcome {
        assert_eq!(faults.len(), locations.len());
        let start = Instant::now();
        let mut status = vec![Status::Pending; faults.len()];
        let mut program: Vec<ScanTest> = Vec::new();
        let mut circuits_initial = 0usize;
        let mut shards = ShardStats::default();
        let mut counters = WorkCounters::ZERO;

        // Span and chain-extent helpers.
        let chain_of = |locs: &[ChainLocation]| -> Option<usize> {
            let first = locs.first()?.chain;
            locs.iter().all(|l| l.chain == first).then_some(first)
        };
        let span = |locs: &[ChainLocation]| -> usize {
            let min = locs.iter().map(|l| l.cell).min().unwrap_or(0);
            let max = locs.iter().map(|l| l.cell).max().unwrap_or(0);
            max - min
        };

        // Group assignment (paper §5): multi-chain faults and wide
        // single-chain faults go to group 1; medium spans to group 2;
        // the rest (including single-location faults) to group 3.
        let mut group1 = Vec::new();
        let mut group2 = Vec::new();
        let mut group3 = Vec::new();
        for (i, locs) in locations.iter().enumerate() {
            if locs.is_empty() {
                // Defensive: a fault with no location cannot use the
                // enhanced models; treat as group 1 with no enhancement.
                group1.push(i);
                continue;
            }
            match chain_of(locs) {
                None => group1.push(i),
                Some(_) => {
                    let s = span(locs);
                    if locs.len() > 1 && s >= self.dist.large {
                        group1.push(i);
                    } else if locs.len() > 1 && s >= self.dist.med {
                        group2.push(i);
                    } else {
                        group3.push(i);
                    }
                }
            }
        }

        // Group 1: one circuit per fault. Every attempt is independent,
        // so the whole group is one sharded batch.
        circuits_initial += group1.len();
        let batch: Batch = group1
            .iter()
            .map(|&i| (i, Arc::new(self.extent_map(&locations[i]))))
            .collect();
        self.run_batch(&batch, faults, &self.config, &mut status, &mut program, &mut shards, &mut counters);

        // Group 2: the seed fault's circuit is shared with compatible
        // same-chain faults (their locations inside the seed's window).
        // Which faults ride on a seed's circuit depends on the statuses
        // left by earlier seeds, so seeds advance serially with a
        // barrier; within one seed's window, the seed and its followers
        // only ever change their own status, so the batch itself shards.
        for &i in &group2 {
            if status[i] != Status::Pending {
                counters.early_exits += 1;
                continue;
            }
            circuits_initial += 1;
            let extent = self.extent_map(&locations[i]);
            let seed_chain = chain_of(&locations[i]).expect("group 2 is single-chain");
            let (cmin, omax) = extent[&seed_chain];
            let extent = Arc::new(extent);
            let mut batch = vec![(i, Arc::clone(&extent))];
            for &j in group2.iter().chain(group3.iter()) {
                if j == i || status[j] != Status::Pending {
                    continue;
                }
                if chain_of(&locations[j]) == Some(seed_chain) {
                    let jmin = locations[j].iter().map(|l| l.cell).min().unwrap_or(0);
                    let jmax = locations[j].iter().map(|l| l.cell).max().unwrap_or(0);
                    if jmin >= cmin && jmax <= omax {
                        batch.push((j, Arc::clone(&extent)));
                    }
                }
            }
            self.run_batch(&batch, faults, &self.config, &mut status, &mut program, &mut shards, &mut counters);
        }

        // Group 3: pack same-chain faults into windows of union span
        // ≤ DIST (paper, Figure 4c), one circuit per window. Window
        // membership is fixed once the group-2 statuses are known
        // (BTreeMap: chains in index order, so program order does not
        // depend on hash iteration), so all windows shard as one batch.
        let mut by_chain: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &i in &group3 {
            if status[i] != Status::Pending {
                counters.early_exits += 1;
                continue;
            }
            let c = chain_of(&locations[i]).expect("group 3 is single-chain");
            by_chain.entry(c).or_default().push(i);
        }
        let mut batch: Batch = Vec::new();
        for (chain, mut idxs) in by_chain {
            idxs.sort_by_key(|&i| locations[i].iter().map(|l| l.cell).min().unwrap_or(0));
            let mut k = 0;
            while k < idxs.len() {
                let gmin = locations[idxs[k]].iter().map(|l| l.cell).min().unwrap();
                let mut gmax = locations[idxs[k]].iter().map(|l| l.cell).max().unwrap();
                let mut group = vec![idxs[k]];
                let mut next = k + 1;
                while next < idxs.len() {
                    let jmax = locations[idxs[next]].iter().map(|l| l.cell).max().unwrap();
                    if jmax.max(gmax) - gmin <= self.dist.dist {
                        gmax = gmax.max(jmax);
                        group.push(idxs[next]);
                        next += 1;
                    } else {
                        break;
                    }
                }
                k = next;
                circuits_initial += 1;
                let mut extent = HashMap::new();
                extent.insert(chain, (gmin, gmax));
                let extent = Arc::new(extent);
                batch.extend(group.into_iter().map(|i| (i, Arc::clone(&extent))));
            }
        }
        self.run_batch(&batch, faults, &self.config, &mut status, &mut program, &mut shards, &mut counters);

        // Final pass: remaining faults individually, with more budget —
        // independent attempts, one sharded batch.
        let batch: Batch = (0..faults.len())
            .filter(|&i| status[i] == Status::Pending || status[i] == Status::Unconfirmed)
            .map(|i| (i, Arc::new(self.extent_map(&locations[i]))))
            .collect();
        let circuits_final = batch.len();
        self.run_batch(&batch, faults, &self.final_config, &mut status, &mut program, &mut shards, &mut counters);

        let mut detected = Vec::new();
        let mut undetectable = Vec::new();
        let mut remaining = Vec::new();
        let mut unconfirmed = 0usize;
        for (i, &f) in faults.iter().enumerate() {
            match status[i] {
                Status::Detected => detected.push(f),
                Status::Undetectable => undetectable.push(f),
                Status::Unconfirmed => {
                    unconfirmed += 1;
                    remaining.push(f);
                }
                Status::Pending => remaining.push(f),
            }
        }
        counters.windows_formed += (circuits_initial + circuits_final) as u64;
        let report = SeqPhaseReport {
            targeted: faults.len(),
            detected: detected.len(),
            unconfirmed,
            undetectable: undetectable.len(),
            undetected: remaining.len(),
            circuits_initial,
            circuits_final,
            metrics: StageMetrics::new(start.elapsed(), shards, counters),
        };
        SeqPhaseOutcome {
            report,
            detected,
            undetectable,
            remaining,
            program,
        }
    }

    /// Per-chain `(first, last)` affected cell of a fault.
    fn extent_map(&self, locs: &[ChainLocation]) -> Extent {
        let mut map: Extent = HashMap::new();
        for l in locs {
            let e = map.entry(l.chain).or_insert((l.cell, l.cell));
            e.0 = e.0.min(l.cell);
            e.1 = e.1.max(l.cell);
        }
        map
    }

    /// Runs one batch of independent `(fault index, extent)` attempts,
    /// sharded across the phase's workers, and applies the results —
    /// status updates and program tests — in batch order, matching what
    /// a serial walk of the batch would produce.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &self,
        batch: &[(usize, Arc<Extent>)],
        faults: &[Fault],
        config: &SeqAtpgConfig,
        status: &mut [Status],
        program: &mut Vec<ScanTest>,
        shards: &mut ShardStats,
        counters: &mut WorkCounters,
    ) {
        if batch.is_empty() {
            return;
        }
        let (results, stats, work) = shard_map_counted(self.threads, 1, batch, || (), |_, _, chunk| {
            let mut chunk_work = WorkCounters::ZERO;
            let results = chunk
                .iter()
                .map(|(i, extent)| {
                    let (outcome, test, work) = self.attempt(faults[*i], extent, config);
                    chunk_work += work;
                    (outcome, test)
                })
                .collect();
            (results, chunk_work)
        });
        shards.absorb(&stats);
        *counters += work;
        for ((i, _), (outcome, test)) in batch.iter().zip(results) {
            if let Some(s) = outcome {
                status[*i] = s;
            }
            if let Some(t) = test {
                program.push(t);
            }
        }
    }

    /// Builds the enhanced view for an extent map, runs sequential ATPG
    /// for one fault, and verifies any test by fault simulation.
    /// Returns the status change (`None` for an aborted attempt) and the
    /// confirmed test, if any.
    fn attempt(
        &self,
        fault: Fault,
        extent: &Extent,
        config: &SeqAtpgConfig,
    ) -> (Option<Status>, Option<ScanTest>, WorkCounters) {
        let circuit = self.design.circuit();
        let ff_pos = |ff| {
            circuit
                .dffs()
                .iter()
                .position(|&f| f == ff)
                .expect("chain cell is a circuit flip-flop")
        };
        let mut controllable = Vec::new();
        let mut observable = Vec::new();
        for (c, chain) in self.design.chains().iter().enumerate() {
            match extent.get(&c) {
                Some(&(cmin, omax)) => {
                    for (k, cell) in chain.cells.iter().enumerate() {
                        if k < cmin {
                            controllable.push(ff_pos(cell.ff));
                        }
                        if k >= omax {
                            observable.push(ff_pos(cell.ff));
                        }
                    }
                }
                None => {
                    // Unaffected chain: fully controllable and observable.
                    for cell in &chain.cells {
                        controllable.push(ff_pos(cell.ff));
                        observable.push(ff_pos(cell.ff));
                    }
                }
            }
        }
        let layout = scan_vector_layout(self.design);
        let atpg = SeqAtpg::with_topology(circuit, self.design.topology())
            .controllable_ffs(controllable)
            .observable_ffs(observable)
            .fixed_pis(layout.constrained.clone());
        let (out, mut work) = atpg.run(fault, config);
        if std::env::var("FSCAN_DEBUG").is_ok() {
            let tag = match &out {
                SeqOutcome::Undetectable => "undetectable".to_string(),
                SeqOutcome::Aborted => "aborted".to_string(),
                SeqOutcome::Test(t) => format!("test({} frames)", t.vectors.len()),
            };
            eprintln!("seq3 {fault}: {tag}");
        }
        match out {
            SeqOutcome::Undetectable => (Some(Status::Undetectable), None, work),
            SeqOutcome::Aborted => (None, None, work),
            SeqOutcome::Test(test) => {
                let (vectors, verify_work) = self.verify(fault, &test);
                work += verify_work;
                if let Some(vectors) = vectors {
                    (
                        Some(Status::Detected),
                        Some(ScanTest::new(format!("seq {fault}"), vectors)),
                        work,
                    )
                } else {
                    if std::env::var("FSCAN_DEBUG").is_ok() {
                        eprintln!("seq3 {fault}: UNCONFIRMED by simulation");
                    }
                    (Some(Status::Unconfirmed), None, work)
                }
            }
        }
    }

    /// Realizes a sequential test as a concrete scan sequence — scan-in
    /// load, the ATPG frames, then a full shift-out — and confirms the
    /// fault is really detected by sequential fault simulation.
    fn verify(&self, fault: Fault, test: &SeqTest) -> (Option<Vec<Vec<V3>>>, WorkCounters) {
        let circuit = self.design.circuit();
        let layout = scan_vector_layout(self.design);
        // Desired load per chain from the required initial state.
        let states: Vec<Vec<bool>> = self
            .design
            .chains()
            .iter()
            .map(|chain| {
                chain
                    .cells
                    .iter()
                    .map(|cell| {
                        let pos = circuit
                            .dffs()
                            .iter()
                            .position(|&f| f == cell.ff)
                            .expect("cell ff");
                        test.init_state[pos].unwrap_or(false)
                    })
                    .collect()
            })
            .collect();
        let mut vectors = scan_load_vectors(self.design, &states);
        for frame in &test.vectors {
            let mut v = layout.base_vector();
            for (k, val) in frame.iter().enumerate() {
                if let Some(b) = val {
                    v[k] = V3::from_bool(*b);
                }
            }
            vectors.push(v);
        }
        for _ in 0..self.design.max_chain_len() + 2 {
            vectors.push(layout.base_vector());
        }
        // Event-driven confirmation: one good trace, then a single-fault
        // word replayed against it inside the fault's fanout cone.
        let sim = ParallelFaultSim::with_topology(self.design.topology());
        let init = vec![V3::X; circuit.dffs().len()];
        let trace = sim.good_trace(&vectors, &init);
        let (det, mut work) = sim.fault_sim_with_trace_counted(&[fault], &trace);
        work += trace.counters();
        (det[0].is_some().then_some(vectors), work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fscan_fault::{all_faults, collapse};
    use fscan_netlist::{generate, GeneratorConfig};
    use fscan_scan::{insert_functional_scan, TpiConfig};

    use crate::classify::{classify_faults, Category};
    use crate::comb_phase::CombPhase;

    #[test]
    fn dist_params_paper_schedule() {
        let p = DistParams::paper(200);
        assert_eq!(p.large, 120);
        assert_eq!(p.med, 50);
        assert_eq!(p.dist, 30);
        let small = DistParams::paper(10);
        assert_eq!((small.large, small.med, small.dist), (50, 25, 20));
        let scaled = DistParams::scaled(10);
        assert_eq!((scaled.large, scaled.med, scaled.dist), (6, 2, 1));
    }

    #[test]
    fn resolves_leftovers_from_comb_phase() {
        let mut targeted = 0usize;
        let mut resolved = 0usize;
        for seed in [61u64, 67, 71, 73] {
            let circuit = generate(&GeneratorConfig::new("d", seed).gates(200).dffs(12));
            let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
            let faults = collapse(design.circuit(), &all_faults(design.circuit()));
            let classified = classify_faults(&design, &faults);
            let hard: Vec<Fault> = classified
                .iter()
                .filter(|c| c.category == Category::Hard)
                .map(|c| c.fault)
                .collect();
            let comb = CombPhase::new(&design, crate::comb_phase::CombPhaseConfig::default())
                .run(&hard);
            if comb.remaining.is_empty() {
                continue;
            }
            let loc_of: HashMap<Fault, Vec<ChainLocation>> = classified
                .iter()
                .map(|c| (c.fault, c.locations.clone()))
                .collect();
            let locs: Vec<Vec<ChainLocation>> = comb
                .remaining
                .iter()
                .map(|f| loc_of[f].clone())
                .collect();
            let frames = design.max_chain_len() + 4;
            let phase = SeqPhase::new(
                &design,
                DistParams::scaled(design.max_chain_len()),
                SeqAtpgConfig {
                    max_frames: frames,
                    ..SeqAtpgConfig::default()
                },
                SeqAtpgConfig {
                    max_frames: frames + 4,
                    backtrack_limit: 50_000,
                    step_limit: 60_000,
                },
            );
            let out = phase.run(&comb.remaining, &locs);
            targeted += out.report.targeted;
            resolved += out.report.detected + out.report.undetectable;
            assert_eq!(
                out.report.targeted,
                out.report.detected + out.report.undetectable + out.report.undetected
            );
            assert!(out.report.circuits_initial > 0);
        }
        // After the comb phase's targeted vectors and random top-up,
        // what reaches step 3 is the very hard residue; it must at least
        // stay small relative to the chain-affecting population (the
        // paper ends at 0.022%; these are tiny circuits, so allow a few
        // percent), and the bookkeeping above must hold regardless.
        let _ = resolved;
        assert!(
            targeted <= 8,
            "too many leftovers reached step 3: {targeted}"
        );
    }

    #[test]
    fn figure4_grouping() {
        // Reproduce the paper's Figure 4 example: 8 faults with the
        // given location sets, LARGE=4, MED=3, DIST=2. We only check the
        // grouping decisions (circuit counts), not ATPG results, by
        // running against an empty-ish design: build a real design with
        // one chain of 8 cells.
        let circuit = generate(&GeneratorConfig::new("fig4", 9).gates(150).dffs(8));
        let design = insert_functional_scan(&circuit, &TpiConfig::default()).unwrap();
        assert_eq!(design.max_chain_len(), 8);
        let loc = |cells: &[usize]| -> Vec<ChainLocation> {
            cells
                .iter()
                .map(|&c| ChainLocation { chain: 0, cell: c })
                .collect()
        };
        // Paper (1-based FFs 1..7, locations = segments into FFs):
        // fault1: locations {2, 6} → span 4 → group 1 (LARGE=4).
        // fault2: {2, 5} span 3 → group 2 (MED=3).
        // fault3: {3}, fault4: {4}: inside fault2's window → share.
        // fault5: {2}, fault6: {3}, fault7: {6}, fault8: {7} → group 3.
        let locations = vec![
            loc(&[1, 5]), // fault1 (0-based)
            loc(&[1, 4]), // fault2
            loc(&[2]),    // fault3
            loc(&[3]),    // fault4
            loc(&[1]),    // fault5
            loc(&[2]),    // fault6
            loc(&[5]),    // fault7
            loc(&[6]),    // fault8
        ];
        // Dummy faults: any distinct stem faults will do.
        let faults: Vec<Fault> = design
            .circuit()
            .node_ids()
            .take(8)
            .map(|n| Fault::stem(n, false))
            .collect();
        let phase = SeqPhase::new(
            &design,
            DistParams {
                large: 4,
                med: 3,
                dist: 2,
            },
            // Zero budget: we only want the grouping bookkeeping.
            SeqAtpgConfig {
                max_frames: 1,
                backtrack_limit: 0,
                step_limit: 0,
            },
            SeqAtpgConfig {
                max_frames: 1,
                backtrack_limit: 0,
                step_limit: 0,
            },
        );
        let out = phase.run(&faults, &locations);
        // fault1 → 1 circuit; fault2(+3,4 shared) → 1 circuit;
        // group 3 {fault5 loc1, fault6 loc2} and {fault7 loc5, fault8
        // loc6} → 2 circuits. Total initial = 4 (the paper's example).
        assert_eq!(out.report.circuits_initial, 4);
    }
}
